"""Bounded-memory streaming: peak RSS + throughput of chunked replay.

Not a paper figure — this pins the streaming substrate's operational
claim (DESIGN.md §13): a trace far larger than anything the old
whole-in-RAM memo could hold streams through ``simulate`` on the fast
engine with peak memory bounded by the chunk size, not the trace
length. The benchmark spools a synthetic trace of ``--requests``
requests into on-disk chunk segments (never materializing it), replays
it through Hydra, and reports peak RSS (``getrusage`` high-water mark)
against what materializing would have cost. One entry is appended to
``BENCH_stream_memory.json`` at the repository root so successive PRs
accumulate a trajectory.

Run directly::

    PYTHONPATH=src python benchmarks/bench_stream_memory.py
    PYTHONPATH=src python benchmarks/bench_stream_memory.py \
        --requests 2000000 --max-rss-mb 500 --label ci

``--max-rss-mb`` turns the report into a gate: exit 1 if the whole
spool-and-replay run's peak RSS exceeds the ceiling (CI enforces
this), so a regression that silently materializes the trace fails the
build instead of just burning memory.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _common import bench_config  # noqa: E402

from repro.sim.simulator import simulate  # noqa: E402
from repro.workloads.streaming import (  # noqa: E402
    DEFAULT_STREAM_CHUNK,
    ChunkedTrace,
    TraceChunk,
)

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_stream_memory.json"
)

#: Estimated bytes/request if the trace were materialized the way the
#: old memo held it: the four numpy columns (8+8+4+1 B) plus the lazy
#: Python-scalar column lists the fast path builds (~4 lists of boxed
#: scalars + resolved-topology lists, conservatively 120 B/request).
MATERIALIZED_BYTES_PER_REQUEST = 21 + 120


def _peak_rss_mb() -> float:
    """Process high-water RSS in MB (ru_maxrss is KB on Linux)."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform == "darwin" else 1.0
    return usage * scale / 1024.0


def _synthetic_chunks(total: int, chunk: int, rows_limit: int, seed: int):
    """GUPS-shaped random chunks, generated one at a time (so the
    benchmark itself never holds more than one chunk)."""
    rng = np.random.default_rng(seed)
    emitted = 0
    while emitted < total:
        n = min(chunk, total - emitted)
        yield TraceChunk(
            gaps_ns=rng.uniform(2.0, 12.0, n),
            rows=rng.integers(0, rows_limit, n, dtype=np.int64),
            lines=rng.integers(1, 4, n).astype(np.int32),
            writes=rng.random(n) < 0.25,
        )
        emitted += n


def run(requests: int, chunk: int, seed: int, label: str) -> dict:
    config = bench_config()
    geometry = config.geometry
    rows_limit = (
        geometry.rows_per_bank
        * geometry.banks_per_rank
        * geometry.ranks_per_channel
        * geometry.channels
    )
    rss_start = _peak_rss_mb()
    spool = Path(tempfile.mkdtemp(prefix="repro-bench-stream-"))
    try:
        spool_started = time.perf_counter()
        source = ChunkedTrace.write(
            _synthetic_chunks(requests, chunk, rows_limit, seed),
            spool / "trace",
            name="bench-stream",
            chunk_requests=chunk,
        )
        spool_seconds = time.perf_counter() - spool_started
        replay_started = time.perf_counter()
        result = simulate(source, config, "hydra")
        replay_seconds = time.perf_counter() - replay_started
    finally:
        shutil.rmtree(spool, ignore_errors=True)
    peak = _peak_rss_mb()
    materialized_mb = requests * MATERIALIZED_BYTES_PER_REQUEST / 2**20
    entry = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "scale": config.scale,
        "requests": result.requests,
        "stream_chunk": chunk,
        "segments": source.n_segments,
        "spool_seconds": round(spool_seconds, 3),
        "replay_seconds": round(replay_seconds, 3),
        "requests_per_sec": round(result.requests / replay_seconds, 1),
        "peak_rss_mb": round(peak, 1),
        "rss_before_mb": round(rss_start, 1),
        "materialized_estimate_mb": round(materialized_mb, 1),
    }
    print(f"requests          : {entry['requests']:,}")
    print(f"chunk             : {chunk:,} requests x {entry['segments']} segments")
    print(f"spool             : {entry['spool_seconds']:.3f} s")
    print(
        f"replay (hydra/fast): {entry['replay_seconds']:.3f} s "
        f"({entry['requests_per_sec']:,.0f} req/s)"
    )
    print(
        f"peak RSS          : {entry['peak_rss_mb']:.1f} MB "
        f"(baseline {entry['rss_before_mb']:.1f} MB before spooling)"
    )
    print(
        f"materialized est. : {entry['materialized_estimate_mb']:.1f} MB"
        " if held whole in RAM (arrays + column lists)"
    )
    return entry


def append_entry(entry: dict, path: Path = BENCH_PATH) -> None:
    payload = {"runs": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    payload.setdefault("runs", []).append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nappended run {entry['label']!r} to {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="dev", help="name this run carries in the trajectory"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=4_000_000,
        help="trace length to stream (default 4M ≈ 10x+ the memory a"
        " materialized trace of this length would need)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=DEFAULT_STREAM_CHUNK,
        help=f"streaming chunk size in requests (default {DEFAULT_STREAM_CHUNK})",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="fail (exit 1) if peak RSS exceeds this ceiling — the CI"
        " bounded-memory gate",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="print only; do not touch BENCH_stream_memory.json",
    )
    args = parser.parse_args(argv)
    entry = run(args.requests, args.chunk, args.seed, args.label)
    if args.max_rss_mb is not None:
        entry["max_rss_mb"] = args.max_rss_mb
        if entry["peak_rss_mb"] > args.max_rss_mb:
            print(
                f"\nFAIL: peak RSS {entry['peak_rss_mb']:.1f} MB exceeds"
                f" the {args.max_rss_mb:.1f} MB ceiling — streaming is"
                " no longer bounded"
            )
            if not args.no_record:
                append_entry(entry)
            return 1
        print(
            f"\nOK: peak RSS {entry['peak_rss_mb']:.1f} MB within the"
            f" {args.max_rss_mb:.1f} MB ceiling"
        )
    if not args.no_record:
        append_entry(entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
