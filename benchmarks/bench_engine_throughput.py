"""End-to-end engine throughput: requests/second through ``simulate``.

Not a paper figure — this measures how fast the *reproduction* turns
trace requests into ``RunResult``s, which bounds every figure sweep.
Each cell times ``simulate(trace, config, tracker)`` end to end
(tracker + controller construction included, trace generation
excluded), takes the best of ``--reps`` repetitions, and appends one
entry to ``BENCH_engine_throughput.json`` at the repository root so
successive PRs accumulate a perf trajectory.

Run directly (honours ``REPRO_SCALE``)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --label after-fast-path --reps 5

The headline cell is ``hydra/fast`` on the benchmark configuration —
the number the hot-path optimization pass is judged on.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from _common import bench_config

from repro.sim.simulator import simulate, trace_for_workload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_throughput.json"

#: (tracker, engine) cells measured, documentation order. Hydra on the
#: fast engine is the headline; the others give context (baseline =
#: controller-only cost, graphene/cra = other tracker families, the
#: queued cell = scheduler overhead, the vector cells = the numpy
#: window-batched engine on the same workload).
DEFAULT_CELLS = (
    ("baseline", "fast"),
    ("hydra", "fast"),
    ("graphene", "fast"),
    ("cra", "fast"),
    ("hydra", "queued"),
    ("baseline", "vector"),
    ("hydra", "vector"),
)


def cells_for_engines(engines) -> tuple:
    """Restrict DEFAULT_CELLS to the requested engines, keeping order."""
    wanted = set(engines)
    cells = tuple(c for c in DEFAULT_CELLS if c[1] in wanted)
    if not cells:
        raise SystemExit(
            f"no benchmark cells for engines {sorted(wanted)!r}"
        )
    return cells


def measure_cell(config, tracker: str, engine: str, workload: str, reps: int):
    """Best-of-``reps`` wall time for one simulate() cell."""
    cell_config = config.with_engine(engine)
    trace = trace_for_workload(cell_config, workload)
    best = float("inf")
    requests = 0
    for _ in range(reps):
        start = time.perf_counter()
        result = simulate(trace, cell_config, tracker)
        elapsed = time.perf_counter() - start
        requests = result.requests
        if elapsed < best:
            best = elapsed
    return {
        "seconds": round(best, 6),
        "requests": requests,
        "requests_per_sec": round(requests / best, 1),
    }


def run(label: str, workload: str, reps: int, cells=DEFAULT_CELLS) -> dict:
    config = bench_config()
    entry = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "workload": workload,
        "reps": reps,
        "scale": config.scale,
        "cache_key": config.cache_key(),
        "cells": {},
    }
    for tracker, engine in cells:
        key = f"{tracker}/{engine}"
        entry["cells"][key] = measure_cell(config, tracker, engine, workload, reps)
        cell = entry["cells"][key]
        print(
            f"{key:<16} {cell['seconds']:>9.3f} s "
            f"{cell['requests_per_sec']:>12,.0f} req/s"
        )
    return entry


def append_entry(entry: dict, path: Path = BENCH_PATH) -> None:
    payload = {"runs": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    payload.setdefault("runs", []).append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nappended run {entry['label']!r} to {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="dev", help="name this run carries in the trajectory"
    )
    parser.add_argument(
        "--workload",
        default="GUPS",
        help="trace to replay (GUPS = random-access heavy, the stress case)",
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="repetitions per cell (best kept)"
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="print only; do not touch BENCH_engine_throughput.json",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        default=None,
        metavar="ENGINE",
        help="measure only cells on these engines (default: all"
        " DEFAULT_CELLS); e.g. --engines vector, or --engines fast"
        " vector to compare the batched engine against the scalar one",
    )
    args = parser.parse_args(argv)
    cells = (
        cells_for_engines(args.engines)
        if args.engines is not None
        else DEFAULT_CELLS
    )
    entry = run(args.label, args.workload, args.reps, cells=cells)
    if not args.no_record:
        append_entry(entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
