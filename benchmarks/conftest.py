"""Benchmark collection configuration.

The benchmarks regenerate the paper's tables and figures; most of the
wall time is one-time simulation that is disk-cached, so repeated
benchmark runs are cheap. Heavy benches use ``benchmark.pedantic``
with a single round: the quantity of interest is the regenerated
table, not microsecond-level timing stability.
"""

import sys
from pathlib import Path

# Make `_common` importable when pytest runs from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
