"""Footnote 4: randomized GCT/RCT indexing ablation.

The paper evaluated a variant where row addresses pass through a keyed
b-bit block cipher (re-keyed each window) before indexing, hiding
group membership from adversaries, and "found that such a randomized
design performs within 0.1% of the static scheme." This benchmark
reproduces that comparison on a representative workload slice.
"""

from _common import bench_config, record_result, runner_for

WORKLOADS = [
    "bwaves", "parest", "xz", "cactuBSSN", "deepsjeng",
    "ferret", "freq", "bc_t", "GUPS",
]


def test_fn4_randomized_mapping(benchmark):
    config = bench_config()
    runner = runner_for(config)

    def run_both():
        return {
            "hydra": runner.compare("hydra", WORKLOADS),
            "hydra-randomized": runner.compare("hydra-randomized", WORKLOADS),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print("\n=== Footnote 4: static vs randomized mapping ===")
    print(f"{'workload':<12} {'static':>9} {'randomized':>11}")
    static = {c.workload: c for c in results["hydra"]}
    randomized = {c.workload: c for c in results["hydra-randomized"]}
    deltas = []
    payload = {}
    for name in WORKLOADS:
        s = static[name].normalized_performance
        r = randomized[name].normalized_performance
        deltas.append(abs(s - r))
        payload[name] = {"static": round(s, 4), "randomized": round(r, 4)}
        print(f"{name:<12} {s:>9.4f} {r:>11.4f}")
    worst = max(deltas)
    print(f"max |delta| = {100 * worst:.2f}% (paper: within ~0.1%)")

    # Shape: randomization is never a meaningful cost. At this scale
    # it is in fact slightly *faster* on hot-row workloads: with the
    # static mapping an aggressor's victim-refresh neighbours share
    # its (saturated) group and pay per-row costs; randomized, those
    # neighbours land in cold groups the GCT absorbs. The assertion
    # bounds the divergence and requires randomized never be slower
    # by more than noise.
    assert worst < 0.03
    for name in WORKLOADS:
        assert (
            randomized[name].normalized_performance
            >= static[name].normalized_performance - 0.005
        ), name
    record_result(
        "fn4_randomized_mapping",
        {**payload, "max_abs_delta_percent": round(100 * worst, 3)},
    )
