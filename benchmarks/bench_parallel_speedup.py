"""Harness benchmark: parallel sweep speedup and determinism.

Not a paper figure — this measures the *reproduction's* sweep layer:
a 2-tracker x 8-workload grid run serially and with ``jobs=4``
(disk cache disabled so every cell simulates), asserting the
parallel results are identical to the serial ones and, on a machine
with >= 4 CPUs, at least 2x faster wall-clock.
"""

import os
import time

from _common import bench_config, record_result

from repro.sim.simulator import trace_for_workload
from repro.sim.sweep import ExperimentRunner

TRACKERS = ["baseline", "hydra"]
WORKLOADS = ["leela", "povray", "xz", "mcf", "gcc", "cactuBSSN", "nab", "lbm"]
JOBS = 4


def _timed_grid(runner: ExperimentRunner, jobs: int):
    start = time.perf_counter()
    grid = runner.run_grid(TRACKERS, WORKLOADS, jobs=jobs, progress=False)
    return grid, time.perf_counter() - start


def test_parallel_speedup(benchmark):
    config = bench_config()
    # Pre-generate traces so both timings measure simulation, and so
    # forked workers inherit the warm memo.
    for name in WORKLOADS:
        trace_for_workload(config, name)

    def run():
        serial_runner = ExperimentRunner(config, use_disk_cache=False)
        serial, serial_s = _timed_grid(serial_runner, jobs=1)
        parallel_runner = ExperimentRunner(config, use_disk_cache=False)
        parallel, parallel_s = _timed_grid(parallel_runner, jobs=JOBS)
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    for tracker in TRACKERS:
        for wl in WORKLOADS:
            assert (
                parallel[tracker][wl].to_dict()
                == serial[tracker][wl].to_dict()
            ), f"parallel result diverged for ({tracker}, {wl})"

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cpus = os.cpu_count() or 1
    print(
        f"\n=== parallel sweep speedup ({len(TRACKERS)}x{len(WORKLOADS)} "
        f"grid, jobs={JOBS}, {cpus} CPUs) ===\n"
        f"serial   {serial_s:8.2f} s\n"
        f"parallel {parallel_s:8.2f} s\n"
        f"speedup  {speedup:8.2f} x"
    )
    record_result(
        "parallel_speedup",
        {
            "grid": f"{len(TRACKERS)}x{len(WORKLOADS)}",
            "jobs": JOBS,
            "cpus": cpus,
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "speedup": round(speedup, 2),
        },
    )
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {JOBS} jobs on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )
