"""Figure 5: performance of Graphene, CRA, and Hydra vs baseline.

The paper's headline evaluation: at T_RH=500, Graphene is free but
needs 680 KB of CAM, CRA needs only a cache but slows the system ~25%,
and Hydra delivers ~0.7% average slowdown from 57 KB of SRAM.
"""

from _common import (
    all_slowdown,
    bench_config,
    comparison_table,
    record_result,
    runner_for,
)


def test_fig5_tracker_performance(benchmark):
    config = bench_config()
    runner = runner_for(config)

    def run_all():
        return {
            name: runner.compare(name)
            for name in ("graphene", "cra", "hydra")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    payload = {}
    for name, comparisons in results.items():
        payload[name] = comparison_table(
            comparisons, f"Figure 5: {name} normalized performance"
        )

    graphene = all_slowdown(results["graphene"])
    cra = all_slowdown(results["cra"])
    hydra = all_slowdown(results["hydra"])
    print(
        f"\nALL(36) slowdown: graphene={graphene:.2f}% "
        f"cra={cra:.2f}% hydra={hydra:.2f}% "
        f"(paper: 0.1% / 25% / 0.7%)"
    )

    # Shape assertions (paper's qualitative result):
    assert graphene < 0.5  # Graphene ~free
    assert hydra < 2.0  # Hydra ~0.7%
    assert cra > 8.0  # CRA badly slow
    assert cra > 5 * hydra  # CRA >> Hydra
    # Per-workload: xz is Hydra's worst case (>3% in the paper);
    # at minimum it must be among the slowest three.
    hydra_by_wl = sorted(
        results["hydra"], key=lambda c: c.normalized_performance
    )
    worst_three = {c.workload for c in hydra_by_wl[:3]}
    assert "xz" in worst_three

    record_result(
        "fig5_performance",
        {
            **payload,
            "all36_slowdown_percent": {
                "graphene": round(graphene, 3),
                "cra": round(cra, 3),
                "hydra": round(hydra, 3),
            },
        },
    )
