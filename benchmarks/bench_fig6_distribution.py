"""Figure 6: where activation-count updates are satisfied.

For every workload, the fraction of updates handled by (a) the GCT
alone, (b) an RCC hit, (c) an RCT access to DRAM. The paper's averages
are 90.7% / 9.0% / 0.3% — the GCT's filtering is what makes the
DRAM-backed design viable.
"""

import numpy as np

from _common import bench_config, record_result, runner_for

from repro.workloads.characteristics import all_names


def test_fig6_update_distribution(benchmark):
    config = bench_config()
    runner = runner_for(config)

    def run_all():
        return {
            name: runner.run("hydra", name).extra["distribution"]
            for name in all_names()
        }

    distributions = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== Figure 6: distribution of count updates (%) ===")
    print(f"{'workload':<12} {'GCT-only':>9} {'RCC-hit':>9} {'RCT(DRAM)':>10}")
    for name, dist in distributions.items():
        print(
            f"{name:<12} {100 * dist['gct_only']:>9.1f} "
            f"{100 * dist['rcc_hit']:>9.1f} "
            f"{100 * dist['rct_access']:>10.2f}"
        )
    means = {
        key: float(np.mean([d[key] for d in distributions.values()]))
        for key in ("gct_only", "rcc_hit", "rct_access")
    }
    print(
        f"{'AVERAGE':<12} {100 * means['gct_only']:>9.1f} "
        f"{100 * means['rcc_hit']:>9.1f} {100 * means['rct_access']:>10.2f}"
        "   (paper: 90.7 / 9.0 / 0.3)"
    )

    # Shape: GCT dominates, DRAM accesses are rare.
    assert means["gct_only"] > 0.85
    assert means["rct_access"] < 0.03
    assert abs(sum(means.values()) - 1.0) < 1e-6
    # parest (5882 hot rows) must use per-row tracking heavily;
    # deepsjeng (no hot rows, huge footprint) must not.
    assert distributions["parest"]["rcc_hit"] > 0.1
    assert distributions["deepsjeng"]["gct_only"] > 0.99

    record_result(
        "fig6_distribution",
        {
            "per_workload": {
                k: {kk: round(vv, 5) for kk, vv in v.items()}
                for k, v in distributions.items()
            },
            "averages": {k: round(v, 5) for k, v in means.items()},
        },
    )
