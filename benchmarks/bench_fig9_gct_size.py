"""Figure 9: sensitivity to GCT capacity (16K / 32K / 64K entries).

Halving the GCT doubles the row-group size, so groups saturate faster
and more rows fall through to per-row tracking. The paper: 16K hurts
(GUPS dramatically), 32K is the sweet spot, 64K buys little more.
"""

from _common import bench_config, record_result, runner_for

from repro.sim.sweep import suite_slowdowns

GCT_SIZES = (16384, 32768, 65536)


def test_fig9_gct_capacity(benchmark):
    def run_sweep():
        runner = runner_for(bench_config())
        return {
            entries: suite_slowdowns(
                runner.compare(f"hydra@gct_entries={entries}")
            )
            for entries in GCT_SIZES
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Figure 9: slowdown (%) vs GCT entries (full-scale) ===")
    suites = list(next(iter(results.values())))
    print(f"{'GCT':<8}" + "".join(f"{s:>12}" for s in suites))
    for entries in GCT_SIZES:
        label = f"{entries // 1024}K"
        print(
            f"{label:<8}"
            + "".join(f"{results[entries][s]:>12.2f}" for s in suites)
        )

    all36 = {e: results[e]["ALL(36)"] for e in GCT_SIZES}
    # Shape: smaller GCT is strictly worse; 32K->64K gains are small.
    assert all36[16384] > all36[32768] >= all36[65536]
    assert all36[16384] > 1.5 * all36[32768]
    assert all36[32768] - all36[65536] < 1.0

    record_result(
        "fig9_gct_size",
        {str(e): {k: round(v, 3) for k, v in results[e].items()}
         for e in GCT_SIZES},
    )
