"""Table 5: total SRAM for the 32 GB system, DDR4 vs DDR5.

Per-bank trackers (Graphene/TWiCE/CAT) double when DDR5 doubles the
bank count; D-CBF and Hydra do not. Hydra's 56.5 KB is an order of
magnitude below every alternative on both technologies.
"""

import pytest

from _common import record_result

from repro.trackers.storage import total_sram_table

KIB = 1024


def test_table5_total_sram(benchmark):
    table = benchmark.pedantic(total_sram_table, rounds=1, iterations=1)

    print("\n=== Table 5: total SRAM, 32GB / 2 ranks (KB) ===")
    print(f"{'scheme':<12} {'DDR4':>10} {'DDR5':>10}")
    payload = {}
    for scheme, cols in table.items():
        print(
            f"{scheme:<12} {cols['ddr4'] / KIB:>10.1f} {cols['ddr5'] / KIB:>10.1f}"
        )
        payload[scheme] = {
            "ddr4_kib": round(cols["ddr4"] / KIB, 1),
            "ddr5_kib": round(cols["ddr5"] / KIB, 1),
        }

    assert table["Hydra"]["ddr4"] == pytest.approx(56.5 * KIB, rel=0.01)
    assert table["Graphene"]["ddr4"] == pytest.approx(680 * KIB, rel=0.01)
    for scheme in ("Graphene", "TWiCE", "CAT"):
        assert table[scheme]["ddr5"] == 2 * table[scheme]["ddr4"]
    for scheme in ("D-CBF", "Hydra"):
        assert table[scheme]["ddr5"] == table[scheme]["ddr4"]
    for scheme in ("Graphene", "TWiCE", "CAT", "D-CBF"):
        assert table[scheme]["ddr4"] > 10 * table["Hydra"]["ddr4"]

    record_result("table5_total_sram", payload)
