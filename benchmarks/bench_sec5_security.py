"""§5: security verification throughput across attack patterns.

Runs the Theorem-1 oracle check for every adaptive attack the paper
discusses, at the benchmark scale, and reports verified activation
throughput. All patterns must verify SECURE.
"""

from _common import bench_config, record_result

from repro.analysis.security import verify_tracker
from repro.core.hydra import HydraTracker
from repro.workloads import attacks


def build_patterns(config):
    geometry = config.geometry
    th = config.hydra_config().th
    return {
        "single-sided": attacks.single_sided(1000, 40 * th),
        "double-sided": attacks.double_sided(2000, 20 * th),
        "many-sided": attacks.many_sided(list(range(3000, 3064)), 4 * th),
        "half-double": attacks.half_double(4000, 40 * th),
        "thrash": attacks.thrash_then_hammer(
            5000, list(range(6000, 6512)), 8 * th, interleave=8
        ),
        "rcc-thrash": attacks.rcc_thrash(geometry, 2000, 30),
        "rct-region": attacks.rct_region_attack(geometry, 20 * th),
    }


def test_sec5_attack_verification(benchmark):
    config = bench_config()
    patterns = build_patterns(config)
    hydra_config = config.hydra_config()
    th = hydra_config.th

    def verify_all():
        reports = {}
        for name, sequence in patterns.items():
            tracker = HydraTracker(hydra_config)
            reports[name] = verify_tracker(
                tracker, config.geometry, sequence, th
            )
        return reports

    reports = benchmark.pedantic(verify_all, rounds=1, iterations=1)

    print("\n=== §5: Theorem-1 verification ===")
    print(
        f"{'pattern':<14} {'status':<8} {'ACTs':>9} {'mitig.':>7} "
        f"{'max-unmitigated':>16}"
    )
    payload = {}
    for name, report in reports.items():
        status = "SECURE" if report.secure else "VIOLATED"
        print(
            f"{name:<14} {status:<8} {report.activations:>9} "
            f"{report.mitigations:>7} "
            f"{report.max_unmitigated_count:>11}/{th}"
        )
        payload[name] = {
            "secure": report.secure,
            "activations": report.activations,
            "mitigations": report.mitigations,
            "max_unmitigated": report.max_unmitigated_count,
        }
        assert report.secure, name
        assert report.max_unmitigated_count <= th

    # Hammering patterns must actually draw mitigations.
    for name in ("single-sided", "double-sided", "half-double", "thrash"):
        assert reports[name].mitigations > 0, name

    record_result("sec5_security", payload)
