"""Table 4: Hydra's SRAM storage breakdown for the 32 GB system.

GCT (32K x 8-bit) = 32 KB, RCC (8K x 24-bit) = 24 KB, RIT-ACT
(512 x 8-bit) = 0.5 KB; total 56.5 KB, plus a 4 MB DRAM reservation
(<0.02% of capacity).
"""

import pytest

from _common import record_result

from repro.core.config import HydraConfig
from repro.core.storage import hydra_storage


def test_table4_hydra_storage(benchmark):
    report = benchmark.pedantic(
        hydra_storage, args=(HydraConfig(),), rounds=1, iterations=1
    )

    print("\n=== Table 4: Hydra storage overhead (32GB, 2 channels) ===")
    for name, value in report.rows().items():
        print(f"{name:<8} {value}")
    print(
        f"DRAM reservation: {report.dram_reserved_bytes / 1024 / 1024:.1f} MB "
        f"({100 * report.dram_reserved_bytes / (32 * 1024 ** 3):.3f}% of 32GB)"
    )

    assert report.gct_bytes == 32 * 1024
    assert report.rcc_bytes == 24 * 1024
    assert report.rit_act_bytes == 512
    assert report.sram_total_kib == pytest.approx(56.5)
    assert report.dram_reserved_bytes == 4 * 1024 * 1024
    assert report.dram_reserved_bytes / (32 * 1024**3) < 0.0002

    record_result(
        "table4_hydra_storage",
        {
            "gct_kib": report.gct_bytes / 1024,
            "rcc_kib": report.rcc_bytes / 1024,
            "rit_act_kib": report.rit_act_bytes / 1024,
            "total_kib": report.sram_total_kib,
            "dram_reserved_mib": report.dram_reserved_bytes / 1024 / 1024,
        },
    )
