"""Figure 1(a): the RowHammer threshold trend, 2014 -> DDR5.

Regenerates the T_RH-over-time series the paper opens with, plus the
log-linear projection motivating the ultra-low-threshold regime.
"""

from _common import record_result

from repro.analysis.trends import (
    OBSERVATIONS,
    projected_trh,
    trend_rows,
    years_until_threshold,
)


def test_fig1a_threshold_trend(benchmark):
    rows = benchmark.pedantic(trend_rows, rounds=1, iterations=1)

    print("\n=== Figure 1(a): Row-Hammer Threshold over time ===")
    print(f"{'year':<6} {'technology':<18} {'T_RH':>8}")
    for row in rows:
        print(f"{row['year']:<6} {row['technology']:<18} {row['trh']:>8}")
    print(
        f"years until T_RH=500 (from {OBSERVATIONS[-1].year}): "
        f"{years_until_threshold(500):.1f}"
    )

    # Shape: strictly decreasing observations, >10x drop 2014->2020,
    # and the projection lands below LPDDR4's 4.8K.
    observed = [row["trh"] for row in rows[:-1]]
    assert observed == sorted(observed, reverse=True)
    assert observed[0] / observed[-1] > 10
    assert rows[-1]["trh"] < 4800
    assert projected_trh(2030) < projected_trh(2024)

    record_result(
        "fig1a_trend",
        {"rows": rows, "years_until_trh500": years_until_threshold(500)},
    )
