"""Shared infrastructure for the per-table/per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the relevant simulations through a disk-cached
:class:`~repro.sim.sweep.ExperimentRunner`, prints rows shaped like
the paper's, asserts the *shape* of the result (who wins, by roughly
what factor), and records the outcome under ``benchmarks/results/`` so
EXPERIMENTS.md can cite the measured numbers.

Environment knobs:

- ``REPRO_SCALE`` — scale denominator (default 32; larger = faster).
- ``REPRO_CACHE_DIR`` — simulation result cache location. Writes are
  atomic, so concurrent benchmark processes may share one directory.
- ``REPRO_JOBS`` — grid cells simulated in parallel per sweep
  (0 = one worker per CPU; unset = serial).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence

from repro.sim.config import SystemConfig, default_scale
from repro.sim.results import Comparison, geometric_mean
from repro.sim.sweep import ExperimentRunner, suite_geomeans, suite_slowdowns

RESULTS_DIR = Path(__file__).parent / "results"

_RUNNERS: Dict[str, ExperimentRunner] = {}


def bench_config(**overrides) -> SystemConfig:
    """The benchmark system: paper parameters at the default scale."""
    params = dict(scale=default_scale())
    params.update(overrides)
    return SystemConfig(**params)


def runner_for(config: SystemConfig) -> ExperimentRunner:
    """Session-shared runner per configuration (keeps traces cached)."""
    key = config.cache_key()
    runner = _RUNNERS.get(key)
    if runner is None:
        runner = ExperimentRunner(config)
        _RUNNERS[key] = runner
    return runner


def record_result(name: str, payload) -> None:
    """Persist one experiment's outcome for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def comparison_table(
    comparisons: Sequence[Comparison], title: str
) -> Dict[str, object]:
    """Print a Figure-5-style table and return its data."""
    print(f"\n=== {title} ===")
    print(f"{'workload':<12} {'norm.perf':>9} {'slowdown%':>10}")
    rows = {}
    for comp in comparisons:
        rows[comp.workload] = {
            "normalized_performance": round(comp.normalized_performance, 4),
            "slowdown_percent": round(comp.slowdown_percent, 3),
        }
        print(
            f"{comp.workload:<12} {comp.normalized_performance:>9.4f} "
            f"{comp.slowdown_percent:>10.2f}"
        )
    means = suite_geomeans(comparisons)
    slowdowns = suite_slowdowns(comparisons)
    print("-" * 33)
    for suite in means:
        print(f"{suite:<12} {means[suite]:>9.4f} {slowdowns[suite]:>10.2f}")
    return {
        "workloads": rows,
        "suite_geomeans": {k: round(v, 4) for k, v in means.items()},
        "suite_slowdowns": {k: round(v, 3) for k, v in slowdowns.items()},
    }


def all_slowdown(comparisons: Sequence[Comparison]) -> float:
    """Percent slowdown geomean over the workloads actually present.

    With the full grid this is the paper's ALL(36) number; a reduced
    workload list (quick local runs) gets the geomean of its own
    comparisons instead of a bare ``KeyError: 'ALL(36)'``.
    """
    if not comparisons:
        raise ValueError("all_slowdown needs at least one comparison")
    slowdowns = suite_slowdowns(comparisons)
    if "ALL(36)" in slowdowns:
        return slowdowns["ALL(36)"]
    mean = geometric_mean(
        [c.normalized_performance for c in comparisons]
    )
    return 100.0 * (1.0 / mean - 1.0)
