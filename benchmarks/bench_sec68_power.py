"""§6.8: power analysis — DRAM overhead and SRAM structure power.

Two results to reproduce: (1) the extra DRAM accesses for RCT traffic
and mitigation cost ~0.2% of DRAM power; (2) the GCT and RCC cost
~10.6 mW and ~8 mW respectively at 22 nm (negligible next to the
multi-watt DRAM subsystem).
"""

import numpy as np
import pytest

from _common import bench_config, record_result, runner_for

from repro.analysis.sram_power import hydra_sram_power
from repro.core.config import HydraConfig
from repro.workloads.characteristics import all_names


def test_sec68_power_overheads(benchmark):
    config = bench_config()
    runner = runner_for(config)

    def run_all():
        overheads = {}
        for name in all_names():
            base = runner.run("baseline", name)
            hydra = runner.run("hydra", name)
            if base.dram_power_w > 0:
                overheads[name] = 100.0 * (
                    hydra.dram_power_w / base.dram_power_w - 1.0
                )
        return overheads

    overheads = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== §6.8: DRAM power overhead of Hydra (%) ===")
    for name, pct in overheads.items():
        print(f"{name:<12} {pct:>8.3f}")
    mean_overhead = float(np.mean(list(overheads.values())))
    print(f"{'AVERAGE':<12} {mean_overhead:>8.3f}   (paper: ~0.2%)")

    gct, rcc = hydra_sram_power(HydraConfig())
    print(
        f"SRAM power: GCT={gct.total_mw:.1f} mW, RCC={rcc.total_mw:.1f} mW, "
        f"total={gct.total_mw + rcc.total_mw:.1f} mW "
        "(paper: 10.6 / 8.0 / 18.6)"
    )

    # Shape: DRAM overhead well under 2%, SRAM power in tens of mW.
    assert mean_overhead < 2.0
    assert mean_overhead >= 0.0
    assert gct.total_mw + rcc.total_mw == pytest.approx(18.6, rel=0.4)

    record_result(
        "sec68_power",
        {
            "dram_overhead_percent": {
                k: round(v, 4) for k, v in overheads.items()
            },
            "dram_overhead_mean_percent": round(mean_overhead, 4),
            "gct_mw": round(gct.total_mw, 2),
            "rcc_mw": round(rcc.total_mw, 2),
        },
    )
