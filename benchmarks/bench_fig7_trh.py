"""Figure 7: Hydra's slowdown as T_RH drops to 250 and 125.

Structures scale proportionally (2x at 250, 4x at 125), yet slowdown
grows — partly tracking, partly sheer mitigation activity. The paper
reports 0.7% -> 1.6% -> 4% averages, with GUPS hit hardest.
"""

from _common import bench_config, record_result, runner_for

from repro.sim.sweep import suite_slowdowns

THRESHOLDS = (500, 250, 125)


def test_fig7_trh_sensitivity(benchmark):
    def run_sweep():
        runner = runner_for(bench_config())
        return {
            trh: suite_slowdowns(runner.compare(f"hydra@trh={trh}"))
            for trh in THRESHOLDS
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Figure 7: slowdown (%) vs T_RH ===")
    suites = list(next(iter(results.values())))
    print(f"{'T_RH':<8}" + "".join(f"{s:>12}" for s in suites))
    for trh in THRESHOLDS:
        print(
            f"{trh:<8}"
            + "".join(f"{results[trh][s]:>12.2f}" for s in suites)
        )
    print("(paper ALL(36): 0.7 / 1.6 / 4.0)")

    # Shape: monotonically worse as the threshold falls.
    all36 = [results[trh]["ALL(36)"] for trh in THRESHOLDS]
    assert all36[0] < all36[1] < all36[2]
    assert all36[0] < 2.0
    assert all36[2] > 1.5
    # GUPS suffers more at 125 than at 500.
    assert results[125]["GUPS(1)"] > results[500]["GUPS(1)"]

    record_result(
        "fig7_trh_sensitivity",
        {str(trh): {k: round(v, 3) for k, v in results[trh].items()}
         for trh in THRESHOLDS},
    )
