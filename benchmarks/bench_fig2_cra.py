"""Figure 2: CRA slowdown versus metadata-cache size.

Runs CRA with 64 / 128 / 256 KB (full-scale-equivalent) counter caches
across all 36 workloads. The paper's result: CRA stays badly slow even
with a 4x larger cache (25.8% -> 16.8% average slowdown), because
row-granular access streams have too little spatial locality for a
line-granularity cache.
"""

from _common import (
    all_slowdown,
    bench_config,
    comparison_table,
    record_result,
    runner_for,
)

CACHE_SIZES_KB = (64, 128, 256)


def test_fig2_cra_metadata_cache_sweep(benchmark):
    def run_sweep():
        runner = runner_for(bench_config())
        return {
            size_kb: runner.compare(f"cra@cache_kb={size_kb}")
            for size_kb in CACHE_SIZES_KB
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    payload = {}
    for size_kb, comparisons in results.items():
        payload[f"cra_{size_kb}kb"] = comparison_table(
            comparisons, f"Figure 2: CRA with {size_kb} KB metadata cache"
        )

    slowdowns = {kb: all_slowdown(results[kb]) for kb in CACHE_SIZES_KB}
    print(f"\nCRA average slowdown by cache size: {slowdowns}")

    # Shape: significant average slowdown at 64 KB, monotonically
    # relieved (but not fixed) by bigger caches.
    assert slowdowns[64] > 8.0
    assert slowdowns[64] >= slowdowns[128] >= slowdowns[256]
    assert slowdowns[256] > 3.0  # still far from free

    record_result("fig2_cra_cache_sweep", payload)
