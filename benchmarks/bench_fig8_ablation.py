"""Figure 8: relative contribution of the GCT and the RCC.

Hydra without its RCC falls back to DRAM read-modify-writes for every
per-row update (paper: 4.5% average slowdown); without its GCT every
activation needs per-row state and the RCC thrashes (paper: 20%).
The ordering NoGCT >> NoRCC >> Hydra is the design's justification.
"""

from _common import (
    all_slowdown,
    bench_config,
    comparison_table,
    record_result,
    runner_for,
)

VARIANTS = ("hydra", "hydra-norcc", "hydra-nogct")


def test_fig8_gct_rcc_ablation(benchmark):
    config = bench_config()
    runner = runner_for(config)

    def run_all():
        return {name: runner.compare(name) for name in VARIANTS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    payload = {}
    for name, comparisons in results.items():
        payload[name] = comparison_table(
            comparisons, f"Figure 8: {name}"
        )

    hydra = all_slowdown(results["hydra"])
    norcc = all_slowdown(results["hydra-norcc"])
    nogct = all_slowdown(results["hydra-nogct"])
    print(
        f"\nALL(36) slowdown: hydra={hydra:.2f}% norcc={norcc:.2f}% "
        f"nogct={nogct:.2f}% (paper: 0.7 / 4.5 / 20)"
    )

    # Shape: both structures matter; the GCT matters most.
    assert hydra < norcc < nogct
    assert norcc > 2.0
    assert nogct > 8.0

    payload["all36_slowdown_percent"] = {
        "hydra": round(hydra, 3),
        "hydra-norcc": round(norcc, 3),
        "hydra-nogct": round(nogct, 3),
    }
    record_result("fig8_ablation", payload)
