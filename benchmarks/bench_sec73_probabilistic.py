"""§7.3: probabilistic methods at ultra-low thresholds.

Two claims to reproduce:

1. PARA's mitigation probability "must be increased proportionately as
   T_RH is reduced, which causes significant performance overheads at
   T_RH of 1000 or lower" — the mitigation rate (and hence refresh
   traffic) scales inversely with the threshold.
2. "MRLOC and ProHIT also use probabilistic decisions, however, they
   are not secure" — the Theorem-1 oracle exhibits threshold
   violations for both, while PARA's *statistical* guarantee and
   Hydra's deterministic one hold at their design points.
"""

from _common import bench_config, record_result

from repro.analysis.security import verify_tracker
from repro.core.hydra import HydraTracker
from repro.trackers.insecure import MrlocTracker, ProhitTracker
from repro.trackers.para import para_probability
from repro.workloads import attacks


def test_sec73_para_probability_scaling(benchmark):
    thresholds = (32000, 4000, 1000, 500, 250, 125)

    def compute():
        return {trh: para_probability(trh) for trh in thresholds}

    probabilities = benchmark.pedantic(compute, rounds=1, iterations=1)

    print("\n=== §7.3: PARA mitigation probability vs T_RH ===")
    print(f"{'T_RH':<8} {'p':>10} {'mitigations per 1M ACTs':>25}")
    payload = {}
    for trh, p in probabilities.items():
        per_million = p * 1_000_000
        print(f"{trh:<8} {p:>10.6f} {per_million:>25.0f}")
        payload[str(trh)] = {"p": p, "mitigations_per_1m_acts": per_million}

    # Shape: p (and refresh traffic) scales ~inversely with T_RH; at
    # T_RH=32K it is well under 0.1% (the paper's "p < 1%"), while at
    # ultra-low thresholds it is orders of magnitude higher.
    assert probabilities[32000] < 0.001
    assert probabilities[500] / probabilities[32000] > 30
    assert probabilities[125] > probabilities[250] > probabilities[500]

    record_result("sec73_para_scaling", payload)


def test_sec73_probabilistic_insecurity(benchmark):
    config = bench_config()
    geometry = config.geometry
    th = config.hydra_config().th

    def hunt():
        outcomes = {"mrloc": False, "prohit": False, "hydra_violations": 0}
        for seed in range(40):
            mrloc = MrlocTracker(base_probability=0.002, seed=seed)
            if not verify_tracker(
                mrloc, geometry, attacks.single_sided(5, th + 25), th
            ).secure:
                outcomes["mrloc"] = True
                break
        for seed in range(40):
            prohit = ProhitTracker(seed=seed)
            sequence = attacks.many_sided(list(range(100, 164)), th + 10)
            if not verify_tracker(prohit, geometry, sequence, th).secure:
                outcomes["prohit"] = True
                break
        # Control: Hydra under the same sequences, many repetitions.
        for _ in range(5):
            tracker = HydraTracker(config.hydra_config())
            report = verify_tracker(
                tracker, geometry, attacks.single_sided(5, 4 * th), th
            )
            outcomes["hydra_violations"] += len(report.violations)
        return outcomes

    outcomes = benchmark.pedantic(hunt, rounds=1, iterations=1)

    print("\n=== §7.3: security verdicts ===")
    print(f"MRLOC violated: {outcomes['mrloc']} (paper: not secure)")
    print(f"ProHIT violated: {outcomes['prohit']} (paper: not secure)")
    print(f"Hydra violations: {outcomes['hydra_violations']} (must be 0)")

    assert outcomes["mrloc"], "oracle should defeat MRLOC"
    assert outcomes["prohit"], "oracle should defeat ProHIT"
    assert outcomes["hydra_violations"] == 0

    record_result(
        "sec73_insecurity",
        {
            "mrloc_violated": outcomes["mrloc"],
            "prohit_violated": outcomes["prohit"],
            "hydra_violations": outcomes["hydra_violations"],
        },
    )
