"""Microbenchmark: tracker update throughput (simulator cost model).

Not a paper figure — this measures the *reproduction's* per-activation
cost for each tracker, which bounds how fast the full-system sweeps
run. Uses pytest-benchmark's real timing loop (many rounds), unlike
the one-shot table benches.
"""

import numpy as np
import pytest

from _common import bench_config

from repro.sim.simulator import make_tracker

N_ACTIVATIONS = 20_000


@pytest.fixture(scope="module")
def activation_stream():
    config = bench_config()
    rng = np.random.default_rng(5)
    rows = rng.integers(
        0, config.geometry.total_rows // 2, size=N_ACTIVATIONS
    )
    return rows.tolist()


@pytest.mark.parametrize(
    "tracker_name",
    ["hydra", "graphene", "cra", "ocpr", "para", "dcbf"],
)
def test_tracker_update_throughput(benchmark, tracker_name, activation_stream):
    config = bench_config()

    # Construction happens in setup (once per round, outside the timed
    # region), so the measurement is the update loop alone — previously
    # tracker construction (table/cache allocation) was timed too,
    # inflating every number and drowning the per-update cost of the
    # cheap trackers.
    def setup():
        return (make_tracker(tracker_name, config),), {}

    def run(tracker):
        on_activation = tracker.on_activation
        for row in activation_stream:
            on_activation(row)
        return tracker

    tracker = benchmark.pedantic(run, setup=setup, rounds=5)
    assert tracker.mitigation_count() >= 0
