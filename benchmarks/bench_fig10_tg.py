"""Figure 10: sensitivity to the GCT threshold T_G.

T_G trades filtering lifetime against per-row headroom: too low
(50% of T_H) and groups saturate early; too high (95%) and every row
in a saturated group mitigates almost immediately. The paper selects
80% (T_G = 200 for T_H = 250).
"""

from _common import bench_config, record_result, runner_for

from repro.sim.sweep import suite_slowdowns

TG_FRACTIONS = (0.50, 0.65, 0.80, 0.95)


def test_fig10_tg_threshold(benchmark):
    def run_sweep():
        runner = runner_for(bench_config())
        return {
            fraction: suite_slowdowns(
                runner.compare(f"hydra@tg_fraction={fraction}")
            )
            for fraction in TG_FRACTIONS
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Figure 10: slowdown (%) vs T_G (as % of T_H) ===")
    suites = list(next(iter(results.values())))
    print(f"{'T_G':<10}" + "".join(f"{s:>12}" for s in suites))
    for fraction in TG_FRACTIONS:
        label = f"{int(fraction * 100)}% ({int(fraction * 250)})"
        print(
            f"{label:<10}"
            + "".join(f"{results[fraction][s]:>12.2f}" for s in suites)
        )

    all36 = {f: results[f]["ALL(36)"] for f in TG_FRACTIONS}
    # Shape: the default 80% beats the aggressive 50% filter and is at
    # least as good as (within noise of) the 95% setting overall.
    assert all36[0.80] < all36[0.50]
    assert all36[0.80] <= all36[0.95] + 0.3
    # Over-high T_G hurts PARSEC (the paper's §6.6 observation).
    assert (
        results[0.95]["PARSEC(7)"] >= results[0.80]["PARSEC(7)"] - 0.1
    )

    record_result(
        "fig10_tg_threshold",
        {str(f): {k: round(v, 3) for k, v in results[f].items()}
         for f in TG_FRACTIONS},
    )
