"""Table 1: per-rank SRAM/CAM storage of prior trackers vs threshold.

Regenerates the storage arithmetic for Graphene, TWiCE, CAT, D-CBF and
OCPR on a 16 GB rank at T_RH of 250 / 500 / 1000 / 32000, and checks
the paper's headline claims: every prior scheme blows the <= 64 KB
goal at ultra-low thresholds, while being cheap at the 32K thresholds
earlier papers evaluated.
"""

import pytest

from _common import record_result

from repro.trackers.storage import storage_table

KIB = 1024

#: The paper's published values (KB per rank), for comparison.
PAPER_TABLE1 = {
    250: {"Graphene": 679, "OCPR": 2048, "D-CBF": 1536},
    500: {"Graphene": 340, "TWiCE": 2355, "CAT": 1536, "D-CBF": 768, "OCPR": 2355},
    1000: {"Graphene": 170, "TWiCE": 1229, "CAT": 784, "D-CBF": 384, "OCPR": 2560},
    32000: {"Graphene": 5, "TWiCE": 37, "CAT": 25, "D-CBF": 53, "OCPR": 3891},
}


def test_table1_prior_tracker_storage(benchmark):
    rows = benchmark.pedantic(storage_table, rounds=1, iterations=1)

    print("\n=== Table 1: per-rank storage (KB) ===")
    schemes = list(rows[0].bytes_by_scheme)
    print(f"{'T_RH':<8}" + "".join(f"{s:>10}" for s in schemes))
    payload = {}
    for row in rows:
        cells = "".join(
            f"{row.bytes_by_scheme[s] / KIB:>10.0f}" for s in schemes
        )
        print(f"{row.trh:<8}{cells}")
        payload[row.trh] = {
            s: round(row.bytes_by_scheme[s] / KIB, 1) for s in schemes
        }

    by_trh = {row.trh: row.bytes_by_scheme for row in rows}
    # Calibration: within 10% of every published point.
    for trh, expected in PAPER_TABLE1.items():
        for scheme, kib in expected.items():
            assert by_trh[trh][scheme] / KIB == pytest.approx(
                kib, rel=0.10
            ), (trh, scheme)
    # Headline: at T_RH <= 500 every prior scheme exceeds the 64 KB goal.
    for trh in (250, 500):
        for scheme, size in by_trh[trh].items():
            assert size > 64 * KIB, (trh, scheme)
    # And at the legacy T_RH=32K, SRAM trackers are far below OCPR.
    assert by_trh[32000]["Graphene"] < by_trh[32000]["OCPR"] / 100

    record_result("table1_storage", payload)
