"""Table 3: workload characteristics of the 36 synthetic traces.

The synthetic generator is the reproduction's substitute for pintool
traces (DESIGN.md §3). This benchmark regenerates every workload and
verifies its per-window row-activation statistics against the Table 3
values it was calibrated to — the fidelity check that underpins every
performance figure.
"""

import pytest

from _common import bench_config, record_result, runner_for

from repro.workloads.characteristics import TABLE3
from repro.workloads.trace import characterize


def test_table3_workload_characteristics(benchmark):
    config = bench_config(n_windows=1)
    runner = runner_for(config)

    def generate_all():
        return {w.name: runner.trace_for(w.name) for w in TABLE3}

    traces = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    print("\n=== Table 3: workload characteristics "
          f"(scaled x{config.scale:.5f}, per window) ===")
    print(
        f"{'workload':<12} {'uniq rows':>10} {'paper*scale':>12} "
        f"{'ACT250+':>8} {'paper*scale':>12} {'ACTs/row':>9} {'paper':>7}"
    )
    payload = {}
    for w in TABLE3:
        stats = characterize(traces[w.name])
        expected_rows = w.unique_rows * config.scale
        expected_hot = w.act250_rows * config.scale
        print(
            f"{w.name:<12} {stats.unique_rows:>10} {expected_rows:>12.0f} "
            f"{stats.act250_rows:>8} {expected_hot:>12.1f} "
            f"{stats.acts_per_row:>9.1f} {w.acts_per_row:>7.1f}"
        )
        payload[w.name] = {
            "unique_rows": stats.unique_rows,
            "act250_rows": stats.act250_rows,
            "acts_per_row": round(stats.acts_per_row, 2),
        }
        # Fidelity assertions per workload.
        assert stats.unique_rows == pytest.approx(expected_rows, rel=0.06), w.name
        assert stats.acts_per_row == pytest.approx(
            w.acts_per_row, rel=0.2, abs=1.0
        ), w.name
        if w.act250_rows * config.scale >= 8:
            assert stats.act250_rows == pytest.approx(
                expected_hot, rel=0.35
            ), w.name

    record_result("table3_workloads", payload)
