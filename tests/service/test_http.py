"""HTTP front-end tests: socket-free dispatch + one live round trip."""

import asyncio
import json
import threading

import pytest

from repro.service import ServiceClient, ServiceError, SweepBroker
from repro.service.http import SweepService, serve_async
from repro.sim.config import SystemConfig
from repro.sim.grid import GridSpec

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)
GRID = GridSpec.coerce(["baseline"], ["leela", "gcc"], config=CONFIG)


@pytest.fixture
def broker(tmp_path):
    b = SweepBroker(
        state_dir=tmp_path / "state",
        cache_dir=tmp_path / "cache",
        pool="inline",
    )
    yield b
    b.shutdown(wait=False)


@pytest.fixture
def service(broker):
    return SweepService(broker)


def submit_body(grid=GRID) -> bytes:
    return json.dumps({"grid": grid.to_dict()}).encode()


class TestDispatch:
    """The socket-free routing surface (no asyncio involved)."""

    def test_healthz(self, service):
        assert service.dispatch("GET", "/healthz") == (200, {"ok": True})

    def test_submit_returns_job_id(self, service, broker):
        status, payload = service.dispatch("POST", "/jobs", submit_body())
        assert status == 201
        assert payload["total_cells"] == 2
        assert broker.status(payload["job_id"]).grid_key == payload["grid_key"]

    def test_submit_rejects_bad_json(self, service):
        status, payload = service.dispatch("POST", "/jobs", b"not json")
        assert status == 400
        assert "bad grid payload" in payload["error"]

    def test_submit_rejects_configless_grid(self, service):
        grid = GridSpec.coerce(["baseline"], ["leela"])
        status, payload = service.dispatch(
            "POST", "/jobs", submit_body(grid)
        )
        assert status == 400
        assert "config" in payload["error"]

    def test_status_and_list(self, service, broker):
        _, submitted = service.dispatch("POST", "/jobs", submit_body())
        job_id = submitted["job_id"]
        status, payload = service.dispatch("GET", f"/jobs/{job_id}")
        assert status == 200
        assert payload["job_id"] == job_id
        status, listing = service.dispatch("GET", "/jobs")
        assert status == 200
        assert [j["job_id"] for j in listing["jobs"]] == [job_id]

    def test_unknown_job_is_404(self, service):
        status, payload = service.dispatch("GET", "/jobs/nope")
        assert status == 404
        assert "unknown job" in payload["error"]

    def test_result_before_completion_is_409(self, service, broker):
        job_id = broker.submit(GRID, start=False)
        status, payload = service.dispatch(
            "GET", f"/jobs/{job_id}/result"
        )
        assert status == 409
        assert "not completed" in payload["error"]

    def test_result_after_completion(self, service, broker):
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        status, payload = service.dispatch(
            "GET", f"/jobs/{job_id}/result"
        )
        assert status == 200
        assert sorted(payload["grid"]["baseline"]) == ["gcc", "leela"]

    def test_delete_cancels(self, service, broker):
        job_id = broker.submit(GRID, start=False)
        status, payload = service.dispatch("DELETE", f"/jobs/{job_id}")
        assert status == 200
        assert payload["state"] == "cancelled"

    def test_events_snapshot(self, service, broker):
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        status, payload = service.dispatch(
            "GET", f"/jobs/{job_id}/events"
        )
        assert status == 200
        assert len(payload["events"]) == 2

    def test_method_not_allowed(self, service):
        assert service.dispatch("PUT", "/jobs")[0] == 405
        assert service.dispatch("POST", "/healthz")[0] == 405

    def test_unrouted_path_is_404(self, service):
        assert service.dispatch("GET", "/nope/deeper")[0] == 404


class TestLiveServer:
    """One real asyncio server + http.client round trip."""

    @pytest.fixture
    def endpoint(self, tmp_path):
        broker = SweepBroker(
            state_dir=tmp_path / "state",
            cache_dir=tmp_path / "cache",
            pool="thread",
            workers=2,
        )
        loop = asyncio.new_event_loop()
        started = threading.Event()
        box = {}

        def run():
            async def main():
                server = await serve_async(
                    broker, host="127.0.0.1", port=0, event_poll_s=0.02
                )
                box["port"] = server.sockets[0].getsockname()[1]
                started.set()
                async with server:
                    await server.serve_forever()

            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(main())
            except asyncio.CancelledError:
                pass

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        yield ServiceClient("127.0.0.1", box["port"])
        loop.call_soon_threadsafe(
            lambda: [t.cancel() for t in asyncio.all_tasks(loop)]
        )
        broker.shutdown(wait=False)

    def test_submit_stream_result_over_http(self, endpoint):
        assert endpoint.healthy()
        handle = endpoint.submit(GRID)
        events = list(handle.events())  # blocks until terminal
        assert len(events) == 2
        assert {e["workload"] for e in events} == {"leela", "gcc"}
        assert all(e["job_id"] == handle.job_id for e in events)
        result = handle.result(timeout=60)
        assert sorted(result["baseline"]) == ["gcc", "leela"]
        # Listed and terminal.
        assert handle.job_id in [s.job_id for s in endpoint.jobs()]
        assert endpoint.status(handle.job_id).state == "completed"

    def test_http_result_matches_direct_run(self, endpoint, tmp_path):
        handle = endpoint.submit(GRID)
        via_http = handle.result(timeout=60)
        direct_broker = SweepBroker(
            state_dir=tmp_path / "direct-state",
            cache_dir=tmp_path / "direct-cache",
            pool="inline",
        )
        job_id = direct_broker.submit(GRID, start=False)
        direct_broker.step(job_id)
        direct = direct_broker.result(job_id)
        assert json.dumps(via_http.to_payload(), sort_keys=True) == (
            json.dumps(direct.to_payload(), sort_keys=True)
        )

    def test_unknown_job_raises_service_error(self, endpoint):
        with pytest.raises(ServiceError) as err:
            endpoint.status("nope")
        assert err.value.status == 404
