"""repro.api facade tests: parity, blessed exports, deprecations."""

import json
import warnings

import pytest

from repro import api
from repro.sim import simulate, trace_for_workload
from repro.sim.config import SystemConfig
from repro.sim.grid import GridSpec

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)


class TestRunParity:
    def test_run_byte_identical_to_simulate(self):
        via_api = api.run("hydra", workload="leela", config=CONFIG)
        direct = simulate(
            trace_for_workload(CONFIG, "leela"), CONFIG, "hydra"
        )
        assert json.dumps(via_api.to_dict(), sort_keys=True) == (
            json.dumps(direct.to_dict(), sort_keys=True)
        )

    def test_run_accepts_runspec(self):
        spec = api.RunSpec(tracker="baseline")
        result = api.run(spec, workload="leela", config=CONFIG)
        assert result.tracker == "baseline"

    def test_run_default_tracker(self):
        result = api.run(workload="leela", config=CONFIG)
        assert result.tracker == "hydra"


class TestSweepFacade:
    def test_sweep_local_handle(self, tmp_path):
        handle = api.sweep(
            ["baseline"],
            ["leela"],
            config=CONFIG,
            pool="thread",
            workers=1,
            state_dir=tmp_path / "state",
            cache_dir=tmp_path / "cache",
        )
        result = handle.result(timeout=120)
        assert list(result) == ["baseline"]
        assert handle.status().state == "completed"

    def test_sweep_gridspec_config_wins(self, tmp_path):
        grid = GridSpec.coerce(["baseline"], ["leela"], config=CONFIG)
        with pytest.raises(ValueError):
            api.sweep(
                grid,
                config=SystemConfig(scale=1 / 128),
                state_dir=tmp_path,
                cache_dir=tmp_path,
            )

    def test_sweep_rejects_gridspec_plus_workloads(self, tmp_path):
        grid = GridSpec.coerce(["baseline"], ["leela"], config=CONFIG)
        with pytest.raises(ValueError):
            api.sweep(grid, ["gcc"], state_dir=tmp_path, cache_dir=tmp_path)


class TestCompareFacade:
    def test_compare_matches_runner(self, tmp_path):
        from repro.sim.sweep import ExperimentRunner

        via_api = api.compare(
            "hydra",
            ["leela"],
            config=CONFIG,
            cache_dir=tmp_path / "a",
            progress=False,
        )
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path / "b")
        direct = runner.compare("hydra", ["leela"], progress=False)
        assert [c.workload for c in via_api] == [c.workload for c in direct]
        assert via_api.geomean() == direct.geomean()

    def test_compare_single_tracker_gridspec(self, tmp_path):
        grid = GridSpec.coerce(["hydra"], ["leela"], config=CONFIG)
        comparisons = api.compare(
            grid, cache_dir=tmp_path, progress=False
        )
        assert [c.workload for c in comparisons] == ["leela"]


class TestBlessedExports:
    def test_top_level_lazy_exports(self):
        import repro

        for name in (
            "run",
            "sweep",
            "compare",
            "RunSpec",
            "GridSpec",
            "RunResult",
            "GridResult",
            "list_trackers",
            "list_attacks",
        ):
            assert getattr(repro, name) is getattr(api, name)
            assert name in dir(repro)

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_registries_list(self):
        assert "hydra" in api.list_trackers()
        assert "double_sided" in api.list_attacks()


class TestDeprecations:
    def test_simulate_tracker_name_kwarg_warns(self):
        trace = trace_for_workload(CONFIG, "leela")
        with pytest.warns(DeprecationWarning, match="tracker_name"):
            result = simulate(trace, CONFIG, tracker_name="baseline")
        assert result.tracker == "baseline"

    def test_blessed_path_does_not_warn(self):
        trace = trace_for_workload(CONFIG, "leela")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(trace, CONFIG, "baseline")
