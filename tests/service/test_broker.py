"""Broker tests: kill/resume, in-flight dedup, retry/backoff, leases."""

import json
import threading

import pytest

from repro.service.broker import BrokerError, SweepBroker
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
)
from repro.sim.config import SystemConfig
from repro.sim.grid import GridSpec

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)
GRID = GridSpec.coerce(
    ["baseline", "hydra"], ["leela", "gcc"], config=CONFIG
)


def make_broker(tmp_path, **kwargs):
    kwargs.setdefault("pool", "inline")
    return SweepBroker(
        state_dir=tmp_path / "state",
        cache_dir=tmp_path / "cache",
        **kwargs,
    )


def payload_bytes(grid_result) -> bytes:
    return json.dumps(grid_result.to_payload(), sort_keys=True).encode()


class TestLifecycle:
    def test_submit_and_step_to_completion(self, tmp_path):
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        assert broker.status(job_id).state == PENDING
        broker.step(job_id)
        status = broker.status(job_id)
        assert status.state == COMPLETED
        assert status.completed_cells == status.total_cells == 4
        result = broker.result(job_id)
        assert sorted(result) == ["baseline", "hydra"]
        assert sorted(result["hydra"]) == ["gcc", "leela"]

    def test_submit_requires_config(self, tmp_path):
        broker = make_broker(tmp_path)
        with pytest.raises(ValueError):
            broker.submit(GridSpec.coerce(["hydra"], ["leela"]))

    def test_result_before_done_raises(self, tmp_path):
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        with pytest.raises(BrokerError):
            broker.result(job_id)

    def test_unknown_job_raises(self, tmp_path):
        broker = make_broker(tmp_path)
        with pytest.raises(BrokerError):
            broker.status("nope")

    def test_events_carry_job_id(self, tmp_path):
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        events = broker.events(job_id)
        assert len(events) == 4
        assert all(e["job_id"] == job_id for e in events)
        assert all(e["kind"] == "cell" for e in events)

    def test_cancel_pending_job(self, tmp_path):
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        status = broker.cancel(job_id)
        assert status.state == CANCELLED
        # Terminal: stepping does nothing further.
        broker.step(job_id)
        assert broker.status(job_id).state == CANCELLED

    def test_background_thread_completes(self, tmp_path):
        broker = make_broker(tmp_path, pool="thread", workers=2)
        job_id = broker.submit(GRID)
        result = broker.handle(job_id).result(timeout=120)
        assert sorted(result) == ["baseline", "hydra"]
        broker.shutdown()


class TestKillResume:
    def test_preempt_then_resume_zero_rerun(self, tmp_path):
        """The e2e acceptance path: kill mid-grid, resume, complete.

        Cells simulated before the 'kill' must not re-run (asserted
        via the cache's store counter), and the resumed job's
        GridResult must be byte-identical to an uninterrupted run.
        """
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id, max_cells=2)
        first_stores = broker.cache.stores
        assert broker.status(job_id).state == RUNNING
        assert broker.status(job_id).completed_cells == 2
        del broker  # the "kill": only disk state survives

        revived = make_broker(tmp_path)
        assert revived.resume(start=False) == [job_id]
        assert revived.status(job_id).completed_cells == 2
        revived.step(job_id)
        status = revived.status(job_id)
        assert status.state == COMPLETED
        assert status.completed_cells == 4
        # Every unique cell was simulated exactly once across both
        # broker lifetimes.
        assert first_stores + revived.cache.stores == 4
        # No duplicate manifest records either.
        assert len(revived.events(job_id)) == 4

        fresh = make_broker(tmp_path / "uninterrupted")
        ref_id = fresh.submit(GRID, start=False)
        fresh.step(ref_id)
        assert payload_bytes(revived.result(job_id)) == payload_bytes(
            fresh.result(ref_id)
        )

    def test_resume_ignores_terminal_jobs(self, tmp_path):
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        assert broker.status(job_id).state == COMPLETED
        revived = make_broker(tmp_path)
        assert revived.resume(start=False) == []
        # But its status stays readable from disk.
        assert revived.status(job_id).state == COMPLETED

    def test_result_survives_restart(self, tmp_path):
        """A job completed in a previous broker life still serves its
        result (and a handle) from persisted spec + cache — no
        resume() needed."""
        broker = make_broker(tmp_path)
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        expected = payload_bytes(broker.result(job_id))
        del broker

        revived = make_broker(tmp_path)
        assert payload_bytes(revived.result(job_id)) == expected
        assert revived.handle(job_id).status().state == COMPLETED


class TestDedup:
    def test_two_jobs_fill_each_key_once(self, tmp_path):
        """Same grid submitted twice concurrently: each unique cache
        key is written exactly once (the acceptance criterion)."""
        gate = threading.Event()
        keys_run = []
        lock = threading.Lock()

        from repro.service.worker import run_cell

        def gated_runner(config, tracker, workload, cache_dir, ttl, **kw):
            gate.wait(timeout=60)  # hold cells until both jobs queued
            with lock:
                keys_run.append((tracker, workload))
            return run_cell(config, tracker, workload, cache_dir, ttl, **kw)

        broker = make_broker(
            tmp_path, pool="thread", workers=4, cell_runner=gated_runner
        )
        a = broker.submit(GRID)
        b = broker.submit(GRID)
        gate.set()
        res_a = broker.handle(a).result(timeout=120)
        res_b = broker.handle(b).result(timeout=120)
        assert payload_bytes(res_a) == payload_bytes(res_b)
        # 4 unique cells; the second job shared in-flight tasks or hit
        # the cache — the cache was written exactly once per key.
        assert broker.cache.stores == 4
        status_b = broker.status(b)
        assert status_b.completed_cells == 4
        broker.shutdown()

    def test_second_submission_after_completion_is_all_hits(self, tmp_path):
        broker = make_broker(tmp_path)
        first = broker.submit(GRID, start=False)
        broker.step(first)
        assert broker.cache.stores == 4
        second = broker.submit(GRID, start=False)
        broker.step(second)
        status = broker.status(second)
        assert status.state == COMPLETED
        assert status.cache_hits == 4
        assert broker.cache.stores == 4  # nothing re-simulated


class TestRetry:
    def test_flaky_cell_retries_with_backoff(self, tmp_path):
        """First two attempts of one cell fail; backoff sleeps follow
        the exponential schedule; the job still completes."""
        from repro.service.worker import run_cell

        failures = {"n": 0}
        sleeps = []

        def flaky_runner(config, tracker, workload, cache_dir, ttl, **kw):
            if workload == "gcc" and tracker == "hydra" and failures["n"] < 2:
                failures["n"] += 1
                raise RuntimeError("worker lost")
            return run_cell(config, tracker, workload, cache_dir, ttl, **kw)

        broker = make_broker(
            tmp_path,
            cell_runner=flaky_runner,
            max_retries=2,
            backoff_s=0.5,
            sleep=sleeps.append,
        )
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        status = broker.status(job_id)
        assert status.state == COMPLETED
        assert status.retries == 2
        assert sleeps == [0.5, 1.0]  # backoff_s * 2**(attempt-1)

    def test_exhausted_retries_fail_the_job(self, tmp_path):
        def doomed_runner(*args, **kwargs):
            raise RuntimeError("always broken")

        sleeps = []
        broker = make_broker(
            tmp_path,
            cell_runner=doomed_runner,
            max_retries=2,
            sleep=sleeps.append,
        )
        job_id = broker.submit(GRID, start=False)
        broker.step(job_id)
        status = broker.status(job_id)
        assert status.state == FAILED
        assert "always broken" in status.error
        assert len(sleeps) == 2  # attempts 1..3, backoff between them

    def test_failure_only_after_cached_prefix(self, tmp_path):
        """A failed job keeps its completed cells in the cache; a
        retry submission reuses them."""

        def doomed_runner(*args, **kwargs):
            raise RuntimeError("broken")

        good = make_broker(tmp_path)
        first = good.submit(
            GridSpec.coerce(["baseline"], ["leela", "gcc"], config=CONFIG),
            start=False,
        )
        good.step(first)
        stores = good.cache.stores

        bad = make_broker(tmp_path, cell_runner=doomed_runner, sleep=lambda s: None)
        job_id = bad.submit(GRID, start=False)
        bad.step(job_id)
        status = bad.status(job_id)
        assert status.state == FAILED
        # The baseline cells came from the cache before the failure.
        assert status.cache_hits == stores == 2


class TestClockInjection:
    def test_status_timestamps_use_injected_clock(self, tmp_path):
        now = {"t": 1000.0}
        broker = make_broker(tmp_path, clock=lambda: now["t"])
        job_id = broker.submit(GRID, start=False)
        assert broker.status(job_id).created_at == 1000.0
        now["t"] = 2000.0
        broker.step(job_id)
        assert broker.status(job_id).updated_at == 2000.0
