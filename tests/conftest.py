"""Shared fixtures: small-but-structurally-faithful test systems."""

from __future__ import annotations

import pytest

from repro.core.config import HydraConfig
from repro.dram.timing import DramGeometry, DramTiming


@pytest.fixture
def small_geometry() -> DramGeometry:
    """A tiny system that keeps the full structural ratios.

    2 channels x 1 rank x 4 banks, 1024 rows/bank, 256 B rows:
    row-groups of 128 rows still span two 64 B metadata lines, and
    each bank still has several metadata rows.
    """
    return DramGeometry(
        channels=2,
        ranks_per_channel=1,
        banks_per_rank=4,
        rows_per_bank=1024,
        row_size_bytes=256,
        line_size_bytes=64,
    )


@pytest.fixture
def fast_timing() -> DramTiming:
    """Paper timing with a short (1 ms) tracking window for tests."""
    return DramTiming().scaled(1.0 / 64.0)


@pytest.fixture
def small_hydra_config(small_geometry: DramGeometry) -> HydraConfig:
    """Hydra on the small system: 64-entry GCT (groups of 128 rows)."""
    return HydraConfig(
        geometry=small_geometry,
        trh=500,
        gct_entries=64,
        rcc_entries=64,
        rcc_ways=8,
    )
