"""Bit-identity of ``engine=vector`` against the fast engine.

The vector engine's contract is stronger than "statistically close":
every ``RunResult`` field — floats compared exactly — must match the
fast engine on any trace.  The streaming matrix and the golden suite
pin benign traffic; this file drives the *hostile* shapes, where the
batch path is forced through its scalar escapes constantly: attack
programs hammer rows past T_G and T_H (mitigations, GCT→RCT spills,
RCC thrash) and metadata-region traffic trips the meta-row escape.
"""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.workloads import attacks
from repro.workloads.trace import Trace

CONFIG = SystemConfig(scale=1 / 128, n_windows=2)

#: Attack programs, compiled to row sequences (the same generators the
#: security harness replays).  Each is long enough to cross window
#: resets and draw mitigations under hydra.
ATTACK_TRACES = {
    "double_sided": lambda: attacks.double_sided(500, 2000),
    "many_sided": lambda: attacks.many_sided(range(40, 72, 2), 400),
    "half_double": lambda: attacks.half_double(300, 3000),
    "rcc_thrash": lambda: attacks.rcc_thrash(
        CONFIG.geometry, target_rows=256, rounds=24
    ),
}


def _run(trace, tracker, engine):
    config = CONFIG.with_engine(engine)
    return simulate(trace, config, tracker).to_dict()


@pytest.mark.parametrize("attack", sorted(ATTACK_TRACES), ids=str)
@pytest.mark.parametrize("tracker", ["hydra", "baseline", "graphene"])
def test_attack_traffic_bit_identical(attack, tracker):
    trace = Trace.from_rows(ATTACK_TRACES[attack](), gap_ns=50.0)
    fast = _run(trace, tracker, "fast")
    vector = _run(trace, tracker, "vector")
    # Everything the simulation computed must match to the last ulp;
    # only the engine label itself may differ.
    assert {k for k in fast if fast[k] != vector[k]} == {"engine"}
    assert vector["engine"] == "vector"


def test_mitigations_fire_under_vector():
    """The escape path actually exercised, not vacuously identical."""
    trace = Trace.from_rows(ATTACK_TRACES["double_sided"](), gap_ns=50.0)
    result = simulate(trace, CONFIG.with_engine("vector"), "hydra")
    assert result.mitigations >= 10
