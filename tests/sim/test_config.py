"""Tests for the top-level SystemConfig."""

import pytest

from repro.sim.config import SystemConfig, baseline_table2, default_scale


class TestDerivedHardware:
    def test_full_scale_is_paper_system(self):
        cfg = SystemConfig(scale=1.0)
        assert cfg.geometry.capacity_bytes == 32 * 1024**3
        assert cfg.timing.refresh_window == 64e6

    def test_scaled_hydra_preserves_group_size(self):
        cfg = SystemConfig(scale=1 / 32)
        assert cfg.hydra_config().group_size == 128

    def test_ablation_configs(self):
        cfg = SystemConfig(scale=1 / 32)
        assert cfg.hydra_config(enable_gct=False).enable_gct is False
        assert cfg.hydra_config(enable_rcc=False).enable_rcc is False

    def test_cra_cache_scales_in_whole_sets(self):
        cfg = SystemConfig(scale=1 / 32)
        cache = cfg.cra_cache_bytes()
        assert cache >= 16 * 64
        assert cache % (16 * 64) == 0

    def test_generator_config_mirrors_system(self):
        cfg = SystemConfig(scale=1 / 32, n_windows=3, seed=7)
        gen = cfg.generator_config()
        assert gen.scale == cfg.scale
        assert gen.n_windows == 3
        assert gen.seed == 7


class TestVariations:
    def test_with_trh_default_structure_scaling(self):
        """Figure 7's policy: structures scale 2x at 250, 4x at 125."""
        assert SystemConfig().with_trh(250).structure_scale == 2
        assert SystemConfig().with_trh(125).structure_scale == 4

    def test_with_gct_entries(self):
        cfg = SystemConfig().with_gct_entries(16384)
        assert cfg.gct_entries_full == 16384

    def test_with_tg_fraction(self):
        assert SystemConfig().with_tg_fraction(0.5).tg_fraction == 0.5

    def test_cache_keys_distinguish_configs(self):
        a = SystemConfig()
        assert a.cache_key() != a.with_trh(250).cache_key()
        assert a.cache_key() != a.with_gct_entries(16384).cache_key()
        assert a.cache_key() != a.with_engine("queued").cache_key()
        assert a.cache_key() == SystemConfig().cache_key()

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SystemConfig(scale=0.0)
        with pytest.raises(ValueError):
            SystemConfig(scale=1.5)


class TestEnvironment:
    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "64")
        assert default_scale() == pytest.approx(1 / 64)

    def test_default_scale_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            default_scale()


class TestTable2:
    def test_contents(self):
        table = baseline_table2()
        assert table["Memory size"] == "32 GB - DDR4"
        assert table["Size of row"] == "8KB"
        assert len(table) == 10
