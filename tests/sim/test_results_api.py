"""Typed results API: schema version, accessors, grid/comparison types."""

import pytest

from repro.sim.results import (
    SCHEMA_VERSION,
    WELL_KNOWN_EXTRAS,
    Comparison,
    ComparisonResult,
    GridResult,
    RunResult,
)


def make_result(workload="xz", tracker="hydra", end_time_ns=100.0, **extra):
    return RunResult(
        workload=workload,
        tracker=tracker,
        end_time_ns=end_time_ns,
        requests=1000,
        average_latency_ns=50.0,
        demand_line_transfers=2000,
        meta_accesses=30,
        meta_line_transfers=30,
        victim_refreshes=4,
        mitigations=2,
        window_resets=1,
        activations=900,
        bus_utilization=0.5,
        dram_power_w=3.3,
        extra=dict(extra),
    )


class TestSchemaVersion:
    def test_class_level_version(self):
        assert RunResult.schema_version == SCHEMA_VERSION
        assert make_result().schema_version == SCHEMA_VERSION

    def test_version_not_serialized(self):
        # Golden payloads predate the redesign; the version is a class
        # attribute, not a payload key.
        assert "schema_version" not in make_result().to_dict()

    def test_pre_redesign_payload_loads(self):
        # A cached payload written before this API existed: exactly the
        # dataclass fields, nothing else.
        payload = make_result(total_delay_ns=1.5).to_dict()
        restored = RunResult.from_dict(payload)
        assert restored == make_result(total_delay_ns=1.5)

    def test_unknown_keys_ignored(self):
        payload = make_result().to_dict()
        payload["added_in_schema_3"] = {"future": True}
        assert RunResult.from_dict(payload) == make_result()

    def test_observability_never_loads_from_payload(self):
        payload = make_result().to_dict()
        payload["observability"] = {"series": {"period_ns": 1.0}}
        assert RunResult.from_dict(payload).observability is None

    def test_empty_payload_rejected(self):
        with pytest.raises(TypeError):
            RunResult.from_dict({})


class TestTypedAccessors:
    def test_well_known_extras_documented(self):
        for key in ("distribution", "total_delay_ns", "read_queue_peak"):
            assert key in WELL_KNOWN_EXTRAS

    def test_hydra_distribution(self):
        dist = {"gct_only": 0.9, "rcc_hit": 0.09, "rct_access": 0.01}
        assert make_result(distribution=dist).hydra_distribution == dist
        assert make_result().hydra_distribution is None

    def test_total_delay_ns(self):
        assert make_result(total_delay_ns=7.0).total_delay_ns == 7.0
        assert make_result().total_delay_ns == 0.0

    def test_flushed_writes(self):
        assert make_result(flushed_writes=3).flushed_writes == 3
        assert make_result().flushed_writes == 0

    def test_scheduler_counters_only_when_present(self):
        assert make_result().scheduler_counters == {}
        queued = make_result(read_queue_peak=12, forced_write_drains=2)
        assert queued.scheduler_counters == {
            "read_queue_peak": 12,
            "forced_write_drains": 2,
        }

    def test_requests_per_sim_second(self):
        result = make_result(end_time_ns=1e9)  # 1 simulated second
        assert result.requests_per_sim_second == pytest.approx(1000.0)
        assert make_result(end_time_ns=0.0).requests_per_sim_second == 0.0

    def test_window_series_none_without_observation(self):
        assert make_result().window_series is None

    def test_observability_excluded_from_equality_and_dict(self):
        from repro.obs import RunObservability, WindowSeries

        plain = make_result()
        observed = make_result()
        observed.observability = RunObservability(
            series=WindowSeries(period_ns=1.0)
        )
        assert observed == plain
        assert observed.to_dict() == plain.to_dict()
        assert "observability" not in observed.to_dict()


def comparison_set():
    # xz/mcf are SPEC workloads; GUPS is its own suite.
    return ComparisonResult(
        [
            Comparison("xz", "hydra", baseline_ns=100.0, tracked_ns=125.0),
            Comparison("mcf", "hydra", baseline_ns=100.0, tracked_ns=100.0),
            Comparison("GUPS", "hydra", baseline_ns=100.0, tracked_ns=110.0),
        ]
    )


class TestComparisonResult:
    def test_is_a_list(self):
        comparisons = comparison_set()
        assert len(comparisons) == 3
        assert comparisons[0].workload == "xz"

    def test_geomean(self):
        expected = (0.8 * 1.0 * (1 / 1.1)) ** (1 / 3)
        assert comparison_set().geomean() == pytest.approx(expected)

    def test_suite_geomeans_and_slowdowns(self):
        comparisons = comparison_set()
        means = comparisons.suite_geomeans()
        assert "ALL(36)" in means
        assert means["GUPS(1)"] == pytest.approx(1 / 1.1)
        slowdowns = comparisons.slowdowns()
        assert slowdowns["GUPS(1)"] == pytest.approx(10.0)

    def test_to_table(self):
        table = comparison_set().to_table()
        assert "xz" in table and "GUPS" in table
        assert "norm. perf" in table


class TestGridResult:
    def _grid(self):
        return GridResult(
            {
                "baseline": {
                    "xz": make_result("xz", "baseline", 100.0),
                    "mcf": make_result("mcf", "baseline", 200.0),
                },
                "hydra": {
                    "xz": make_result("xz", "hydra", 110.0),
                    "mcf": make_result("mcf", "hydra", 200.0),
                },
            }
        )

    def test_mapping_protocol_preserved(self):
        grid = self._grid()
        assert set(grid) == {"baseline", "hydra"}
        assert len(grid) == 2
        assert grid["hydra"]["xz"].end_time_ns == 110.0
        assert "baseline" in grid

    def test_trackers_and_workloads(self):
        grid = self._grid()
        assert grid.trackers == ["baseline", "hydra"]
        assert grid.workloads == ["xz", "mcf"]

    def test_comparisons(self):
        comparisons = self._grid().comparisons("hydra")
        assert isinstance(comparisons, ComparisonResult)
        assert [c.workload for c in comparisons] == ["xz", "mcf"]
        assert comparisons[0].normalized_performance == pytest.approx(
            100.0 / 110.0
        )

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self._grid().comparisons("graphene")

    def test_geomean_single_and_all(self):
        grid = self._grid()
        single = grid.geomean("hydra")
        assert single == pytest.approx((100.0 / 110.0 * 1.0) ** 0.5)
        everything = grid.geomean()
        assert everything == {"hydra": single}

    def test_slowdowns_excludes_baseline(self):
        slowdowns = self._grid().slowdowns()
        assert set(slowdowns) == {"hydra"}
        assert "ALL(36)" in slowdowns["hydra"]

    def test_to_table(self):
        table = self._grid().to_table()
        assert "workload" in table
        assert "hydra" in table and "baseline" in table
        table_power = self._grid().to_table("dram_power_w")
        assert "3.3" in table_power
