"""Tests for the experiment runner and its result cache."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.results import Comparison
from repro.sim.sweep import ExperimentRunner, suite_geomeans, suite_slowdowns

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)


@pytest.fixture
def runner(tmp_path) -> ExperimentRunner:
    return ExperimentRunner(CONFIG, cache_dir=tmp_path)


class TestRunner:
    def test_run_and_memoize(self, runner):
        first = runner.run("baseline", "leela")
        second = runner.run("baseline", "leela")
        assert first is second  # in-memory memoization

    def test_disk_cache_roundtrip(self, tmp_path):
        a = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        result = a.run("baseline", "leela")
        b = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        cached = b.run("baseline", "leela")
        assert cached.end_time_ns == result.end_time_ns
        assert list(tmp_path.glob("*.json"))

    def test_disk_cache_disabled(self, tmp_path):
        runner = ExperimentRunner(
            CONFIG, cache_dir=tmp_path, use_disk_cache=False
        )
        runner.run("baseline", "leela")
        assert not list(tmp_path.glob("*.json"))

    def test_different_config_different_key(self, tmp_path):
        a = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        a.run("baseline", "leela")
        b = ExperimentRunner(
            CONFIG.with_trh(250), cache_dir=tmp_path
        )
        b.run("baseline", "leela")
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        runner.run("baseline", "leela")
        for path in tmp_path.glob("*.json"):
            path.write_text("{broken")
        fresh = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        result = fresh.run("baseline", "leela")
        assert result.end_time_ns > 0

    def test_compare_produces_comparisons(self, runner):
        comps = runner.compare("ocpr", ["leela", "povray"])
        assert [c.workload for c in comps] == ["leela", "povray"]
        assert all(c.tracked_ns >= c.baseline_ns * 0.99 for c in comps)

    def test_run_grid_shape(self, runner):
        grid = runner.run_grid(["baseline", "ocpr"], ["leela"])
        assert set(grid) == {"baseline", "ocpr"}
        assert set(grid["baseline"]) == {"leela"}

    def test_trace_memoized(self, runner):
        assert runner.trace_for("leela") is runner.trace_for("leela")


class TestSuiteAggregation:
    def make_comps(self, value):
        from repro.workloads.characteristics import all_names

        return [
            Comparison(name, "t", baseline_ns=1.0, tracked_ns=1.0 / value)
            for name in all_names()
        ]

    def test_suite_geomeans_cover_all_groups(self):
        means = suite_geomeans(self.make_comps(0.9))
        assert set(means) == {
            "SPEC(22)", "PARSEC(7)", "GAP(6)", "GUPS(1)", "ALL(36)",
        }
        for value in means.values():
            assert value == pytest.approx(0.9)

    def test_suite_slowdowns(self):
        slow = suite_slowdowns(self.make_comps(0.8))
        assert slow["ALL(36)"] == pytest.approx(25.0)

    def test_partial_workload_sets(self):
        comps = [Comparison("GUPS", "t", 1.0, 1.25)]
        means = suite_geomeans(comps)
        assert means["GUPS(1)"] == pytest.approx(0.8)
        assert "PARSEC(7)" not in means
