"""RunSpec: the one value object describing what a simulation runs."""

import pytest

from repro.core import HydraTracker
from repro.sim import DEFAULT_TRACKER, RunSpec, SystemConfig
from repro.interfaces import NullTracker

CONFIG = SystemConfig(scale=1 / 128, n_windows=1)


class TestConstruction:
    def test_defaults(self):
        spec = RunSpec()
        assert spec.tracker == DEFAULT_TRACKER
        assert spec.engine is None
        assert spec.instance is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunSpec().tracker = "cra"

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(engine="warp")

    def test_conflicting_spec_and_argument_engines_raise(self):
        with pytest.raises(ValueError, match="conflicting engines"):
            RunSpec(tracker="hydra@engine=queued", engine="fast")

    def test_matching_engines_allowed(self):
        spec = RunSpec(tracker="hydra@engine=queued", engine="queued")
        assert spec.resolved_engine(CONFIG) == "queued"

    def test_instance_label_never_parsed_as_spec(self):
        # A hand-built tracker's label may contain anything; it must
        # not be fed through the registry's spec grammar.
        tracker = NullTracker()
        spec = RunSpec(
            tracker="custom@weird=label", engine="fast", instance=tracker
        )
        assert spec.build_tracker(CONFIG) is tracker


class TestCoerce:
    def test_bare_string(self):
        spec = RunSpec.coerce("cra@cache_kb=128")
        assert spec.tracker == "cra@cache_kb=128"

    def test_none_means_default(self):
        assert RunSpec.coerce() == RunSpec()

    def test_runspec_passthrough(self):
        original = RunSpec(tracker="cra")
        assert RunSpec.coerce(original) is original

    def test_runspec_plus_engine_merges(self):
        merged = RunSpec.coerce(RunSpec(tracker="cra"), engine="queued")
        assert merged.engine == "queued"
        assert merged.tracker == "cra"

    def test_runspec_plus_conflicting_engine_raises(self):
        with pytest.raises(ValueError, match="conflicting engines"):
            RunSpec.coerce(RunSpec(tracker="cra", engine="fast"), engine="queued")

    def test_spec_with_tracker_name_raises(self):
        with pytest.raises(ValueError, match="alone"):
            RunSpec.coerce("hydra", tracker_name="cra")

    def test_spec_with_instance_raises(self):
        with pytest.raises(ValueError, match="alone"):
            RunSpec.coerce("hydra", tracker=NullTracker())

    def test_tracker_name_and_instance_raise(self):
        with pytest.raises(ValueError, match="not both"):
            RunSpec.coerce(tracker_name="hydra", tracker=NullTracker())

    def test_instance_adopts_name_attribute(self):
        spec = RunSpec.coerce(tracker=NullTracker())
        assert spec.instance is not None
        assert spec.tracker == getattr(
            spec.instance, "name", type(spec.instance).__name__
        )


class TestResolution:
    def test_engine_precedence_explicit_spec_config(self):
        queued_config = CONFIG.with_engine("queued")
        # config alone
        assert RunSpec().resolved_engine(queued_config) == "queued"
        # spec beats config
        assert (
            RunSpec(tracker="hydra@engine=fast").resolved_engine(queued_config)
            == "fast"
        )
        # explicit beats config
        assert RunSpec(engine="fast").resolved_engine(queued_config) == "fast"

    def test_build_tracker_from_spec_string(self):
        tracker = RunSpec(tracker="hydra@trh=1000").build_tracker(CONFIG)
        assert isinstance(tracker, HydraTracker)

    def test_build_controller_carries_tracker_and_engine(self):
        spec = RunSpec(tracker="baseline", engine="queued")
        controller = spec.build_controller(CONFIG)
        assert controller.engine == "queued"
        assert isinstance(controller.tracker, NullTracker)

    def test_result_tracker_label(self):
        tracker = NullTracker()
        spec = RunSpec.coerce(tracker=tracker)
        assert spec.result_tracker_label(tracker) == getattr(
            tracker, "name", type(tracker).__name__
        )
