"""GridSpec value-object tests: validation, cells, canonical JSON."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.grid import GridSpec
from repro.sim.sweep import ExperimentRunner, cell_key
from repro.workloads.characteristics import all_names

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)


class TestConstruction:
    def test_requires_a_tracker(self):
        with pytest.raises(ValueError):
            GridSpec(trackers=())

    def test_rejects_unknown_tracker_spec(self):
        with pytest.raises(ValueError, match="unknown tracker"):
            GridSpec(trackers=("not-a-tracker",))

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            GridSpec(trackers=("hydra",), workloads=("nope",))

    def test_keeps_given_spellings(self):
        spec = GridSpec(trackers=("hydra@rcc_kb=28,trh=1000",))
        assert spec.trackers == ("hydra@rcc_kb=28,trh=1000",)

    def test_empty_workloads_resolve_to_all(self):
        spec = GridSpec(trackers=("hydra",))
        assert spec.resolved_workloads() == all_names()
        assert spec.n_cells() == len(all_names())


class TestConfigResolution:
    def test_own_config_wins(self):
        spec = GridSpec(trackers=("hydra",), config=CONFIG)
        assert spec.resolved_config(SystemConfig()) == CONFIG

    def test_fallback_used_when_none(self):
        spec = GridSpec(trackers=("hydra",))
        assert spec.resolved_config(CONFIG) == CONFIG

    def test_no_config_anywhere_raises(self):
        with pytest.raises(ValueError):
            GridSpec(trackers=("hydra",)).resolved_config()

    def test_with_config(self):
        spec = GridSpec(trackers=("hydra",)).with_config(CONFIG)
        assert spec.config == CONFIG


class TestCells:
    def test_tracker_major_deterministic_order(self):
        spec = GridSpec.coerce(
            ["baseline", "hydra"], ["leela", "gcc"], config=CONFIG
        )
        cells = list(spec.cells())
        assert [(c.tracker, c.workload) for c in cells] == [
            ("baseline", "leela"),
            ("baseline", "gcc"),
            ("hydra", "leela"),
            ("hydra", "gcc"),
        ]

    def test_cell_keys_match_runner_keys(self):
        spec = GridSpec.coerce(["hydra"], ["leela"], config=CONFIG)
        (cell,) = spec.cells()
        assert cell.key == cell_key(CONFIG, "hydra", "leela")


class TestCanonicalJson:
    def test_round_trip_equality(self):
        spec = GridSpec.coerce(
            ["hydra@trh=1000"], ["leela"], config=CONFIG
        )
        assert GridSpec.from_json(spec.to_json()) == spec

    def test_round_trip_without_config(self):
        spec = GridSpec.coerce(["hydra"], ["leela"])
        restored = GridSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.config is None

    def test_spelling_variants_share_grid_key(self):
        a = GridSpec.coerce(["hydra@trh=1000,rcc_kb=28"], ["leela"])
        b = GridSpec.coerce(["hydra@rcc_kb=28,trh=1000"], ["leela"])
        assert a.grid_key() == b.grid_key()
        assert a.to_json() != b.to_json()  # spellings preserved

    def test_different_grids_different_keys(self):
        a = GridSpec.coerce(["hydra"], ["leela"])
        b = GridSpec.coerce(["baseline"], ["leela"])
        assert a.grid_key() != b.grid_key()

    def test_explicit_full_suite_equals_default(self):
        a = GridSpec.coerce(["hydra"])
        b = GridSpec.coerce(["hydra"], all_names())
        assert a.grid_key() == b.grid_key()


class TestRunnerIntegration:
    """run_grid/compare accept GridSpec; positional form is a shim."""

    def test_run_grid_accepts_gridspec(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        spec = GridSpec.coerce(["baseline"], ["leela"], config=CONFIG)
        grid = runner.run_grid(spec, progress=False)
        assert list(grid) == ["baseline"]
        assert list(grid["baseline"]) == ["leela"]

    def test_positional_shim_equivalent(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        via_spec = runner.run_grid(
            GridSpec.coerce(["baseline"], ["leela"], config=CONFIG),
            progress=False,
        )
        via_positional = runner.run_grid(
            ["baseline"], ["leela"], progress=False
        )
        assert (
            via_spec["baseline"]["leela"].end_time_ns
            == via_positional["baseline"]["leela"].end_time_ns
        )

    def test_conflicting_config_rejected(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        other = GridSpec.coerce(
            ["baseline"], ["leela"], config=SystemConfig(scale=1 / 128)
        )
        with pytest.raises(ValueError, match="disagrees"):
            runner.run_grid(other)

    def test_gridspec_plus_workloads_rejected(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        spec = GridSpec.coerce(["baseline"], ["leela"], config=CONFIG)
        with pytest.raises(ValueError):
            runner.run_grid(spec, ["gcc"])

    def test_compare_accepts_single_tracker_gridspec(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        spec = GridSpec.coerce(["hydra"], ["leela"], config=CONFIG)
        comparisons = runner.compare(spec, progress=False)
        assert [c.workload for c in comparisons] == ["leela"]

    def test_compare_rejects_multi_tracker_gridspec(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        spec = GridSpec.coerce(["hydra", "cra"], ["leela"], config=CONFIG)
        with pytest.raises(ValueError, match="single-tracker"):
            runner.compare(spec)
