"""Tests for the crash-safe result cache (atomic writes, eviction)."""

import json

import pytest

from repro.sim.cache import ResultCache


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": 1, "y": [2, 3]})
        assert cache.load("abc") == {"x": 1, "y": [2, 3]}

    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(tmp_path).load("nothing") is None

    def test_missing_directory_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.load("abc") is None

    def test_store_creates_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "deep" / "cache")
        cache.store("abc", {"x": 1})
        assert cache.load("abc") == {"x": 1}


class TestAtomicity:
    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.store(f"key{i}", {"i": i})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_overwrite_is_replace_not_append(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"long": "x" * 4096})
        cache.store("abc", {"short": 1})
        # The file must be exactly the new payload, not a mix.
        assert json.loads(cache.path_for("abc").read_text()) == {"short": 1}

    def test_failed_serialization_leaves_cache_untouched(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"good": 1})
        with pytest.raises(TypeError):
            cache.store("abc", {"bad": object()})
        assert cache.load("abc") == {"good": 1}
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []


class TestCorruptEviction:
    def test_truncated_json_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": 1})
        full = cache.path_for("abc").read_text()
        cache.path_for("abc").write_text(full[: len(full) // 2])
        assert cache.load("abc") is None
        assert not cache.path_for("abc").exists()
        assert cache.evictions == 1

    def test_non_object_payload_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("abc").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("abc").write_text("[1, 2, 3]")
        assert cache.load("abc") is None
        assert not cache.path_for("abc").exists()

    def test_evicted_key_refills(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("abc").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("abc").write_text("{broken")
        assert cache.load("abc") is None
        cache.store("abc", {"x": 2})
        assert cache.load("abc") == {"x": 2}
