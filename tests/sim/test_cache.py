"""Tests for the crash-safe result cache (atomic writes, eviction)."""

import json

import pytest

from repro.sim.cache import ResultCache


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": 1, "y": [2, 3]})
        assert cache.load("abc") == {"x": 1, "y": [2, 3]}

    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(tmp_path).load("nothing") is None

    def test_missing_directory_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.load("abc") is None

    def test_store_creates_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "deep" / "cache")
        cache.store("abc", {"x": 1})
        assert cache.load("abc") == {"x": 1}


class TestAtomicity:
    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.store(f"key{i}", {"i": i})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_overwrite_is_replace_not_append(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"long": "x" * 4096})
        cache.store("abc", {"short": 1})
        # The file must be exactly the new payload, not a mix.
        assert json.loads(cache.path_for("abc").read_text()) == {"short": 1}

    def test_failed_serialization_leaves_cache_untouched(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"good": 1})
        with pytest.raises(TypeError):
            cache.store("abc", {"bad": object()})
        assert cache.load("abc") == {"good": 1}
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []


class TestCorruptEviction:
    def test_truncated_json_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("abc", {"x": 1})
        full = cache.path_for("abc").read_text()
        cache.path_for("abc").write_text(full[: len(full) // 2])
        assert cache.load("abc") is None
        assert not cache.path_for("abc").exists()
        assert cache.evictions == 1

    def test_non_object_payload_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("abc").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("abc").write_text("[1, 2, 3]")
        assert cache.load("abc") is None
        assert not cache.path_for("abc").exists()

    def test_evicted_key_refills(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("abc").parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("abc").write_text("{broken")
        assert cache.load("abc") is None
        cache.store("abc", {"x": 2})
        assert cache.load("abc") == {"x": 2}


class TestLeases:
    """The in-flight marker API (atomic create, TTL, stale reclaim)."""

    def test_first_claim_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lease("abc", "worker-1", ttl_s=60, now=100.0)
        assert cache.lease_path("abc").exists()

    def test_second_claim_loses_while_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lease("abc", "worker-1", ttl_s=60, now=100.0)
        assert not cache.lease("abc", "worker-2", ttl_s=60, now=130.0)

    def test_lease_info_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.lease("abc", "worker-1", ttl_s=60, now=100.0)
        info = cache.lease_info("abc")
        assert info.owner == "worker-1"
        assert info.expires_at == 160.0
        assert not info.expired(159.9)
        assert info.expired(160.0)

    def test_expired_lease_is_reclaimed(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lease("abc", "crashed", ttl_s=60, now=100.0)
        # Past the TTL another worker takes over.
        assert cache.lease("abc", "worker-2", ttl_s=60, now=161.0)
        assert cache.lease_info("abc").owner == "worker-2"
        assert cache.leases_reclaimed == 1

    def test_release_by_owner(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.lease("abc", "worker-1", ttl_s=60, now=100.0)
        cache.release("abc", "worker-1")
        assert cache.lease_info("abc") is None
        assert cache.lease("abc", "worker-2", ttl_s=60, now=101.0)

    def test_release_by_stranger_is_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.lease("abc", "worker-1", ttl_s=60, now=100.0)
        cache.release("abc", "worker-2")
        assert cache.lease_info("abc").owner == "worker-1"

    def test_release_absent_lease_is_noop(self, tmp_path):
        ResultCache(tmp_path).release("abc", "worker-1")

    def test_corrupt_lease_file_treated_as_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.lease_path("abc").parent.mkdir(parents=True, exist_ok=True)
        cache.lease_path("abc").write_text("{torn")
        assert cache.lease_info("abc") is None

    def test_lease_does_not_block_store_or_load(self, tmp_path):
        # Leases are advisory: the data path ignores them entirely.
        cache = ResultCache(tmp_path)
        cache.lease("abc", "worker-1", ttl_s=60, now=100.0)
        cache.store("abc", {"x": 1})
        assert cache.load("abc") == {"x": 1}

    def test_store_counter_counts_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stores == 0
        cache.store("abc", {"x": 1})
        cache.store("def", {"x": 2})
        assert cache.stores == 2
