"""Tests for the named-experiment registry."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.experiments import available_experiments, run_experiment

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        names = available_experiments()
        for expected in (
            "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fn4", "table1", "table4", "table5",
        ):
            assert expected in names

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99", CONFIG)


class TestAnalyticExperiments:
    """The storage experiments run instantly and return paper shapes."""

    def test_table1(self):
        payload = run_experiment("table1", CONFIG)
        assert payload["500"]["Graphene"] == pytest.approx(340, rel=0.02)

    def test_table4(self):
        payload = run_experiment("table4", CONFIG)
        assert payload["Total"] == "56.5 KB"

    def test_table5(self):
        payload = run_experiment("table5", CONFIG)
        assert payload["Hydra"]["ddr4"] == payload["Hydra"]["ddr5"]


class TestSimulationExperiment:
    def test_fig6_runs_at_tiny_scale(self):
        payload = run_experiment("fig6", CONFIG)
        assert len(payload) == 36
        for dist in payload.values():
            assert set(dist) == {"gct_only", "rcc_hit", "rct_access"}
