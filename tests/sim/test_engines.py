"""Cross-engine parity: fast, queued, and vector behind one axis.

The tentpole guarantee of the engine refactor: all memory-controller
engines run through one ``simulate()`` path, emit one ``RunResult``
schema, agree on tracker-visible behaviour where scheduling cannot
change it, and never share cache entries.
"""

import dataclasses

import numpy as np
import pytest

from repro.memctrl import (
    ENGINES,
    MemoryController,
    QueuedMemoryController,
    VectorMemoryController,
    build_controller,
    normalize_engine,
)
from repro.sim import SystemConfig, cell_key, simulate, simulate_workload
from repro.sim.results import RunResult
from repro.trackers.registry import canonical_spec, parse_spec, spec_engine
from repro.workloads.trace import Trace

CONFIG = SystemConfig(scale=1 / 128, n_windows=1)


def make_trace(rows, gap=50.0, writes=None, name="synthetic"):
    n = len(rows)
    writes = writes if writes is not None else [False] * n
    return Trace(
        gaps_ns=np.full(n, gap),
        rows=np.asarray(rows),
        lines=np.ones(n, dtype=np.int32),
        writes=np.asarray(writes, dtype=bool),
        name=name,
    )


def distinct_row_trace(config, n=400, gap=50.0):
    """Every request activates a distinct row: activation counts are
    then invariant under request reordering."""
    geometry = config.geometry
    banks = geometry.total_banks
    rows = [
        (i % banks) * geometry.rows_per_bank + i // banks for i in range(n)
    ]
    assert len(set(rows)) == n
    return make_trace(rows, gap=gap)


class TestEngineSelection:
    def test_engines_catalogue(self):
        assert ENGINES == ("fast", "queued", "vector")
        for engine in ENGINES:
            assert normalize_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            normalize_engine("warp")
        with pytest.raises(ValueError, match="engine"):
            SystemConfig(engine="warp")

    def test_build_controller_classes(self):
        fast = build_controller("fast", CONFIG.geometry, CONFIG.timing)
        queued = build_controller("queued", CONFIG.geometry, CONFIG.timing)
        vector = build_controller("vector", CONFIG.geometry, CONFIG.timing)
        assert isinstance(fast, MemoryController)
        assert isinstance(queued, QueuedMemoryController)
        assert isinstance(vector, VectorMemoryController)
        assert fast.engine == "fast" and queued.engine == "queued"
        assert vector.engine == "vector"

    def test_with_engine(self):
        queued = CONFIG.with_engine("queued")
        assert queued.engine == "queued"
        assert CONFIG.engine == "fast"  # original untouched


class TestRunResultParity:
    def test_identical_schema_from_both_engines(self):
        fields = None
        for engine in ENGINES:
            result = simulate_workload(
                CONFIG.with_engine(engine), "baseline", "xz"
            )
            assert isinstance(result, RunResult)
            assert result.engine == engine
            names = [f.name for f in dataclasses.fields(result)]
            if fields is None:
                fields = names
            assert names == fields
            # The full reporting surface works on either engine.
            assert result.dram_power_w > 0
            assert 0.0 < result.bus_utilization <= 1.0
            assert result.requests > 0
            assert "total_delay_ns" in result.extra

    def test_queued_extras_exposed(self):
        result = simulate_workload(
            CONFIG.with_engine("queued"), "hydra", "xz"
        )
        for key in ("read_queue_peak", "forced_write_drains", "meta_writes"):
            assert key in result.extra

    def test_baseline_activation_counts_match(self):
        counts = {}
        for engine in ENGINES:
            trace = distinct_row_trace(CONFIG)
            result = simulate(
                trace, CONFIG, "baseline", engine=engine
            )
            counts[engine] = result.activations
            assert result.requests == len(trace)
        assert counts["fast"] == counts["queued"] > 0
        assert counts["vector"] == counts["fast"]

    def test_dcbf_delay_visible_on_both_engines(self):
        # Long double-sided hammer: FR-FCFS row-hit batching legitimately
        # absorbs many alternating activations, so the queued engine
        # needs a longer stream to push a row past D-CBF's blacklist
        # threshold than the fast engine does.
        trace = make_trace([7, 9] * 8000, gap=10.0, name="hammer")
        for engine in ENGINES:
            result = simulate(trace, CONFIG, "dcbf", engine=engine)
            assert result.extra["total_delay_ns"] > 0.0, engine


class TestEngineCacheKeys:
    def test_config_engine_changes_cell_key(self):
        fast = cell_key(CONFIG, "hydra", "xz")
        queued = cell_key(CONFIG.with_engine("queued"), "hydra", "xz")
        assert fast != queued

    def test_spec_engine_changes_cell_key(self):
        bare = cell_key(CONFIG, "hydra", "xz")
        override = cell_key(CONFIG, "hydra@engine=queued", "xz")
        assert bare != override

    def test_vector_spec_keys_separately(self):
        keys = {
            cell_key(CONFIG, f"hydra@engine={engine}", "xz")
            for engine in ENGINES
        }
        assert len(keys) == len(ENGINES)
        assert cell_key(CONFIG.with_engine("vector"), "hydra", "xz") != (
            cell_key(CONFIG, "hydra", "xz")
        )

    def test_trace_key_engine_agnostic(self):
        assert CONFIG.trace_key() == CONFIG.with_engine("queued").trace_key()
        assert CONFIG.trace_key() != SystemConfig(
            scale=1 / 128, n_windows=2
        ).trace_key()


class TestEngineSweeps:
    def test_run_grid_queued_through_shared_cache(self, tmp_path):
        from repro.sim import ExperimentRunner

        workloads = ["xz", "mcf"]
        trackers = ["baseline", "hydra"]
        fast = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        queued = ExperimentRunner(
            CONFIG.with_engine("queued"), cache_dir=tmp_path
        )
        fast_grid = fast.run_grid(trackers, workloads, progress=False)
        queued_grid = queued.run_grid(trackers, workloads, progress=False)
        for tracker in trackers:
            for wl in workloads:
                assert fast_grid[tracker][wl].engine == "fast"
                assert queued_grid[tracker][wl].engine == "queued"
                assert queued_grid[tracker][wl].dram_power_w > 0
                assert 0 < queued_grid[tracker][wl].bus_utilization <= 1

        # A fresh runner on the shared cache dir serves queued results
        # from disk — and never hands back a fast result.
        rerun = ExperimentRunner(
            CONFIG.with_engine("queued"), cache_dir=tmp_path
        )
        again = rerun.run("hydra", "xz")
        assert again.engine == "queued"
        assert again.to_dict() == queued_grid["hydra"]["xz"].to_dict()


class TestSpecEngineAxis:
    def test_spec_engine_extraction(self):
        assert spec_engine("hydra") is None
        assert spec_engine("hydra@engine=queued") == "queued"
        assert spec_engine("hydra@trh=250,engine=fast") == "fast"

    def test_spec_engine_canonicalized(self):
        assert (
            canonical_spec("hydra@engine=queued , trh=250")
            == "hydra@engine=queued,trh=250"
        )
        assert (
            canonical_spec("hydra@trh=250, engine=vector")
            == "hydra@engine=vector,trh=250"
        )
        assert spec_engine("hydra@engine=vector") == "vector"

    def test_bad_engine_value_rejected(self):
        with pytest.raises(ValueError, match="not one of"):
            parse_spec("hydra@engine=warp")

    def test_spec_override_beats_config(self):
        result = simulate_workload(CONFIG, "baseline@engine=queued", "xz")
        assert result.engine == "queued"

    def test_conflicting_engine_argument_raises(self):
        # Pre-RunSpec, an explicit engine= argument silently beat the
        # spec's engine= override; conflicts are now a hard error.
        trace = distinct_row_trace(CONFIG, n=50)
        with pytest.raises(ValueError, match="conflicting engines"):
            simulate(trace, CONFIG, "baseline@engine=queued", engine="fast")

    def test_matching_engine_argument_allowed(self):
        trace = distinct_row_trace(CONFIG, n=50)
        result = simulate(
            trace, CONFIG, "baseline@engine=queued", engine="queued"
        )
        assert result.engine == "queued"
