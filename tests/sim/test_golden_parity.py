"""Bit-identical parity against pre-optimization golden results.

``golden_runs.json`` was captured before the hot-path optimization
pass (see ``capture_golden_runs.py``), so these tests pin the pass's
core guarantee: the fused controller loop, the resolved trace stream,
the array-backed GCT, and the fused RCC increment change *nothing*
observable — every ``RunResult`` field (floats included, compared
exactly) and every configuration key string is reproduced verbatim.

If an intentional behaviour change ever invalidates the goldens,
regenerate them with::

    PYTHONPATH=src python tests/sim/capture_golden_runs.py

and say so in the commit message — this file failing is otherwise a
correctness regression, not a test to update.
"""

import json

import pytest

from tests.sim.capture_golden_runs import (
    GOLDEN_PATH,
    GOLDEN_WORKLOAD,
    golden_config,
)

from repro.memctrl import ENGINES
from repro.sim.simulator import simulate_workload
from repro.trackers.registry import available_trackers


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _cells():
    return [
        (tracker, engine)
        for engine in ENGINES
        for tracker in available_trackers()
    ]


def test_golden_file_covers_every_registered_cell(golden):
    """New trackers/engines must be added to the golden capture."""
    expected = {f"{tracker}/{engine}" for tracker, engine in _cells()}
    assert set(golden["runs"]) == expected


@pytest.mark.parametrize(
    "tracker,engine", _cells(), ids=lambda v: str(v)
)
def test_run_result_is_bit_identical(golden, tracker, engine):
    config = golden_config(engine)
    result = simulate_workload(config, tracker, GOLDEN_WORKLOAD)
    expected = golden["runs"][f"{tracker}/{engine}"]
    actual = result.to_dict()
    # Field-for-field, exact — float equality is the point: the
    # optimized pipeline performs the same arithmetic in the same
    # order, so even the last ulp must match.
    assert actual == expected


def test_config_keys_unchanged(golden):
    """Cache/trace keys are stable, so PR 1's result cache stays warm."""
    base = golden_config()
    assert golden["keys"] == {
        "base_cache_key": base.cache_key(),
        "base_trace_key": base.trace_key(),
        "queued_cache_key": base.with_engine("queued").cache_key(),
        "vector_cache_key": base.with_engine("vector").cache_key(),
        "trh125_cache_key": base.with_trh(125).cache_key(),
        "gct8k_cache_key": base.with_gct_entries(8192).cache_key(),
    }


@pytest.mark.parametrize("tracker", available_trackers(), ids=str)
def test_vector_golden_matches_fast_golden(golden, tracker):
    """The vector engine's contract: bit-identical to fast.

    Combined with ``test_run_result_is_bit_identical`` this pins the
    *current* vector engine to the fast-engine goldens — only the
    engine label itself may differ between the two cells.
    """
    fast = golden["runs"][f"{tracker}/fast"]
    vector = golden["runs"][f"{tracker}/vector"]
    assert {k for k in fast if fast[k] != vector[k]} == {"engine"}
