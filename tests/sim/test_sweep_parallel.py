"""Tests for parallel sweeps: determinism, racing writers, knobs.

The paper's grids are embarrassingly parallel; these tests pin the
two guarantees the parallel mode makes — results identical to serial
execution, and a disk cache that survives concurrent writers — plus
the REPRO_JOBS/jobs resolution rules and the progress reporter.
"""

import io
import json
import multiprocessing
import os

import pytest

from repro.sim.config import (
    JOBS_ENV_VAR,
    SystemConfig,
    default_jobs,
    resolve_jobs,
)
from repro.sim.sweep import ExperimentRunner, SweepProgress, cell_key

CONFIG = SystemConfig(scale=1 / 256, n_windows=1)
TRACKERS = ["baseline", "ocpr"]
WORKLOADS = ["leela", "povray", "xz", "mcf"]


def _grid_dicts(grid):
    return {
        tracker: {wl: result.to_dict() for wl, result in column.items()}
        for tracker, column in grid.items()
    }


class TestParallelMatchesSerial:
    def test_grid_identical_2x4(self, tmp_path):
        serial = ExperimentRunner(
            CONFIG, cache_dir=tmp_path / "serial"
        ).run_grid(TRACKERS, WORKLOADS, jobs=1)
        parallel = ExperimentRunner(
            CONFIG, cache_dir=tmp_path / "parallel"
        ).run_grid(TRACKERS, WORKLOADS, jobs=4)
        assert _grid_dicts(parallel) == _grid_dicts(serial)

    def test_parallel_fills_shared_cache_format(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        runner.run_grid(TRACKERS, WORKLOADS[:2], jobs=4)
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 4
        for path in files:
            json.loads(path.read_text())  # every entry is valid JSON
        # A fresh serial runner reuses every parallel-written entry.
        fresh = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        fresh.run_grid(TRACKERS, WORKLOADS[:2], jobs=1)
        assert sorted(tmp_path.glob("*.json")) == files

    def test_compare_parallel_matches_serial(self, tmp_path):
        serial = ExperimentRunner(
            CONFIG, cache_dir=tmp_path / "a"
        ).compare("ocpr", WORKLOADS, jobs=1)
        parallel = ExperimentRunner(
            CONFIG, cache_dir=tmp_path / "b"
        ).compare("ocpr", WORKLOADS, jobs=3)
        assert parallel == serial

    def test_parallel_without_disk_cache(self, tmp_path):
        runner = ExperimentRunner(
            CONFIG, cache_dir=tmp_path, use_disk_cache=False
        )
        grid = runner.run_grid(TRACKERS, WORKLOADS[:2], jobs=2)
        assert set(grid) == set(TRACKERS)
        assert not list(tmp_path.glob("*.json"))


def _racing_writer(cache_dir: str, done_path: str) -> None:
    """One contender: simulate the same cell into the shared cache."""
    runner = ExperimentRunner(CONFIG, cache_dir=cache_dir)
    result = runner.run("baseline", "leela")
    with open(done_path, "w") as fh:
        json.dump({"end_time_ns": result.end_time_ns}, fh)


class TestRacingWriters:
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        """Two runners racing on the same key both finish; the cache
        entry stays parseable and matches the deterministic result."""
        cache_dir = tmp_path / "shared"
        ctx = multiprocessing.get_context()
        outs = [str(tmp_path / f"done{i}.json") for i in range(2)]
        procs = [
            ctx.Process(target=_racing_writer, args=(str(cache_dir), out))
            for out in outs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)

        times = [json.load(open(out))["end_time_ns"] for out in outs]
        assert times[0] == times[1]  # deterministic simulation

        key = cell_key(CONFIG, "baseline", "leela")
        cached = json.loads((cache_dir / f"{key}.json").read_text())
        assert cached["end_time_ns"] == times[0]
        leftovers = [p for p in cache_dir.iterdir() if p.suffix != ".json"]
        assert leftovers == []


class TestCorruptCacheHandling:
    def test_truncated_entry_is_evicted_and_refilled(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        result = runner.run("baseline", "leela")
        key = cell_key(CONFIG, "baseline", "leela")
        path = tmp_path / f"{key}.json"
        path.write_text(path.read_text()[:20])  # truncate mid-object

        fresh = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        refilled = fresh.run("baseline", "leela")
        assert refilled.to_dict() == result.to_dict()
        assert fresh.cache.evictions == 1
        json.loads(path.read_text())  # refilled entry is valid again

    def test_wrong_schema_entry_is_evicted(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        key = cell_key(CONFIG, "baseline", "leela")
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / f"{key}.json").write_text('{"not": "a RunResult"}')
        result = runner.run("baseline", "leela")
        assert result.end_time_ns > 0
        assert runner.cache.evictions == 1


class TestJobsResolution:
    def test_explicit_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("5") == 5

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_default_is_serial_without_env(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert default_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert default_jobs() == 7
        assert resolve_jobs(None) == 7

    def test_runner_default_used_by_run_grid(self, tmp_path, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path, jobs=2)
        grid = runner.run_grid(["baseline"], WORKLOADS[:2])
        assert set(grid["baseline"]) == set(WORKLOADS[:2])


class TestSweepProgress:
    def test_counts_and_throughput(self):
        report = SweepProgress(total=4, enabled=False)
        report.record(from_cache=True)
        report.record(from_cache=False)
        report.record(from_cache=False)
        assert report.done == 3
        assert report.cache_hits == 1
        assert report.simulations == 2
        assert report.sims_per_second() > 0

    def test_enabled_report_writes_status(self):
        stream = io.StringIO()
        report = SweepProgress(total=2, enabled=True, stream=stream)
        report.record(from_cache=True)
        report.record(from_cache=False)
        report.finish()
        out = stream.getvalue()
        assert "2/2 cells" in out
        assert "1 cache hits" in out
        assert "sims/s" in out

    def test_auto_disabled_on_non_tty(self):
        report = SweepProgress(total=10, stream=io.StringIO())
        assert report.enabled is False

    def test_grid_reports_through_stream(self, tmp_path):
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        runner.run_grid(["baseline"], WORKLOADS[:2], progress=False)
