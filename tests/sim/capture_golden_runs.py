"""Capture golden ``RunResult``s for the bit-identical parity test.

Run as a script to (re)generate ``golden_runs.json``::

    PYTHONPATH=src python tests/sim/capture_golden_runs.py

The file records, for every registered tracker on every engine, the
full ``RunResult`` of one representative figure-sweep cell, plus the
``cache_key()``/``trace_key()`` strings of the configurations the
sweeps use. ``tests/sim/test_golden_parity.py`` asserts current code
reproduces all of it field-for-field — and that every vector-engine
cell matches its fast-engine cell exactly (the vector engine's
bit-identity contract), so regenerating may only *add* cells.

The committed copy was captured at the pre-optimization code (PR 3
head), so it pins the "bit-identical results" guarantee of the hot-path
optimization pass: regenerating it on newer code must be a no-op.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden_runs.json"

#: The golden cell: small enough to run every tracker quickly, busy
#: enough (GUPS hammers rows) to exercise mitigation and metadata paths.
GOLDEN_SCALE_DENOMINATOR = 128
GOLDEN_N_WINDOWS = 1
GOLDEN_WORKLOAD = "GUPS"


def golden_config(engine: str = "fast"):
    from repro.sim import SystemConfig

    return SystemConfig(
        scale=1.0 / GOLDEN_SCALE_DENOMINATOR,
        n_windows=GOLDEN_N_WINDOWS,
        engine=engine,
    )


def capture() -> dict:
    from repro.memctrl import ENGINES
    from repro.sim.simulator import simulate_workload
    from repro.trackers.registry import available_trackers

    runs = {}
    for engine in ENGINES:
        config = golden_config(engine)
        for tracker in available_trackers():
            result = simulate_workload(config, tracker, GOLDEN_WORKLOAD)
            runs[f"{tracker}/{engine}"] = result.to_dict()

    base = golden_config()
    keys = {
        "base_cache_key": base.cache_key(),
        "base_trace_key": base.trace_key(),
        "queued_cache_key": base.with_engine("queued").cache_key(),
        "vector_cache_key": base.with_engine("vector").cache_key(),
        "trh125_cache_key": base.with_trh(125).cache_key(),
        "gct8k_cache_key": base.with_gct_entries(8192).cache_key(),
    }
    return {
        "workload": GOLDEN_WORKLOAD,
        "scale_denominator": GOLDEN_SCALE_DENOMINATOR,
        "n_windows": GOLDEN_N_WINDOWS,
        "keys": keys,
        "runs": runs,
    }


def main() -> None:
    payload = capture()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {GOLDEN_PATH} ({len(payload['runs'])} runs)")


if __name__ == "__main__":
    main()
