"""Tests for the simulation runner and tracker factory."""

import pytest

from repro.core.hydra import HydraTracker
from repro.sim.config import SystemConfig
from repro.sim.simulator import make_tracker, simulate
from repro.trackers.cra import CraTracker
from repro.trackers.graphene import GrapheneTracker
from repro.interfaces import NullTracker
from repro.workloads.trace import Trace

CONFIG = SystemConfig(scale=1 / 128, n_windows=1)


class TestMakeTracker:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("baseline", NullTracker),
            ("hydra", HydraTracker),
            ("graphene", GrapheneTracker),
            ("cra", CraTracker),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_tracker(name, CONFIG), cls)

    def test_ablation_names(self):
        assert make_tracker("hydra-nogct", CONFIG).gct is None
        assert make_tracker("hydra-norcc", CONFIG).rcc is None

    def test_all_registered_names_construct(self):
        for name in ("ocpr", "para", "dcbf"):
            tracker = make_tracker(name, CONFIG)
            assert tracker.sram_bytes() >= 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_tracker("nonsense", CONFIG)


class TestSimulate:
    def test_smoke_run(self):
        trace = Trace.from_rows([i % 100 for i in range(500)], gap_ns=20.0)
        result = simulate(trace, CONFIG, "hydra")
        assert result.tracker == "hydra"
        assert result.requests == 500
        assert result.end_time_ns > 0
        assert result.activations > 0
        assert "distribution" in result.extra

    def test_tracked_run_never_faster_than_baseline(self):
        trace = Trace.from_rows([i % 40 for i in range(2000)], gap_ns=5.0)
        base = simulate(trace, CONFIG, "baseline")
        cra = simulate(trace, CONFIG, "cra")
        assert cra.end_time_ns >= base.end_time_ns

    def test_explicit_tracker_instance(self):
        trace = Trace.from_rows([1, 2, 3], gap_ns=100.0)
        tracker = make_tracker("ocpr", CONFIG)
        result = simulate(trace, CONFIG, tracker=tracker)
        assert result.tracker == "ocpr"

    def test_cra_reports_cache_miss_rate(self):
        trace = Trace.from_rows([i % 100 for i in range(300)], gap_ns=20.0)
        result = simulate(trace, CONFIG, "cra")
        assert 0.0 <= result.extra["cache_miss_rate"] <= 1.0

    def test_power_reported(self):
        trace = Trace.from_rows([1] * 100, gap_ns=100.0)
        result = simulate(trace, CONFIG, "baseline")
        assert result.dram_power_w > 0
