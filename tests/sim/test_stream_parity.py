"""Golden parity: chunked/streamed traces ≡ materialized traces.

The streaming substrate's whole value rests on one claim: how a trace
is *stored* never changes what the simulator *computes*. These tests
pin it end-to-end — the same workload run from an in-RAM ``Trace``, a
chunked on-disk ``ChunkedTrace``, and a round-tripped external text
file must produce byte-identical ``RunResult`` payloads on both
engines, floats compared exactly. Also covered: the per-window
observability series across chunk boundaries, the streaming axis in
cache keys, spec-level ``stream_chunk`` resolution, and the memo's
spooled-segment lifecycle.
"""

import numpy as np
import pytest

from repro.memctrl import ENGINES
from repro.sim.config import SystemConfig
from repro.sim.simulator import (
    _TRACE_MEMO,
    _clear_trace_memo,
    simulate,
    simulate_workload,
    trace_for_workload,
)
from repro.sim.spec import RunSpec
from repro.workloads.streaming import (
    ChunkedTrace,
    ExternalTraceReader,
    write_external_trace,
)

#: Small enough that the whole matrix stays fast; windows still reset.
CONFIG = SystemConfig(scale=1 / 128, n_windows=2)

#: Deliberately much smaller than a window's request count, so every
#: run crosses many chunk boundaries mid-window.
CHUNK = 1000


@pytest.fixture(autouse=True)
def clean_memo():
    _clear_trace_memo()
    yield
    _clear_trace_memo()


def _sources(tmp_path, config):
    trace = trace_for_workload(config, "GUPS")
    chunked = ChunkedTrace.from_trace(
        trace, tmp_path / "chunked", chunk_requests=CHUNK
    )
    text = tmp_path / "gups.trc"
    write_external_trace(trace, text)
    reader = ExternalTraceReader(text, name=trace.name, chunk_requests=CHUNK)
    return {"materialized": trace, "chunked": chunked, "external": reader}


@pytest.mark.parametrize("engine", ENGINES)
def test_all_representations_bit_identical(tmp_path, engine):
    config = CONFIG.with_engine(engine)
    sources = _sources(tmp_path, config)
    results = {
        label: simulate(source, config, "hydra").to_dict()
        for label, source in sources.items()
    }
    assert results["chunked"] == results["materialized"]
    assert results["external"] == results["materialized"]


@pytest.mark.parametrize("engine", ENGINES)
def test_simulate_workload_streaming_axis_identical(engine):
    """The full memo + spool path, not just hand-built sources."""
    config = CONFIG.with_engine(engine)
    materialized = simulate_workload(config, "hydra", "GUPS")
    streamed = simulate_workload(
        config.with_stream_chunk(CHUNK), "hydra", "GUPS"
    )
    assert streamed.to_dict() == materialized.to_dict()


def test_spec_param_streaming_identical():
    materialized = simulate_workload(CONFIG, "hydra", "GUPS")
    streamed = simulate_workload(CONFIG, f"hydra@stream_chunk={CHUNK}", "GUPS")
    assert streamed.to_dict() == materialized.to_dict()


def test_trace_file_replay_identical(tmp_path):
    """A recorded text trace replayed via config.trace_file matches the
    synthetic run it was recorded from."""
    trace = trace_for_workload(CONFIG, "GUPS")
    path = tmp_path / "gups.trc"
    write_external_trace(trace, path)
    direct = simulate(trace, CONFIG, "hydra").to_dict()
    replay_config = CONFIG.with_trace_file(str(path)).with_stream_chunk(CHUNK)
    replayed = simulate_workload(replay_config, "hydra", "GUPS").to_dict()
    # The replayed trace is named after the file stem; everything the
    # simulation computed must match exactly.
    assert replayed.pop("workload") == "gups"
    direct.pop("workload")
    assert replayed == direct


def test_observability_series_survives_chunk_boundaries(tmp_path):
    """Per-window series are sim-time driven, so chunk boundaries must
    be invisible: the observed run over a chunked source reports the
    exact same window samples as over the materialized trace."""
    sources = _sources(tmp_path, CONFIG)
    observed = {
        label: simulate(source, CONFIG, "hydra", observe=True)
        for label, source in sources.items()
    }
    base = observed["materialized"].observability.to_dict()
    assert observed["chunked"].observability.to_dict() == base
    assert observed["external"].observability.to_dict() == base


class TestStreamingKeys:
    def test_defaults_add_no_suffix(self):
        """Pre-streaming keys are byte-identical (cache stays warm) —
        also pinned by the golden suite; this is the targeted check."""
        assert CONFIG.cache_key() == CONFIG.with_stream_chunk(0).cache_key()
        assert "-sc" not in CONFIG.cache_key()
        assert "-tf" not in CONFIG.trace_key()

    def test_stream_chunk_separates_keys(self):
        streamed = CONFIG.with_stream_chunk(CHUNK)
        assert streamed.cache_key() != CONFIG.cache_key()
        assert streamed.trace_key() != CONFIG.trace_key()
        assert f"-sc{CHUNK}" in streamed.cache_key()

    def test_trace_file_separates_keys(self):
        replay = CONFIG.with_trace_file("/tmp/a.trc")
        assert replay.cache_key() != CONFIG.cache_key()
        assert replay.trace_key() != CONFIG.trace_key()
        other = CONFIG.with_trace_file("/tmp/b.trc")
        assert other.cache_key() != replay.cache_key()

    def test_negative_stream_chunk_rejected(self):
        with pytest.raises(ValueError):
            CONFIG.with_stream_chunk(-1)


class TestRunSpecStreamChunk:
    def test_resolution_order(self):
        assert RunSpec().resolved_stream_chunk(CONFIG) == 0
        spec = RunSpec(tracker=f"hydra@stream_chunk={CHUNK}")
        assert spec.resolved_stream_chunk(CONFIG) == CHUNK
        explicit = RunSpec(stream_chunk=32)
        assert explicit.resolved_stream_chunk(
            CONFIG.with_stream_chunk(CHUNK)
        ) == 32
        config_level = CONFIG.with_stream_chunk(CHUNK)
        assert RunSpec().resolved_stream_chunk(config_level) == CHUNK

    def test_conflicting_values_raise(self):
        with pytest.raises(ValueError, match="conflicting stream chunks"):
            RunSpec(tracker="hydra@stream_chunk=64", stream_chunk=32)

    def test_matching_values_allowed(self):
        spec = RunSpec(tracker="hydra@stream_chunk=64", stream_chunk=64)
        assert spec.resolved_stream_chunk(CONFIG) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="stream_chunk"):
            RunSpec(stream_chunk=-1)

    def test_apply_stream_chunk(self):
        spec = RunSpec(stream_chunk=CHUNK)
        applied = spec.apply_stream_chunk(CONFIG)
        assert applied.stream_chunk == CHUNK
        assert RunSpec().apply_stream_chunk(CONFIG) is CONFIG


class TestMemoSpool:
    def test_streamed_workload_memoizes_chunked_source(self):
        config = CONFIG.with_stream_chunk(CHUNK)
        source = trace_for_workload(config, "GUPS")
        assert isinstance(source, ChunkedTrace)
        assert source.directory.exists()
        # Memo hit: same object, no respool.
        assert trace_for_workload(config, "GUPS") is source

    def test_materialized_and_chunked_are_distinct_entries(self):
        materialized = trace_for_workload(CONFIG, "GUPS")
        chunked = trace_for_workload(CONFIG.with_stream_chunk(CHUNK), "GUPS")
        assert materialized is not chunked
        assert isinstance(chunked, ChunkedTrace)
        np.testing.assert_array_equal(
            chunked.materialize().rows, materialized.rows
        )

    def test_eviction_deletes_spooled_segments(self, monkeypatch):
        monkeypatch.setattr(
            "repro.sim.simulator._TRACE_MEMO_MAX", 1
        )
        first = trace_for_workload(CONFIG.with_stream_chunk(CHUNK), "GUPS")
        assert first.directory.exists()
        trace_for_workload(CONFIG.with_stream_chunk(CHUNK + 1), "GUPS")
        assert len(_TRACE_MEMO) == 1
        assert not first.directory.exists()

    def test_eviction_never_deletes_user_directories(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.sim.simulator._TRACE_MEMO_MAX", 1)
        trace = trace_for_workload(CONFIG, "GUPS")
        user_dir = tmp_path / "mine"
        ChunkedTrace.from_trace(trace, user_dir, chunk_requests=CHUNK)
        _clear_trace_memo()
        config = CONFIG.with_trace_file(str(user_dir))
        opened = trace_for_workload(config, "GUPS")
        assert isinstance(opened, ChunkedTrace)
        trace_for_workload(CONFIG.with_stream_chunk(CHUNK), "GUPS")  # evicts
        assert user_dir.exists()

    def test_external_trace_file_is_spooled_once(self, tmp_path):
        """Streaming replay of a text file parses it once into mmapped
        segments; the memo then serves the spooled segments."""
        trace = trace_for_workload(CONFIG, "GUPS")
        path = tmp_path / "gups.trc"
        write_external_trace(trace, path)
        config = CONFIG.with_trace_file(str(path)).with_stream_chunk(CHUNK)
        source = trace_for_workload(config, "GUPS")
        assert isinstance(source, ChunkedTrace)
        assert source.name == "gups"
        assert trace_for_workload(config, "GUPS") is source
