"""Tests for result records and aggregation."""

import pytest

from repro.sim.results import Comparison, RunResult, geometric_mean


class TestComparison:
    def test_normalized_performance(self):
        comp = Comparison("w", "t", baseline_ns=100.0, tracked_ns=125.0)
        assert comp.normalized_performance == pytest.approx(0.8)
        assert comp.slowdown_percent == pytest.approx(25.0)

    def test_no_slowdown(self):
        comp = Comparison("w", "t", baseline_ns=100.0, tracked_ns=100.0)
        assert comp.normalized_performance == 1.0
        assert comp.slowdown_percent == 0.0

    def test_degenerate_inputs(self):
        assert Comparison("w", "t", 0.0, 10.0).slowdown_percent == 0.0
        assert Comparison("w", "t", 10.0, 0.0).normalized_performance == 1.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([0.9, 0.9, 0.9]) == pytest.approx(0.9)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestRunResultSerialization:
    def test_roundtrip(self):
        result = RunResult(
            workload="xz",
            tracker="hydra",
            end_time_ns=1.0,
            requests=10,
            average_latency_ns=50.0,
            demand_line_transfers=20,
            meta_accesses=3,
            meta_line_transfers=3,
            victim_refreshes=4,
            mitigations=1,
            window_resets=2,
            activations=10,
            bus_utilization=0.5,
            dram_power_w=3.3,
            extra={"distribution": {"gct_only": 1.0}},
        )
        restored = RunResult.from_dict(result.to_dict())
        assert restored == result
