"""Public-API surface tests: imports, exports, version, metadata."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.core",
    "repro.trackers",
    "repro.dram",
    "repro.memctrl",
    "repro.cpu",
    "repro.workloads",
    "repro.analysis",
    "repro.sim",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        assert callable(repro.HydraTracker)
        assert callable(repro.HydraConfig)
        assert callable(repro.hydra_storage)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("package", PACKAGES)
class TestSubpackages:
    def test_imports(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} needs a module docstring"

    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, None) is not None, (package, name)


class TestTrackerRegistry:
    def test_every_functional_tracker_constructible(self):
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import make_tracker

        config = SystemConfig(scale=1 / 256)
        names = (
            "baseline", "hydra", "hydra-nogct", "hydra-norcc",
            "hydra-randomized", "graphene", "cra", "ocpr", "para",
            "dcbf", "cat", "twice", "mithril", "mrloc", "prohit",
        )
        for name in names:
            tracker = make_tracker(name, config)
            assert tracker.sram_bytes() >= 0, name
            # Every tracker must survive a handful of activations.
            for row in range(8):
                tracker.on_activation(row)
            tracker.on_window_reset()
