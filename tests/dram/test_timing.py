"""Tests for DDR4 timing parameters and geometry."""


import pytest

from repro.dram.timing import (
    PAPER_GEOMETRY,
    PAPER_TIMING,
    DramGeometry,
    DramTiming,
)


class TestDramTiming:
    def test_paper_defaults_match_table2(self):
        t = PAPER_TIMING
        assert t.t_rcd == t.t_rp == t.t_cas == 14.0
        assert t.t_rc == 45.0
        assert t.t_rfc == 350.0
        assert t.refresh_window == 64e6  # 64 ms in ns

    def test_act_max_is_about_1_36_million(self):
        """§2.1: ~1.36M activations per bank per 64 ms window."""
        act_max = PAPER_TIMING.max_activations_per_window()
        assert act_max == pytest.approx(1_360_000, rel=0.01)

    def test_act_max_discounts_refresh_time(self):
        no_refresh = int(PAPER_TIMING.refresh_window // PAPER_TIMING.t_rc)
        assert PAPER_TIMING.max_activations_per_window() < no_refresh

    def test_refresh_duty_cycle(self):
        assert PAPER_TIMING.refresh_duty == pytest.approx(350.0 / 7800.0)

    def test_scaled_window_only(self):
        scaled = PAPER_TIMING.scaled(1 / 32)
        assert scaled.refresh_window == PAPER_TIMING.refresh_window / 32
        assert scaled.t_rc == PAPER_TIMING.t_rc
        assert scaled.t_refi == PAPER_TIMING.t_refi

    @pytest.mark.parametrize("field", ["t_rcd", "t_rp", "t_cas", "t_rc"])
    def test_rejects_nonpositive_times(self, field):
        with pytest.raises(ValueError):
            DramTiming(**{field: 0.0})

    def test_rejects_rfc_longer_than_refi(self):
        with pytest.raises(ValueError):
            DramTiming(t_rfc=8000.0, t_refi=7800.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            PAPER_TIMING.scaled(0.0)


class TestDramGeometry:
    def test_paper_system_is_32gb(self):
        assert PAPER_GEOMETRY.capacity_bytes == 32 * 1024**3

    def test_paper_system_has_4m_rows(self):
        assert PAPER_GEOMETRY.total_rows == 4 * 1024**2

    def test_paper_system_bank_count(self):
        assert PAPER_GEOMETRY.total_banks == 32
        assert PAPER_GEOMETRY.rows_per_rank == 16 * 131072

    def test_lines_per_row(self):
        assert PAPER_GEOMETRY.lines_per_row == 128

    def test_scaled_preserves_banks_and_ratios(self):
        scaled = PAPER_GEOMETRY.scaled(1 / 32)
        assert scaled.total_banks == PAPER_GEOMETRY.total_banks
        assert scaled.rows_per_bank == PAPER_GEOMETRY.rows_per_bank // 32
        # Row size scales along, preserving metadata-row structure.
        assert scaled.row_size_bytes == PAPER_GEOMETRY.row_size_bytes // 32
        assert (
            scaled.rows_per_bank / scaled.lines_per_row
            == PAPER_GEOMETRY.rows_per_bank / PAPER_GEOMETRY.lines_per_row
        )

    def test_scaled_row_size_floor_is_line_size(self):
        scaled = PAPER_GEOMETRY.scaled(1 / 1024)
        assert scaled.row_size_bytes >= scaled.line_size_bytes

    def test_rejects_row_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            DramGeometry(row_size_bytes=100, line_size_bytes=64)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            DramGeometry(channels=0)

    def test_scaled_rows_are_power_of_two(self):
        for denom in (3, 5, 7, 12):
            scaled = PAPER_GEOMETRY.scaled(1.0 / denom)
            rows = scaled.rows_per_bank
            assert rows & (rows - 1) == 0
