"""Tests for the Micron IDD-style DRAM power model."""

import pytest

from repro.dram.bank import DramActivityStats
from repro.dram.power import (
    DramPowerModel,
    DramPowerParams,
    power_overhead_percent,
)
from repro.dram.timing import DramTiming

TIMING = DramTiming()


@pytest.fixture
def model() -> DramPowerModel:
    return DramPowerModel(TIMING)


class TestEnergies:
    def test_all_event_energies_positive(self, model):
        assert model.energy_per_act > 0
        assert model.energy_per_read_line > 0
        assert model.energy_per_write_line > 0
        assert model.energy_per_refresh > 0
        assert model.background_power > 0

    def test_refresh_energy_dominates_single_events(self, model):
        """One REF (350 ns, all banks) costs far more than one ACT."""
        assert model.energy_per_refresh > 10 * model.energy_per_act

    def test_read_costs_more_than_write_per_line(self, model):
        # IDD4R > IDD4W in the default parameter set.
        assert model.energy_per_read_line > model.energy_per_write_line


class TestReport:
    def test_idle_system_is_background_plus_refresh(self, model):
        stats = DramActivityStats()
        report = model.report(stats, elapsed_ns=1e6, n_refreshes=100)
        assert report.dynamic_energy == pytest.approx(
            model.energy_per_refresh * 100
        )
        assert report.background_energy == pytest.approx(
            model.background_power * 1e-3
        )

    def test_average_power_scales_with_activity(self, model):
        light = model.report(
            DramActivityStats(activations=10), elapsed_ns=1e6, n_refreshes=0
        )
        heavy = model.report(
            DramActivityStats(activations=10_000), elapsed_ns=1e6, n_refreshes=0
        )
        assert heavy.average_power > light.average_power

    def test_multi_rank_background(self, model):
        stats = DramActivityStats()
        one = model.report(stats, elapsed_ns=1e6, n_refreshes=0, n_ranks=1)
        two = model.report(stats, elapsed_ns=1e6, n_refreshes=0, n_ranks=2)
        assert two.background_energy == pytest.approx(2 * one.background_energy)

    def test_zero_elapsed_power_is_zero(self, model):
        report = model.report(DramActivityStats(), 0.0, 0)
        assert report.average_power == 0.0

    def test_rejects_negative_inputs(self, model):
        with pytest.raises(ValueError):
            model.report(DramActivityStats(), -1.0, 0)
        with pytest.raises(ValueError):
            model.report(DramActivityStats(), 1.0, -1)


class TestOverhead:
    def test_extra_traffic_shows_as_overhead(self, model):
        base = model.report(
            DramActivityStats(activations=1000, read_lines=5000),
            elapsed_ns=1e6,
            n_refreshes=10,
        )
        tracked = model.report(
            DramActivityStats(activations=1050, read_lines=5100),
            elapsed_ns=1e6,
            n_refreshes=10,
        )
        overhead = power_overhead_percent(base, tracked)
        assert 0.0 < overhead < 5.0


class TestParams:
    def test_rejects_idd0_below_idd2n(self):
        with pytest.raises(ValueError):
            DramPowerParams(idd0=0.01, idd2n=0.02)

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            DramPowerParams(chips_per_rank=0)
