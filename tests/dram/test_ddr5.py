"""Tests for the DDR5 presets and their Table 5 consequences."""

import pytest

from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.core.storage import hydra_storage
from repro.dram.ddr5 import DDR5_GEOMETRY, DDR5_TIMING, ddr5_system
from repro.dram.timing import PAPER_GEOMETRY
from repro.trackers.graphene import GrapheneTracker


class TestGeometry:
    def test_same_capacity_double_banks(self):
        assert DDR5_GEOMETRY.capacity_bytes == PAPER_GEOMETRY.capacity_bytes
        assert DDR5_GEOMETRY.banks_per_rank == 2 * PAPER_GEOMETRY.banks_per_rank

    def test_total_rows_unchanged(self):
        assert DDR5_GEOMETRY.total_rows == PAPER_GEOMETRY.total_rows

    def test_scaled_system(self):
        geometry, timing = ddr5_system(1 / 32)
        assert geometry.banks_per_rank == 32
        assert timing.refresh_window == DDR5_TIMING.refresh_window / 32


class TestTable5Consequences:
    def test_graphene_doubles_on_ddr5(self):
        """Per-bank CAM: 2x banks -> 2x entries -> 2x storage."""
        ddr4 = GrapheneTracker(PAPER_GEOMETRY, trh=500)
        ddr5 = GrapheneTracker(DDR5_GEOMETRY, trh=500)
        assert ddr5.sram_bytes() == 2 * ddr4.sram_bytes()

    def test_hydra_storage_unchanged_on_ddr5(self):
        """Hydra's structures track rows, not banks."""
        ddr4 = hydra_storage(HydraConfig(geometry=PAPER_GEOMETRY))
        ddr5 = hydra_storage(HydraConfig(geometry=DDR5_GEOMETRY))
        assert ddr5.gct_bytes == ddr4.gct_bytes
        assert ddr5.rcc_bytes == ddr4.rcc_bytes
        # RIT-ACT still covers 4 MB of counters (512 meta rows).
        assert ddr5.dram_reserved_bytes == ddr4.dram_reserved_bytes


class TestHydraRunsOnDdr5:
    def test_tracking_and_mitigation(self):
        geometry, _ = ddr5_system(1 / 64)
        config = HydraConfig(
            geometry=geometry,
            trh=100,
            gct_entries=geometry.total_rows // 128,
            rcc_entries=64,
            rcc_ways=8,
        )
        tracker = HydraTracker(config)
        mitigations = 0
        for _ in range(400):
            response = tracker.on_activation(7)
            if response and response.mitigate_rows:
                mitigations += 1
        assert mitigations >= 3

    def test_refresh_duty_comparable(self):
        assert DDR5_TIMING.refresh_duty == pytest.approx(
            295.0 / 3900.0
        )
        assert DDR5_TIMING.max_activations_per_window() > 1_000_000
