"""Tests for the tFAW rank activation window."""

import pytest

from repro.dram.bank import Bank, RankActWindow, RefreshTimeline
from repro.dram.bank import ChannelBus
from repro.dram.timing import DramGeometry, DramTiming
from repro.memctrl.controller import MemoryController


class TestRankActWindow:
    def test_disabled_by_default(self):
        window = RankActWindow(0.0)
        assert window.constrain(5.0) == 5.0
        window.record(5.0)
        assert window.constrain(5.0) == 5.0

    def test_fifth_act_waits_for_window(self):
        window = RankActWindow(30.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            assert window.constrain(t) == t
            window.record(t)
        # Fifth ACT must wait until first + tFAW.
        assert window.constrain(4.0) == pytest.approx(30.0)

    def test_window_slides(self):
        window = RankActWindow(30.0)
        for t in (0.0, 10.0, 20.0, 29.0):
            window.record(t)
        assert window.constrain(50.0) == 50.0  # window long past

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RankActWindow(-1.0)
        with pytest.raises(ValueError):
            RankActWindow(0.0, t_rrd=-1.0)


class TestRankTrrd:
    def test_consecutive_acts_spaced_by_trrd(self):
        window = RankActWindow(0.0, t_rrd=6.0)
        assert window.constrain(0.0) == 0.0
        window.record(0.0)
        assert window.constrain(2.0) == 6.0
        window.record(6.0)
        assert window.constrain(20.0) == 20.0

    def test_trrd_and_tfaw_compose(self):
        window = RankActWindow(30.0, t_rrd=6.0)
        t = 0.0
        for _ in range(4):
            t = window.constrain(t)
            window.record(t)
        # ACT spacing of 6 ns: 4 ACTs at 0/6/12/18; 5th waits for tFAW.
        fifth = window.constrain(t)
        assert fifth == pytest.approx(30.0)

    def test_timing_validation(self):
        from repro.dram.timing import DramTiming

        with pytest.raises(ValueError):
            DramTiming(t_rrd=-0.5)
        scaled = DramTiming(t_rrd=6.0).scaled(1 / 4)
        assert scaled.t_rrd == 6.0


class TestBankIntegration:
    def test_burst_of_acts_across_banks_throttled(self):
        timing = DramTiming(t_faw=30.0)
        refresh = RefreshTimeline(timing)
        shared = RankActWindow(timing.t_faw)
        banks = [Bank(timing, refresh, act_window=shared) for _ in range(8)]
        bus = ChannelBus(timing)
        t0 = timing.t_rfc + 1.0
        act_times = []
        for bank in banks:
            result = bank.access(t0, row=1, n_lines=1, bus=bus)
            act_times.append(result.act_time)
        # ACTs 5..8 pushed beyond the first window.
        assert act_times[4] >= act_times[0] + 30.0
        assert act_times[7] >= act_times[3] + 30.0

    def test_no_throttle_when_disabled(self):
        timing = DramTiming()  # t_faw = 0
        refresh = RefreshTimeline(timing)
        shared = RankActWindow(timing.t_faw)
        banks = [Bank(timing, refresh, act_window=shared) for _ in range(8)]
        bus = ChannelBus(timing)
        t0 = timing.t_rfc + 1.0
        act_times = [
            bank.access(t0, row=1, n_lines=1, bus=bus).act_time
            for bank in banks
        ]
        assert max(act_times) == pytest.approx(min(act_times), abs=1e-9)


class TestControllerIntegration:
    GEOMETRY = DramGeometry(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=8,
        rows_per_bank=1024,
        row_size_bytes=256,
    )

    def test_tfaw_slows_multi_bank_act_bursts(self):
        def run(t_faw):
            timing = DramTiming(t_faw=t_faw).scaled(1 / 64)
            mc = MemoryController(self.GEOMETRY, timing)
            t = timing.t_rfc + 1.0
            done = t
            for i in range(64):
                done = mc.access(t, row_id=i * 1024 % (8 * 1024) + i)
            return done

        assert run(t_faw=40.0) > run(t_faw=0.0)
