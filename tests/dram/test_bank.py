"""Tests for the event-driven bank / bus / refresh timing models."""

import pytest

from repro.dram.bank import Bank, ChannelBus, DramActivityStats, RefreshTimeline
from repro.dram.timing import DramTiming

TIMING = DramTiming()


@pytest.fixture
def bank() -> Bank:
    return Bank(TIMING, RefreshTimeline(TIMING))


@pytest.fixture
def bus() -> ChannelBus:
    return ChannelBus(TIMING)


def start_time() -> float:
    """A time safely outside the t=0 refresh blackout."""
    return TIMING.t_rfc + 10.0


class TestBankAccess:
    def test_first_access_activates(self, bank, bus):
        result = bank.access(start_time(), row=5, n_lines=1, bus=bus)
        assert result.activated
        assert bank.stats.activations == 1
        assert bank.open_row == 5

    def test_row_hit_skips_activation(self, bank, bus):
        t = start_time()
        first = bank.access(t, row=5, n_lines=1, bus=bus)
        second = bank.access(first.completion, row=5, n_lines=1, bus=bus)
        assert not second.activated
        assert bank.stats.row_buffer_hits == 1
        assert second.completion > first.completion

    def test_row_miss_pays_precharge_plus_activate(self, bank, bus):
        t = start_time()
        bank.access(t, row=5, n_lines=1, bus=bus)
        miss = bank.access(t, row=6, n_lines=1, bus=bus)
        # PRE + ACT + tRCD + tCAS + burst at minimum.
        minimum = TIMING.t_rp + TIMING.t_rcd + TIMING.t_cas + TIMING.t_burst
        assert miss.completion - t >= minimum
        assert bank.stats.precharges == 1

    def test_trc_spacing_between_activations(self, bank, bus):
        t = start_time()
        first = bank.access(t, row=1, n_lines=1, bus=bus)
        second = bank.access(t, row=2, n_lines=1, bus=bus)
        assert second.act_time - first.act_time >= TIMING.t_rc

    def test_row_hit_latency_is_cas_plus_burst(self, bank, bus):
        t = start_time()
        first = bank.access(t, row=1, n_lines=1, bus=bus)
        ready = first.completion
        hit = bank.access(ready, row=1, n_lines=1, bus=bus)
        assert hit.completion - ready == pytest.approx(
            TIMING.t_cas + TIMING.t_burst
        )

    def test_multi_line_burst_occupies_bus(self, bank, bus):
        t = start_time()
        result = bank.access(t, row=1, n_lines=4, bus=bus)
        assert bus.busy_time == pytest.approx(4 * TIMING.t_burst)
        assert result.completion >= t + 4 * TIMING.t_burst

    def test_rejects_zero_lines(self, bank, bus):
        with pytest.raises(ValueError):
            bank.access(start_time(), row=1, n_lines=0, bus=bus)

    def test_write_counts_write_lines(self, bank, bus):
        bank.access(start_time(), row=1, n_lines=2, bus=bus, is_write=True)
        assert bank.stats.write_lines == 2
        assert bank.stats.read_lines == 0


class TestRefreshRow:
    def test_refresh_closes_row(self, bank, bus):
        t = start_time()
        bank.access(t, row=1, n_lines=1, bus=bus)
        bank.refresh_row(t + 100.0)
        assert bank.open_row is None
        assert bank.stats.activations == 2

    def test_refresh_respects_trc(self, bank, bus):
        t = start_time()
        first = bank.access(t, row=1, n_lines=1, bus=bus)
        free_at = bank.refresh_row(t)
        assert free_at - first.act_time >= TIMING.t_rc

    def test_next_access_after_refresh_activates(self, bank, bus):
        t = start_time()
        bank.access(t, row=1, n_lines=1, bus=bus)
        bank.refresh_row(t + 100.0)
        result = bank.access(t + 500.0, row=1, n_lines=1, bus=bus)
        assert result.activated


class TestRefreshTimeline:
    def test_blackout_at_interval_start(self):
        refresh = RefreshTimeline(TIMING)
        assert refresh.adjust(0.0) == TIMING.t_rfc
        assert refresh.adjust(TIMING.t_refi) == TIMING.t_refi + TIMING.t_rfc

    def test_outside_blackout_unchanged(self):
        refresh = RefreshTimeline(TIMING)
        t = TIMING.t_rfc + 1.0
        assert refresh.adjust(t) == t

    def test_refresh_count(self):
        refresh = RefreshTimeline(TIMING)
        assert refresh.refreshes_before(0.0) == 0
        assert refresh.refreshes_before(10 * TIMING.t_refi) == 10

    def test_negative_time_clamped(self):
        refresh = RefreshTimeline(TIMING)
        assert refresh.adjust(-5.0) == TIMING.t_rfc


class TestChannelBus:
    def test_serializes_transfers(self):
        bus = ChannelBus(TIMING)
        end1 = bus.transfer(0.0, 1)
        end2 = bus.transfer(0.0, 1)
        assert end2 == end1 + TIMING.t_burst

    def test_idle_gap_not_counted_busy(self):
        bus = ChannelBus(TIMING)
        bus.transfer(0.0, 1)
        bus.transfer(1000.0, 1)
        assert bus.busy_time == pytest.approx(2 * TIMING.t_burst)
        assert bus.utilization(2000.0) == pytest.approx(
            2 * TIMING.t_burst / 2000.0
        )

    def test_zero_lines_is_noop(self):
        bus = ChannelBus(TIMING)
        assert bus.transfer(5.0, 0) == 5.0
        assert bus.busy_time == 0.0


class TestActivityStats:
    def test_merge(self):
        a = DramActivityStats(activations=1, read_lines=2)
        b = DramActivityStats(activations=3, write_lines=4)
        a.merge(b)
        assert a.activations == 4
        assert a.total_lines == 6
