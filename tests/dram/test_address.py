"""Tests for global-row-id address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapper, DramCoordinates
from repro.dram.timing import DramGeometry

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=4,
    rows_per_bank=1024,
    row_size_bytes=256,
)


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper(GEOMETRY)


class TestEncodeDecode:
    def test_row_zero(self, mapper):
        coords = mapper.decode(0)
        assert coords == DramCoordinates(channel=0, rank=0, bank=0, row=0)

    def test_last_row(self, mapper):
        coords = mapper.decode(mapper.total_rows - 1)
        assert coords.channel == GEOMETRY.channels - 1
        assert coords.bank == GEOMETRY.banks_per_rank - 1
        assert coords.row == GEOMETRY.rows_per_bank - 1

    def test_consecutive_rows_share_bank(self, mapper):
        """Adjacent row ids must be physically adjacent in one bank —
        the property Hydra's GCT grouping relies on (§4.4)."""
        a = mapper.decode(100)
        b = mapper.decode(101)
        assert (a.channel, a.rank, a.bank) == (b.channel, b.rank, b.bank)
        assert b.row == a.row + 1

    @given(st.integers(min_value=0, max_value=GEOMETRY.total_rows - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, row_id):
        mapper = AddressMapper(GEOMETRY)
        assert mapper.encode(mapper.decode(row_id)) == row_id

    def test_decode_rejects_out_of_range(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(mapper.total_rows)
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_encode_rejects_bad_coordinates(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(DramCoordinates(channel=9, rank=0, bank=0, row=0))


class TestNeighbors:
    def test_interior_row_has_full_blast_radius(self, mapper):
        victims = mapper.neighbors(500, blast_radius=2)
        assert victims == [498, 499, 501, 502]

    def test_aggressor_itself_excluded(self, mapper):
        assert 500 not in mapper.neighbors(500, blast_radius=2)

    def test_bank_edge_clips(self, mapper):
        victims = mapper.neighbors(0, blast_radius=2)
        assert victims == [1, 2]

    def test_no_cross_bank_victims(self, mapper):
        last_of_bank0 = GEOMETRY.rows_per_bank - 1
        victims = mapper.neighbors(last_of_bank0, blast_radius=2)
        assert all(v < GEOMETRY.rows_per_bank for v in victims)

    def test_zero_radius(self, mapper):
        assert mapper.neighbors(500, blast_radius=0) == []

    def test_negative_radius_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.neighbors(500, blast_radius=-1)


class TestPhysicalAddresses:
    def test_row_of_address_roundtrip(self, mapper):
        addr = mapper.physical_address(37, column_byte=128)
        assert mapper.row_of_address(addr) == 37

    def test_bank_index_matches_decode(self, mapper):
        for row_id in (0, 1023, 1024, 4095, 4096):
            coords = mapper.decode(row_id)
            flat = (
                coords.channel * GEOMETRY.ranks_per_channel
                + coords.rank
            ) * GEOMETRY.banks_per_rank + coords.bank
            assert mapper.bank_index(row_id) == flat

    def test_column_out_of_range(self, mapper):
        with pytest.raises(ValueError):
            mapper.physical_address(0, column_byte=GEOMETRY.row_size_bytes)
