"""Cross-cutting property-based tests (hypothesis).

These pin down system-level invariants that unit tests state only
pointwise: timing monotonicity, conservation of tracked activations,
security of every *guaranteed* tracker on arbitrary inputs, and
equivalence of the static and randomized Hydra mappings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.security import verify_tracker
from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry, DramTiming
from repro.memctrl.controller import MemoryController
from repro.trackers.cat import CatTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.ocpr import OcprTracker
from repro.trackers.twice import TwiceTracker

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)
TRH = 100
TH = TRH // 2

row_sequences = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=1500
)


def hydra_config(**overrides) -> HydraConfig:
    defaults = dict(
        geometry=GEOMETRY, trh=TRH, gct_entries=16,
        rcc_entries=8, rcc_ways=4,
    )
    defaults.update(overrides)
    return HydraConfig(**defaults)


class TestTimingMonotonicity:
    @given(row_sequences)
    @settings(max_examples=30, deadline=None)
    def test_completions_never_precede_requests(self, rows):
        mc = MemoryController(GEOMETRY, TIMING)
        t = 0.0
        for row in rows:
            done = mc.access(t, row)
            assert done > t
            t = done

    @given(row_sequences)
    @settings(max_examples=20, deadline=None)
    def test_activation_conservation(self, rows):
        """Bank ACT counts equal tracker-visible demand activations
        when the tracker is silent (no meta, no mitigation)."""
        mc = MemoryController(GEOMETRY, TIMING)
        t = 0.0
        for row in rows:
            t = mc.access(t, row)
        acts = mc.activity().activations
        # One ACT per row-buffer miss, none for hits.
        assert acts == mc.activity().row_buffer_misses
        assert acts <= len(rows)


class TestUniversalSecurityProperty:
    """Every *guaranteed* tracker must satisfy Theorem-1 on arbitrary
    activation sequences over a hot region."""

    def _check(self, tracker, rows):
        report = verify_tracker(tracker, GEOMETRY, rows, TH)
        assert report.secure, report.violations[:2]

    @given(row_sequences)
    @settings(max_examples=20, deadline=None)
    def test_hydra(self, rows):
        self._check(HydraTracker(hydra_config()), rows)

    @given(row_sequences)
    @settings(max_examples=15, deadline=None)
    def test_hydra_randomized(self, rows):
        self._check(
            HydraTracker(hydra_config(randomize_mapping=True)), rows
        )

    @given(row_sequences)
    @settings(max_examples=15, deadline=None)
    def test_graphene(self, rows):
        tracker = GrapheneTracker(GEOMETRY, trh=TRH, entries_per_bank=64)
        self._check(tracker, rows)

    @given(row_sequences)
    @settings(max_examples=15, deadline=None)
    def test_ocpr(self, rows):
        self._check(OcprTracker(GEOMETRY, trh=TRH), rows)

    @given(row_sequences)
    @settings(max_examples=10, deadline=None)
    def test_cat(self, rows):
        tracker = CatTracker(GEOMETRY, trh=TRH, counters_per_bank=128)
        self._check(tracker, rows)

    @given(row_sequences)
    @settings(max_examples=10, deadline=None)
    def test_twice(self, rows):
        tracker = TwiceTracker(
            GEOMETRY, trh=TRH, timing=TIMING, entries_per_bank=128
        )
        self._check(tracker, rows)


class TestRandomizedEquivalence:
    @given(row_sequences)
    @settings(max_examples=15, deadline=None)
    def test_static_and_randomized_agree_on_hammering(self, rows):
        """Mitigation totals under the two mappings stay close: the
        permutation changes *which* rows share groups, not per-row
        arithmetic; differences come only from group-conflict luck."""
        static = HydraTracker(hydra_config())
        randomized = HydraTracker(hydra_config(randomize_mapping=True))
        for row in rows:
            static.on_activation(row)
            randomized.on_activation(row)
        assert randomized.stats.mitigations <= static.stats.mitigations + 5
        assert static.stats.mitigations <= randomized.stats.mitigations + 5

    @given(row_sequences)
    @settings(max_examples=15, deadline=None)
    def test_distribution_always_sums_to_one(self, rows):
        tracker = HydraTracker(hydra_config())
        for row in rows:
            tracker.on_activation(row)
        dist = tracker.stats.distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
