"""Tests for the victim-refresh policy."""

import pytest

from repro.dram.address import AddressMapper
from repro.dram.timing import DramGeometry
from repro.memctrl.mitigation import VictimRefreshPolicy

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


@pytest.fixture
def mapper():
    return AddressMapper(GEOMETRY)


class TestVictimSelection:
    def test_blast_radius_two(self, mapper):
        policy = VictimRefreshPolicy(mapper, blast_radius=2)
        assert policy.victims_of(500) == [498, 499, 501, 502]

    def test_blast_radius_one(self, mapper):
        policy = VictimRefreshPolicy(mapper, blast_radius=1)
        assert policy.victims_of(500) == [499, 501]

    def test_edge_rows_clip(self, mapper):
        policy = VictimRefreshPolicy(mapper, blast_radius=2)
        assert policy.victims_of(0) == [1, 2]

    def test_stats_accumulate(self, mapper):
        policy = VictimRefreshPolicy(mapper, blast_radius=2)
        policy.victims_of(500)
        policy.victims_of(0)
        assert policy.stats.mitigations == 2
        assert policy.stats.victim_refreshes == 6

    def test_rejects_negative_radius(self, mapper):
        with pytest.raises(ValueError):
            VictimRefreshPolicy(mapper, blast_radius=-1)
