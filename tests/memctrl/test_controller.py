"""Tests for the memory controller and its tracker feedback loop."""

import pytest

from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, MetaAccess, TrackerResponse
from repro.memctrl.controller import MemoryController
from repro.trackers.ocpr import OcprTracker

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)  # 1 ms window


class RecordingTracker(ActivationTracker):
    """Scriptable tracker for controller-behaviour tests."""

    name = "recording"

    def __init__(self, script=None):
        self.seen = []
        self.resets = 0
        self.script = script or {}

    def on_activation(self, row_id):
        self.seen.append(row_id)
        return self.script.get(len(self.seen) - 1)

    def on_window_reset(self):
        self.resets += 1

    def sram_bytes(self):
        return 0


def make_controller(tracker=None, **kwargs) -> MemoryController:
    return MemoryController(GEOMETRY, TIMING, tracker, **kwargs)


class TestDemandPath:
    def test_access_returns_increasing_completions(self):
        mc = make_controller()
        t1 = mc.access(0.0, row_id=1)
        t2 = mc.access(t1, row_id=2)
        assert t2 > t1

    def test_activations_reported_to_tracker(self):
        tracker = RecordingTracker()
        mc = make_controller(tracker)
        mc.access(0.0, row_id=5)
        mc.access(10_000.0, row_id=5)  # row hit: no ACT, not reported
        mc.access(20_000.0, row_id=6)
        assert tracker.seen == [5, 6]

    def test_banks_operate_in_parallel(self):
        mc = make_controller()
        t_same = max(
            mc.access(0.0, row_id=1), mc.access(0.0, row_id=2)
        )
        mc2 = make_controller()
        t_diff = max(
            mc2.access(0.0, row_id=1),
            mc2.access(0.0, row_id=1024 + 1),  # other bank
        )
        assert t_diff < t_same

    def test_end_time_tracks_max_completion(self):
        mc = make_controller()
        done = mc.access(0.0, row_id=1)
        assert mc.end_time == done


class TestTrackerFeedback:
    def test_meta_read_performed_on_bank(self):
        script = {0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, False),))}
        mc = make_controller(RecordingTracker(script))
        mc.access(0.0, row_id=1)
        assert mc.stats.meta_accesses == 1
        assert mc.stats.meta_line_transfers == 1

    def test_meta_activation_fed_back(self):
        """An ACT caused by metadata must itself be tracked (§5.2.2)."""
        tracker = RecordingTracker(
            {0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, False),))}
        )
        mc = make_controller(tracker)
        mc.access(0.0, row_id=1)
        assert tracker.seen == [1, 512]

    def test_deferred_meta_write_skips_bank(self):
        tracker = RecordingTracker(
            {0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, True),))}
        )
        mc = make_controller(tracker, defer_meta_writes=True)
        mc.access(0.0, row_id=1)
        assert tracker.seen == [1]  # no ACT reported for the write
        assert mc.stats.meta_accesses == 1

    def test_undeferred_meta_write_hits_bank(self):
        tracker = RecordingTracker(
            {0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, True),))}
        )
        mc = make_controller(tracker, defer_meta_writes=False)
        mc.access(0.0, row_id=1)
        assert tracker.seen == [1, 512]

    def test_mitigation_refreshes_blast_radius_victims(self):
        tracker = RecordingTracker({0: TrackerResponse(mitigate_rows=(100,))})
        mc = make_controller(tracker, blast_radius=2)
        mc.access(0.0, row_id=100)
        assert mc.stats.victim_refreshes == 4
        # Victim activations are fed back into tracking (§5.2.1).
        assert set(tracker.seen) == {100, 98, 99, 101, 102}

    def test_mitigation_feedback_can_be_disabled(self):
        tracker = RecordingTracker({0: TrackerResponse(mitigate_rows=(100,))})
        mc = make_controller(tracker, count_mitigation_acts=False)
        mc.access(0.0, row_id=100)
        assert tracker.seen == [100]
        assert mc.stats.victim_refreshes == 4

    def test_delay_extends_completion(self):
        tracker = RecordingTracker({0: TrackerResponse(delay_ns=5000.0)})
        mc = make_controller(tracker)
        baseline = make_controller().access(0.0, row_id=1)
        delayed = mc.access(0.0, row_id=1)
        assert delayed == pytest.approx(baseline + 5000.0)
        assert mc.stats.total_delay_ns == 5000.0


class TestWindowManagement:
    def test_reset_fires_each_window(self):
        tracker = RecordingTracker()
        mc = make_controller(tracker)
        window = TIMING.refresh_window
        mc.access(0.5 * window, row_id=1)
        assert tracker.resets == 0
        mc.access(1.5 * window, row_id=2)
        assert tracker.resets == 1
        mc.access(3.5 * window, row_id=3)
        assert tracker.resets == 3

    def test_reset_divisor_honoured(self):
        class HalfWindowTracker(RecordingTracker):
            reset_divisor = 2

        tracker = HalfWindowTracker()
        mc = make_controller(tracker)
        mc.access(TIMING.refresh_window * 1.1, row_id=1)
        assert tracker.resets == 2


class TestEndToEndHydra:
    def test_hammering_through_controller_triggers_mitigations(self):
        config = HydraConfig(
            geometry=GEOMETRY, trh=100, gct_entries=16,
            rcc_entries=8, rcc_ways=4,
        )
        tracker = HydraTracker(config)
        mc = make_controller(tracker)
        t = 0.0
        for _ in range(400):
            t = mc.access(t, row_id=7)
            mc.banks[0].precharge_all()  # force each access to activate
        assert tracker.stats.mitigations >= 400 // config.th - 1
        assert mc.stats.victim_refreshes > 0

    def test_ocpr_through_controller(self):
        tracker = OcprTracker(GEOMETRY, trh=100)
        mc = make_controller(tracker)
        t = 0.0
        for _ in range(60):
            t = mc.access(t, row_id=7)
            mc.banks[0].precharge_all()
        assert tracker.mitigations == 1


class TestReporting:
    def test_activity_merges_all_banks(self):
        mc = make_controller()
        mc.access(0.0, row_id=1)
        mc.access(0.0, row_id=1024 + 1)
        assert mc.activity().activations == 2

    def test_refresh_count_scales_with_time(self):
        mc = make_controller()
        mc.access(10 * TIMING.t_refi, row_id=1)
        ranks = GEOMETRY.channels * GEOMETRY.ranks_per_channel
        assert mc.total_refreshes() >= 10 * ranks

    def test_bus_utilization_bounded(self):
        mc = make_controller()
        t = 0.0
        for i in range(50):
            t = mc.access(t, row_id=i, n_lines=4)
        assert 0.0 < mc.bus_utilization() <= 1.0
