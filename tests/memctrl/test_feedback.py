"""Tests for the shared tracker-feedback machinery.

Both controllers delegate the feedback worklist and the window-reset
cadence to :mod:`repro.memctrl.feedback`; these tests exercise the
helpers in isolation and then prove the two controllers agree on a
feedback-heavy scenario (the point of extracting the duplication).
"""

import pytest

from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, MetaAccess, TrackerResponse
from repro.memctrl.controller import MemoryController
from repro.memctrl.feedback import TrackerFeedback, WindowResetSchedule
from repro.memctrl.mitigation import VictimRefreshPolicy
from repro.dram.address import AddressMapper
from repro.memctrl.queued import QueuedMemoryController

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


class ScriptedTracker(ActivationTracker):
    """Returns a scripted response per reported activation."""

    name = "scripted"

    def __init__(self, script=None):
        self.seen = []
        self.resets = 0
        self.script = script or {}

    def on_activation(self, row_id):
        self.seen.append(row_id)
        return self.script.get(len(self.seen) - 1)

    def on_window_reset(self):
        self.resets += 1

    def sram_bytes(self):
        return 0


class CountingHandler:
    """Minimal FeedbackHandler: records calls, scriptable feedback."""

    def __init__(self, meta_activates=True, refresh_feeds_back=True):
        self.activations = []
        self.meta = []
        self.refreshes = []
        self.meta_activates = meta_activates
        self.refresh_feeds_back = refresh_feeds_back

    def on_tracker_activation(self, row_id):
        self.activations.append(row_id)

    def perform_meta_access(self, meta, at):
        self.meta.append(meta.row_id)
        return self.meta_activates

    def perform_victim_refresh(self, victim_row, at):
        self.refreshes.append(victim_row)
        return self.refresh_feeds_back


def feedback_for(tracker, max_depth=4):
    policy = VictimRefreshPolicy(AddressMapper(GEOMETRY), blast_radius=2)
    return TrackerFeedback(tracker, policy, max_depth)


class TestTrackerFeedback:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="max_feedback_depth"):
            feedback_for(ScriptedTracker(), max_depth=0)

    def test_silent_tracker_single_report(self):
        tracker = ScriptedTracker()
        handler = CountingHandler()
        assert feedback_for(tracker).drive(7, 0.0, handler) == 0.0
        assert tracker.seen == [7]
        assert handler.activations == [7]
        assert handler.meta == [] and handler.refreshes == []

    def test_meta_activation_fed_back(self):
        script = {0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, False),))}
        tracker = ScriptedTracker(script)
        handler = CountingHandler(meta_activates=True)
        feedback_for(tracker).drive(1, 0.0, handler)
        assert tracker.seen == [1, 512]

    def test_deferred_meta_not_fed_back(self):
        script = {0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, True),))}
        tracker = ScriptedTracker(script)
        handler = CountingHandler(meta_activates=False)
        feedback_for(tracker).drive(1, 0.0, handler)
        assert tracker.seen == [1]
        assert handler.meta == [512]

    def test_victims_fed_back_through_policy(self):
        tracker = ScriptedTracker({0: TrackerResponse(mitigate_rows=(100,))})
        handler = CountingHandler()
        feedback_for(tracker).drive(100, 0.0, handler)
        assert handler.refreshes == [98, 99, 101, 102]
        assert set(tracker.seen) == {100, 98, 99, 101, 102}

    def test_depth_bound_stops_infinite_chains(self):
        """A tracker that always requests metadata would loop forever
        without the depth bound."""
        class ChattyTracker(ScriptedTracker):
            def on_activation(self, row_id):
                self.seen.append(row_id)
                return TrackerResponse(
                    meta_accesses=(MetaAccess(512, 1, False),)
                )

        tracker = ChattyTracker()
        handler = CountingHandler(meta_activates=True)
        feedback_for(tracker, max_depth=3).drive(1, 0.0, handler)
        # Root (depth 0) plus chained reports at depth 1..3.
        assert len(tracker.seen) == 4

    def test_delays_accumulate_across_worklist(self):
        script = {
            0: TrackerResponse(
                delay_ns=100.0, mitigate_rows=(50,)
            ),
            1: TrackerResponse(delay_ns=25.0),
        }
        tracker = ScriptedTracker(script)
        total = feedback_for(tracker).drive(50, 0.0, CountingHandler())
        assert total == 125.0


class TestWindowResetSchedule:
    def test_default_period_is_refresh_window(self):
        schedule = WindowResetSchedule(TIMING, ScriptedTracker())
        assert schedule.period == TIMING.refresh_window
        assert not schedule.due(0.5 * TIMING.refresh_window)
        assert schedule.due(TIMING.refresh_window)

    def test_reset_divisor_shortens_period(self):
        class HalfWindow(ScriptedTracker):
            reset_divisor = 2

        schedule = WindowResetSchedule(TIMING, HalfWindow())
        assert schedule.period == TIMING.refresh_window / 2

    def test_advance_fires_every_elapsed_reset(self):
        tracker = ScriptedTracker()
        schedule = WindowResetSchedule(TIMING, tracker)
        fired = schedule.advance(3.5 * TIMING.refresh_window, tracker)
        assert fired == 3
        assert tracker.resets == 3
        assert not schedule.due(3.9 * TIMING.refresh_window)
        assert schedule.due(4.0 * TIMING.refresh_window)


class TestControllerParity:
    """Both controllers must drive identical tracker feedback."""

    SCRIPT = {
        0: TrackerResponse(meta_accesses=(MetaAccess(512, 1, False),)),
        2: TrackerResponse(
            mitigate_rows=(100,),
            meta_accesses=(MetaAccess(600, 2, True),),
        ),
        5: TrackerResponse(mitigate_rows=(300, 2000)),
        9: TrackerResponse(meta_accesses=(MetaAccess(1500, 1, False),)),
    }
    ROWS = (100, 100, 300, 7, 2000, 100, 300, 7)

    def drive(self, controller, tracker):
        at = 0.0
        for row in self.ROWS:
            controller._report_activation(row, at)
            at += 100.0
        window = TIMING.refresh_window
        for t in (1.2 * window, 3.7 * window):
            controller._advance_window(t)
        return tracker

    def test_identical_feedback_stats(self):
        fast_tracker = ScriptedTracker(dict(self.SCRIPT))
        queued_tracker = ScriptedTracker(dict(self.SCRIPT))
        fast = MemoryController(GEOMETRY, TIMING, fast_tracker)
        queued = QueuedMemoryController(GEOMETRY, TIMING, queued_tracker)

        self.drive(fast, fast_tracker)
        self.drive(queued, queued_tracker)

        # Both controllers reported the same activation stream...
        assert fast_tracker.seen == queued_tracker.seen
        assert fast_tracker.resets == queued_tracker.resets
        # ...and agree on every shared counter.
        assert (
            fast.stats.tracker_activations == queued.stats.tracker_activations
        )
        assert fast.stats.victim_refreshes == queued.stats.victim_refreshes
        assert fast.stats.window_resets == queued.stats.window_resets
        assert fast.stats.meta_accesses == (
            queued.stats.meta_reads + queued.stats.meta_writes
        )
        # The scenario actually exercised the feedback machinery.
        assert fast.stats.victim_refreshes > 0
        assert fast.stats.meta_accesses > 0
        assert fast.stats.window_resets == 3

    def test_bus_utilization_clamped_on_both(self):
        fast = MemoryController(GEOMETRY, TIMING)
        queued = QueuedMemoryController(GEOMETRY, TIMING)
        t = 0.0
        for i in range(50):
            t = fast.access(t, row_id=i, n_lines=8)
        queued.run_trace(
            [(0.1, i, 8, False) for i in range(50)], mlp=16
        )
        assert 0.0 < fast.bus_utilization() <= 1.0
        assert 0.0 < queued.bus_utilization() <= 1.0
