"""Tests for the Randomized Row-Swap mitigation extension (§8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry, DramTiming
from repro.memctrl.rowswap import RowIndirectionTable, RowSwapController

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


class TestRowIndirectionTable:
    def test_identity_by_default(self):
        table = RowIndirectionTable(1024)
        assert table.physical_of(5) == 5
        assert table.logical_of(5) == 5
        assert table.remapped_rows() == 0

    def test_swap_exchanges_identities(self):
        table = RowIndirectionTable(1024)
        table.swap(5, 9)
        assert table.physical_of(5) == 9
        assert table.physical_of(9) == 5
        assert table.logical_of(9) == 5

    def test_swap_back_restores_identity(self):
        table = RowIndirectionTable(1024)
        table.swap(5, 9)
        table.swap(9, 5)
        assert table.remapped_rows() == 0
        assert table.physical_of(5) == 5

    def test_chained_swaps(self):
        table = RowIndirectionTable(1024)
        table.swap(5, 9)  # logical 5 now at 9
        table.swap(9, 20)  # logical 5 now at 20
        assert table.physical_of(5) == 20
        assert table.logical_of(20) == 5
        assert table.verify_bijection()

    def test_self_swap_is_noop(self):
        table = RowIndirectionTable(1024)
        table.swap(5, 5)
        assert table.swaps_performed == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RowIndirectionTable(10).swap(0, 10)
        with pytest.raises(ValueError):
            RowIndirectionTable(0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=63),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60)
    def test_always_a_bijection(self, swaps):
        table = RowIndirectionTable(64)
        for a, b in swaps:
            table.swap(a, b)
            assert table.verify_bijection()
        # Round-trip property: logical_of(physical_of(x)) == x.
        for logical in range(64):
            assert table.logical_of(table.physical_of(logical)) == logical


class TestRowSwapController:
    def make(self) -> RowSwapController:
        config = HydraConfig(
            geometry=GEOMETRY, trh=100, gct_entries=16,
            rcc_entries=8, rcc_ways=4,
        )
        return RowSwapController(
            GEOMETRY, TIMING, HydraTracker(config), seed=3
        )

    def hammer(self, mc, logical_row, times):
        t = 0.0
        for _ in range(times):
            t = mc.access(t, logical_row)
            # Close the row so each access activates.
            physical = mc.indirection.physical_of(logical_row)
            mc.banks[physical // GEOMETRY.rows_per_bank].precharge_all()
        return t

    def test_hammering_triggers_swap(self):
        mc = self.make()
        self.hammer(mc, logical_row=7, times=120)
        assert mc.indirection.swaps_performed >= 1
        assert mc.indirection.physical_of(7) != 7

    def test_swap_costs_data_movement(self):
        mc = self.make()
        self.hammer(mc, logical_row=7, times=120)
        lines_per_swap = 4 * GEOMETRY.lines_per_row
        assert (
            mc.swap_data_lines
            == mc.indirection.swaps_performed * lines_per_swap
        )

    def test_swap_partner_stays_in_bank(self):
        mc = self.make()
        self.hammer(mc, logical_row=7, times=300)
        for logical in (7,):
            physical = mc.indirection.physical_of(logical)
            assert physical // GEOMETRY.rows_per_bank == 0

    def test_accesses_follow_the_moved_row(self):
        """After a swap the same logical row maps to a new physical
        location, and tracking continues there."""
        mc = self.make()
        self.hammer(mc, logical_row=7, times=120)
        moved_to = mc.indirection.physical_of(7)
        before = mc.indirection.swaps_performed
        self.hammer(mc, logical_row=7, times=120)
        # Continued hammering re-triggers mitigation at the new spot.
        assert mc.indirection.swaps_performed > before
        assert mc.indirection.physical_of(7) != moved_to

    def test_no_physical_row_accumulates_past_threshold(self):
        """The RRS property: hammering one logical row never parks
        more than ~T_H activations on any single physical location."""
        mc = self.make()
        tracker = mc.tracker
        self.hammer(mc, logical_row=7, times=600)
        # Every mitigation relocated the row, so the per-row counter
        # never exceeded T_H before being moved & reset.
        assert tracker.stats.mitigations >= 3
