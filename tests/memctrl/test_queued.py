"""Tests for the queued FR-FCFS controller."""

import pytest

from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry, DramTiming
from repro.memctrl.controller import MemoryController
from repro.cpu.core import LimitedMlpCore
from repro.memctrl.queued import QueuedMemoryController

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


def trace_of(rows, gap=10.0, lines=1, writes=None):
    writes = writes or [False] * len(rows)
    return [(gap, row, lines, w) for row, w in zip(rows, writes)]


def make(**kwargs) -> QueuedMemoryController:
    return QueuedMemoryController(GEOMETRY, TIMING, **kwargs)


class TestBasicExecution:
    def test_empty_trace(self):
        result = make().run_trace([], mlp=4)
        assert result.requests == 0
        assert result.end_time_ns == 0.0

    def test_counts_all_requests(self):
        result = make().run_trace(trace_of(list(range(40))), mlp=8)
        assert result.requests == 40
        assert result.end_time_ns > 0

    def test_comparable_to_fast_controller(self):
        """On a plain read stream the two controllers should land in
        the same ballpark (same banks, same timing)."""
        rows = [i % 128 for i in range(2000)]
        queued = make().run_trace(trace_of(rows, gap=5.0), mlp=16)
        fast_mc = MemoryController(GEOMETRY, TIMING)
        fast = LimitedMlpCore(mlp=16).run(trace_of(rows, gap=5.0), fast_mc)
        assert queued.end_time_ns == pytest.approx(
            fast.end_time_ns, rel=0.35
        )

    def test_rejects_bad_mlp(self):
        with pytest.raises(ValueError):
            make().run_trace([], mlp=0)


class TestFrFcfs:
    def test_row_hits_served_out_of_order(self):
        """A younger row-hit request bypasses an older row-miss —
        the scheduler must record out-of-order picks."""
        # Bank 0 rows alternate (misses); one row repeats (hits).
        rows = []
        for i in range(16):
            rows.append((i * 7) % 512)  # churn
            rows.append(3)  # repeating row: hit candidate
        mc = make()
        mc.run_trace(trace_of(rows, gap=0.5), mlp=32)
        assert mc.stats.row_hit_first_picks > 0

    def test_queue_peak_reflects_mlp(self):
        mc = make()
        mc.run_trace(trace_of([i % 512 for i in range(64)], gap=0.1), mlp=32)
        assert mc.stats.read_queue_peak > 4


class TestWriteQueue:
    def test_writes_retire_immediately_into_queue(self):
        mc = make()
        result = mc.run_trace(
            trace_of([1, 2, 3], writes=[True, True, True]), mlp=4
        )
        assert result.requests == 3
        assert mc.stats.write_queue_peak >= 1

    def test_opportunistic_drain_when_reads_absent(self):
        mc = make()
        mc.run_trace(
            trace_of([1, 2], writes=[True, True]), mlp=4
        )
        assert mc.stats.opportunistic_writes >= 1

    def test_forced_drain_at_high_watermark(self):
        mc = make(write_queue_high=8, write_queue_low=2)
        rows = list(range(0, 480, 16))
        mc.run_trace(
            trace_of(rows, gap=1.0, writes=[True] * len(rows)), mlp=4
        )
        assert mc.stats.forced_write_drains >= 1

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            make(write_queue_high=4, write_queue_low=4)


class TestFinalWriteDrain:
    def test_write_queues_flushed_at_end_of_trace(self):
        """Writes retire into the queue during execution; the residue
        must hit the banks before the result is computed."""
        mc = make()
        rows = list(range(0, 160, 4))
        result = mc.run_trace(
            trace_of(rows, gap=1.0, writes=[True] * len(rows)), mlp=8
        )
        assert all(not q for q in mc._write_queues)
        assert mc.stats.flushed_writes > 0
        # Every write actually reached a bank.
        activity = mc.activity()
        assert activity.write_lines == len(rows)
        assert result.end_time_ns > 0.0

    def test_flush_extends_end_time_past_last_read(self):
        mc = make()
        rows = list(range(0, 320, 4))
        writes = [True] * len(rows)
        writes[0] = False  # one read so end-of-trace isn't trivially 0
        result = mc.run_trace(trace_of(rows, gap=1.0, writes=writes), mlp=8)
        # The flushed writes complete after the lone read finished.
        assert result.end_time_ns == mc.end_time
        assert mc.activity().write_lines == len(rows) - 1

    def test_empty_trace_stays_zero(self):
        result = make().run_trace([], mlp=4)
        assert result.end_time_ns == 0.0


class DelayTracker:
    """Charges a fixed rate-control delay on every activation."""

    name = "delay"
    reset_divisor = 1

    def __init__(self, delay_ns):
        from repro.interfaces import TrackerResponse

        self._response = TrackerResponse(delay_ns=delay_ns)

    def on_activation(self, row_id):
        return self._response

    def on_window_reset(self):
        pass

    def sram_bytes(self):
        return 0

    def mitigation_count(self):
        return 0

    def extra_stats(self):
        return {}


class TestDelayPropagation:
    def test_delay_lands_in_stats_and_completion(self):
        rows = [i % 512 for i in range(100)]
        plain = make()
        plain.run_trace(trace_of(rows, gap=5.0), mlp=8)
        delayed = QueuedMemoryController(
            GEOMETRY, TIMING, DelayTracker(delay_ns=200.0)
        )
        result = delayed.run_trace(trace_of(rows, gap=5.0), mlp=8)
        assert delayed.stats.total_delay_ns > 0
        # Rate control must slow the run down, not be a silent no-op.
        assert result.end_time_ns > plain.end_time

    def test_delay_on_flushed_writes_counted(self):
        rows = list(range(0, 160, 4))
        mc = QueuedMemoryController(
            GEOMETRY, TIMING, DelayTracker(delay_ns=50.0)
        )
        mc.run_trace(
            trace_of(rows, gap=1.0, writes=[True] * len(rows)), mlp=8
        )
        assert mc.stats.flushed_writes > 0
        assert mc.stats.total_delay_ns >= 50.0 * mc.stats.flushed_writes


class TestTrackerIntegration:
    def test_hydra_mitigations_through_queued_path(self):
        config = HydraConfig(
            geometry=GEOMETRY, trh=100, gct_entries=16,
            rcc_entries=8, rcc_ways=4,
        )
        tracker = HydraTracker(config)
        mc = QueuedMemoryController(GEOMETRY, TIMING, tracker)
        rows = [500, 502] * 1500  # double-sided hammer
        mc.run_trace(trace_of(rows, gap=5.0), mlp=8)
        assert tracker.stats.mitigations > 0
        assert mc.stats.victim_refreshes >= 4 * tracker.stats.mitigations * 0.5

    def test_meta_writes_enter_write_queue(self):
        config = HydraConfig(
            geometry=GEOMETRY, trh=100, gct_entries=16,
            rcc_entries=8, rcc_ways=4, enable_rcc=False,
        )
        tracker = HydraTracker(config)
        mc = QueuedMemoryController(GEOMETRY, TIMING, tracker)
        rows = [500, 502] * 400
        mc.run_trace(trace_of(rows, gap=5.0), mlp=8)
        assert mc.stats.meta_writes > 0
        assert mc.stats.meta_reads > 0

    def test_window_reset_fires(self):
        tracker = HydraTracker(
            HydraConfig(
                geometry=GEOMETRY, trh=100, gct_entries=16,
                rcc_entries=8, rcc_ways=4,
            )
        )
        mc = QueuedMemoryController(GEOMETRY, TIMING, tracker)
        gap = TIMING.refresh_window / 100
        mc.run_trace(trace_of([i % 64 for i in range(300)], gap=gap), mlp=4)
        assert mc.stats.window_resets >= 2
