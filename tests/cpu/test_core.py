"""Tests for the limited-MLP core model."""

import pytest

from repro.cpu.core import LimitedMlpCore
from repro.dram.timing import DramGeometry, DramTiming
from repro.memctrl.controller import MemoryController

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


def make_controller() -> MemoryController:
    return MemoryController(GEOMETRY, TIMING)


def trace_of(rows, gap=10.0, lines=1):
    return [(gap, row, lines, False) for row in rows]


class TestRun:
    def test_empty_trace(self):
        core = LimitedMlpCore(mlp=4)
        result = core.run([], make_controller())
        assert result.end_time_ns == 0.0
        assert result.requests == 0

    def test_counts_requests_and_latency(self):
        core = LimitedMlpCore(mlp=4)
        result = core.run(trace_of([1, 2, 3]), make_controller())
        assert result.requests == 3
        assert result.total_latency_ns > 0
        assert result.average_latency_ns == pytest.approx(
            result.total_latency_ns / 3
        )

    def test_compute_bound_trace_paced_by_gaps(self):
        """Huge gaps: end time is the sum of gaps, memory hides."""
        core = LimitedMlpCore(mlp=8)
        gap = 10_000.0
        n = 20
        result = core.run(trace_of(range(n), gap=gap), make_controller())
        assert result.end_time_ns == pytest.approx(n * gap, rel=0.05)

    def test_memory_bound_trace_limited_by_mlp(self):
        """Tiny gaps to one bank: time set by tRC serialization."""
        core = LimitedMlpCore(mlp=2)
        n = 100
        result = core.run(
            trace_of([i % 50 for i in range(n)], gap=0.1),
            make_controller(),
        )
        # Bank 0 must ACT each request, tRC apart.
        assert result.end_time_ns >= (n - 1) * TIMING.t_rc * 0.9

    def test_larger_mlp_is_never_slower(self):
        rows = [i % 64 for i in range(400)]
        small = LimitedMlpCore(mlp=2).run(trace_of(rows, gap=1.0), make_controller())
        large = LimitedMlpCore(mlp=16).run(trace_of(rows, gap=1.0), make_controller())
        assert large.end_time_ns <= small.end_time_ns

    def test_rejects_bad_mlp(self):
        with pytest.raises(ValueError):
            LimitedMlpCore(mlp=0)
