"""Tests for the ROB-occupancy-aware OoO core model."""

import pytest

from repro.cpu.core import LimitedMlpCore
from repro.cpu.ooo import OooCore, OooCoreParams
from repro.dram.timing import DramGeometry, DramTiming
from repro.memctrl.controller import MemoryController

GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


def make_controller() -> MemoryController:
    return MemoryController(GEOMETRY, TIMING)


def trace_of(rows, gap=10.0):
    return [(gap, row, 1, False) for row in rows]


class TestWindowSizing:
    def test_dense_misses_expose_full_mlp(self):
        core = OooCore(OooCoreParams(mshrs=16))
        assert core.window_for_gap(1.0) == 16

    def test_sparse_misses_shrink_window(self):
        """One miss per 2x ROB of instructions: MLP collapses to ~1
        per core (ROB fills with non-memory work)."""
        params = OooCoreParams(rob_size=160, cores=8, mshrs=32)
        core = OooCore(params)
        sparse = core.window_for_gap(8 * 320.0)
        dense = core.window_for_gap(8 * 10.0)
        assert sparse < dense
        assert sparse >= 1

    def test_window_never_exceeds_mshrs(self):
        core = OooCore(OooCoreParams(mshrs=8))
        assert core.window_for_gap(0.5) == 8


class TestRun:
    def test_empty(self):
        result = OooCore().run([], make_controller())
        assert result.requests == 0

    def test_dense_trace_matches_fixed_mlp_model(self):
        """When the window is MSHR-capped, OoO and fixed-MLP models
        should agree closely."""
        rows = [i % 64 for i in range(1000)]
        params = OooCoreParams(mshrs=16)
        ooo = OooCore(params).run(trace_of(rows, gap=0.5), make_controller())
        mlp = LimitedMlpCore(mlp=16).run(trace_of(rows, gap=0.5), make_controller())
        assert ooo.end_time_ns == pytest.approx(mlp.end_time_ns, rel=0.05)

    def test_sparse_trace_is_latency_bound(self):
        """Huge gaps: execution time is the sum of gaps regardless of
        the memory system."""
        rows = list(range(50))
        result = OooCore().run(trace_of(rows, gap=5000.0), make_controller())
        assert result.end_time_ns == pytest.approx(50 * 5000.0, rel=0.05)

    def test_latency_sensitivity_grows_when_window_small(self):
        """With a tiny ROB, the same bank-conflict-heavy trace takes
        longer than with a large one."""
        rows = [0, 1] * 400  # same bank, alternating rows
        small = OooCore(OooCoreParams(rob_size=8, cores=1, mshrs=2)).run(
            trace_of(rows, gap=1.0), make_controller()
        )
        large = OooCore(OooCoreParams(rob_size=512, cores=8, mshrs=32)).run(
            trace_of(rows, gap=1.0), make_controller()
        )
        assert small.end_time_ns > large.end_time_ns


class TestParams:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OooCoreParams(rob_size=0)
        with pytest.raises(ValueError):
            OooCoreParams(frequency_ghz=0.0)

    def test_dispatch_rate(self):
        params = OooCoreParams(cores=8, width=4, frequency_ghz=3.2)
        assert params.dispatch_per_ns == pytest.approx(102.4)
