"""Tests for the shared LLC model."""

import pytest

from repro.cpu.cache import LastLevelCache


def make_cache(capacity=16 * 64, ways=16) -> LastLevelCache:
    return LastLevelCache(capacity_bytes=capacity, ways=ways)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        hit, wb = cache.access(0)
        assert not hit and wb is None
        hit, _ = cache.access(0)
        assert hit

    def test_same_line_different_bytes_hit(self):
        cache = make_cache()
        cache.access(0)
        hit, _ = cache.access(63)
        assert hit

    def test_adjacent_lines_are_distinct(self):
        cache = make_cache()
        cache.access(0)
        hit, _ = cache.access(64)
        assert not hit

    def test_paper_default_geometry(self):
        cache = LastLevelCache()
        assert cache.capacity_bytes == 8 * 1024 * 1024
        assert cache.ways == 16


class TestWriteback:
    def test_dirty_eviction_returns_address(self):
        cache = make_cache()  # one 16-way set
        cache.access(0, is_write=True)
        for line in range(1, 16):
            cache.access(line * 64)
        _, wb = cache.access(16 * 64)
        assert wb == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_silent(self):
        cache = make_cache()
        for line in range(16):
            cache.access(line * 64)
        _, wb = cache.access(16 * 64)
        assert wb is None

    def test_write_hit_marks_dirty(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0, is_write=True)
        for line in range(1, 16):
            cache.access(line * 64)
        _, wb = cache.access(16 * 64)
        assert wb == 0


class TestLru:
    def test_recently_used_survives(self):
        cache = make_cache()
        for line in range(16):
            cache.access(line * 64)
        cache.access(0)  # promote line 0
        cache.access(16 * 64)  # evicts line 1, not 0
        hit, _ = cache.access(0)
        assert hit
        hit, _ = cache.access(64)
        assert not hit


class TestStatsAndFlush:
    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_flush_counts_dirty_lines(self):
        cache = make_cache()
        cache.access(0, is_write=True)
        cache.access(64)
        assert cache.flush() == 1
        hit, _ = cache.access(0)
        assert not hit

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            LastLevelCache(capacity_bytes=100, ways=16)
        with pytest.raises(ValueError):
            LastLevelCache(capacity_bytes=0)
