"""Tests for the streaming trace substrate (chunked + external).

The contract under test everywhere: a chunked representation yields
exactly the tuples the materialized trace would, in the same order,
computed with the same arithmetic — DESIGN.md §13's chunk-boundary
invariant. End-to-end RunResult parity lives in
``tests/sim/test_stream_parity.py``; this file covers the substrate
itself.
"""

import numpy as np
import pytest

from repro.workloads.streaming import (
    DEFAULT_STREAM_CHUNK,
    ChunkedTrace,
    ExternalTraceReader,
    TraceChunk,
    TraceSource,
    characterize_chunks,
    materialize,
    open_trace_source,
    read_external_trace,
    source_duration_ns,
    source_request_count,
    write_external_trace,
)
from repro.workloads.trace import Trace, characterize


def _trace(n=1000, seed=7, name="t"):
    rng = np.random.default_rng(seed)
    return Trace(
        gaps_ns=rng.uniform(0.5, 20.0, n),
        rows=rng.integers(0, 512, n, dtype=np.int64),
        lines=rng.integers(1, 5, n).astype(np.int32),
        writes=rng.random(n) < 0.3,
        name=name,
    )


class TestTraceChunk:
    def test_of_is_a_view(self):
        trace = _trace(10)
        chunk = TraceChunk.of(trace)
        assert chunk.rows is trace.rows
        assert len(chunk) == 10

    def test_slice(self):
        chunk = TraceChunk.of(_trace(10))
        part = chunk.slice(2, 5)
        assert len(part) == 3
        assert part.rows.tolist() == chunk.rows.tolist()[2:5]


class TestTraceSourceProtocol:
    def test_trace_satisfies_protocol(self):
        assert isinstance(_trace(4), TraceSource)

    def test_chunked_and_external_satisfy_protocol(self, tmp_path):
        trace = _trace(8)
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c")
        assert isinstance(chunked, TraceSource)
        write_external_trace(trace, tmp_path / "t.trc")
        assert isinstance(ExternalTraceReader(tmp_path / "t.trc"), TraceSource)


class TestChunkedTrace:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        trace = _trace(500)
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c", chunk_requests=64)
        back = materialize(chunked)
        assert back.name == trace.name
        np.testing.assert_array_equal(back.gaps_ns, trace.gaps_ns)
        np.testing.assert_array_equal(back.rows, trace.rows)
        np.testing.assert_array_equal(back.lines, trace.lines)
        np.testing.assert_array_equal(back.writes, trace.writes)
        assert back.gaps_ns.dtype == np.float64
        assert back.rows.dtype == np.int64
        assert back.lines.dtype == np.int32
        assert back.writes.dtype == np.bool_

    def test_segments_have_exact_size(self, tmp_path):
        chunked = ChunkedTrace.from_trace(
            _trace(250), tmp_path / "c", chunk_requests=64
        )
        sizes = [len(chunk) for chunk in chunked.chunks()]
        assert sizes == [64, 64, 64, 58]
        assert len(chunked) == 250
        assert chunked.n_segments == 4

    def test_write_rechunks_uneven_input(self, tmp_path):
        """Segment boundaries are independent of input chunking."""
        trace = _trace(200)
        whole = TraceChunk.of(trace)
        uneven = [whole.slice(0, 7), whole.slice(7, 130), whole.slice(130, 200)]
        chunked = ChunkedTrace.write(
            uneven, tmp_path / "c", name="t", chunk_requests=50
        )
        assert [len(c) for c in chunked.chunks()] == [50, 50, 50, 50]
        np.testing.assert_array_equal(materialize(chunked).rows, trace.rows)

    def test_iteration_matches_trace(self, tmp_path):
        trace = _trace(300)
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c", chunk_requests=77)
        assert list(chunked) == list(trace)

    def test_resolved_stream_matches_trace(self, tmp_path):
        trace = _trace(300)
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c", chunk_requests=77)
        assert list(chunked.resolved_stream(128, 4)) == list(
            trace.resolved_stream(128, 4)
        )

    def test_chunks_are_memory_mapped(self, tmp_path):
        chunked = ChunkedTrace.from_trace(_trace(100), tmp_path / "c")
        chunk = next(chunked.chunks())
        assert isinstance(chunk.rows, np.memmap)

    def test_rejects_non_chunked_directory(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            ChunkedTrace(tmp_path)

    def test_delete_removes_directory(self, tmp_path):
        chunked = ChunkedTrace.from_trace(_trace(10), tmp_path / "c")
        chunked.delete()
        assert not (tmp_path / "c").exists()

    def test_rejects_bad_chunk_requests(self, tmp_path):
        with pytest.raises(ValueError):
            ChunkedTrace.write([], tmp_path / "c", chunk_requests=0)


class TestExternalFormat:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        """repr() floats round-trip exactly, so replay loses nothing."""
        trace = _trace(400)
        path = tmp_path / "t.trc"
        count = write_external_trace(trace, path)
        assert count == 400
        back = read_external_trace(path)
        assert back.name == "t"
        np.testing.assert_array_equal(back.gaps_ns, trace.gaps_ns)
        np.testing.assert_array_equal(back.rows, trace.rows)
        np.testing.assert_array_equal(back.lines, trace.lines)
        np.testing.assert_array_equal(back.writes, trace.writes)

    def test_reader_streams_in_chunks(self, tmp_path):
        trace = _trace(100)
        path = tmp_path / "t.trc"
        write_external_trace(trace, path)
        reader = ExternalTraceReader(path, chunk_requests=30)
        assert [len(c) for c in reader.chunks()] == [30, 30, 30, 10]
        assert list(reader) == list(trace)

    def test_comments_blanks_and_default_lines(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_text(
            "# header comment\n"
            "\n"
            "5.0 R 17  # trailing comment, n_lines defaults to 1\n"
            "2.5 W 0x20 4\n"
        )
        reader = ExternalTraceReader(path)
        assert list(reader) == [(5.0, 17, 1, False), (2.5, 32, 4, True)]

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "memcached.trc"
        path.write_text("1.0 R 1\n")
        assert ExternalTraceReader(path).name == "memcached"

    @pytest.mark.parametrize(
        "line,match",
        [
            ("5.0 R", "expected"),
            ("5.0 R 1 2 3", "expected"),
            ("x R 1", "malformed numeric"),
            ("5.0 Q 1", "access type"),
            ("5.0 R -1", "row_id"),
            ("5.0 R 1 0", "n_lines"),
        ],
    )
    def test_malformed_lines_report_location(self, tmp_path, line, match):
        path = tmp_path / "t.trc"
        path.write_text("1.0 R 1\n" + line + "\n")
        with pytest.raises(ValueError, match=match) as err:
            list(ExternalTraceReader(path))
        assert ":2:" in str(err.value)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExternalTraceReader(tmp_path / "nope.trc")


class TestOpenTraceSource:
    def test_directory_opens_chunked(self, tmp_path):
        ChunkedTrace.from_trace(_trace(10), tmp_path / "c")
        assert isinstance(open_trace_source(tmp_path / "c"), ChunkedTrace)

    def test_npz_opens_materialized(self, tmp_path):
        _trace(10).save(str(tmp_path / "t.npz"))
        source = open_trace_source(tmp_path / "t.npz")
        assert isinstance(source, Trace)

    def test_text_streams_when_chunked_else_materializes(self, tmp_path):
        write_external_trace(_trace(10), tmp_path / "t.trc")
        assert isinstance(
            open_trace_source(tmp_path / "t.trc", chunk_requests=4),
            ExternalTraceReader,
        )
        assert isinstance(open_trace_source(tmp_path / "t.trc"), Trace)


class TestCharacterizeChunks:
    def test_matches_materialized_characterize(self, tmp_path):
        trace = _trace(2000, seed=3)
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c", chunk_requests=129)
        assert characterize_chunks(chunked) == characterize(trace)

    def test_coalesces_across_chunk_boundaries(self, tmp_path):
        """A chunk starting with the previous chunk's last row is the
        same activation, exactly as in the concatenated array."""
        trace = Trace.from_rows([1, 1, 1, 1, 2, 2, 2, 2])
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c", chunk_requests=3)
        stats = characterize_chunks(chunked)
        assert stats.activations == 2
        assert stats == characterize(trace)

    def test_empty_source(self, tmp_path):
        chunked = ChunkedTrace.write([], tmp_path / "c", chunk_requests=4)
        stats = characterize_chunks(chunked)
        assert stats.activations == 0
        assert stats.unique_rows == 0


class TestHelpers:
    def test_materialize_passes_trace_through(self):
        trace = _trace(5)
        assert materialize(trace) is trace

    def test_duration_and_count(self, tmp_path):
        trace = _trace(50)
        chunked = ChunkedTrace.from_trace(trace, tmp_path / "c", chunk_requests=7)
        assert source_duration_ns(chunked) == pytest.approx(
            float(trace.gaps_ns.sum())
        )
        assert source_request_count(chunked) == 50
        write_external_trace(trace, tmp_path / "t.trc")
        reader = ExternalTraceReader(tmp_path / "t.trc", chunk_requests=7)
        assert source_request_count(reader) == 50

    def test_default_chunk_is_sane(self):
        assert DEFAULT_STREAM_CHUNK == 65536
