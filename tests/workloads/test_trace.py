"""Tests for the Trace container and Table-3 characterization."""

import numpy as np
import pytest

from repro.workloads.trace import Trace, characterize, statistics_by_window


class TestTraceContainer:
    def test_from_rows(self):
        trace = Trace.from_rows([1, 2, 3], gap_ns=5.0, n_lines=2)
        assert len(trace) == 3
        assert trace.total_lines == 6
        assert trace.duration_hint_ns == pytest.approx(15.0)

    def test_iteration_yields_tuples(self):
        trace = Trace.from_rows([7], gap_ns=3.0)
        items = list(trace)
        assert items == [(3.0, 7, 1, False)]

    def test_concatenate(self):
        a = Trace.from_rows([1, 2])
        b = Trace.from_rows([3])
        combined = Trace.concatenate([a, b], name="both")
        assert len(combined) == 3
        assert combined.rows.tolist() == [1, 2, 3]
        assert combined.name == "both"

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace.concatenate([])

    def test_concatenate_drops_caches_but_resolves_identically(self):
        """Regression for the documented cache-drop contract: inputs
        with warm ``_columns``/``_resolved`` caches produce a
        cold-cache concatenation whose rebuilt topology is
        bit-identical to streaming the parts back-to-back."""
        a = Trace.from_rows([1, 130, 257], gap_ns=5.0)
        b = Trace.from_rows([384, 2, 511], gap_ns=7.0)
        # Warm both inputs' lazy caches before concatenating.
        list(a.resolved_stream(128, 2))
        list(b.resolved_stream(128, 2))
        assert a._columns is not None and a._resolved
        combined = Trace.concatenate([a, b])
        assert combined._columns is None
        assert combined._resolved == {}
        expected = list(a.resolved_stream(128, 2)) + list(
            b.resolved_stream(128, 2)
        )
        assert list(combined.resolved_stream(128, 2)) == expected
        assert list(combined) == list(a) + list(b)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                gaps_ns=np.zeros(2),
                rows=np.zeros(3, dtype=np.int64),
                lines=np.ones(3, dtype=np.int32),
                writes=np.zeros(3, dtype=bool),
            )

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace.from_rows([5, 6, 7], gap_ns=2.5, name="t")
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.rows.tolist() == [5, 6, 7]
        assert loaded.gaps_ns.tolist() == [2.5] * 3


class TestCharacterize:
    def test_empty(self):
        stats = characterize(Trace.from_rows([]))
        assert stats.activations == 0
        assert stats.unique_rows == 0

    def test_counts_unique_rows_and_acts(self):
        stats = characterize(Trace.from_rows([1, 2, 1, 3, 1]))
        assert stats.unique_rows == 3
        assert stats.activations == 5
        assert stats.acts_per_row == pytest.approx(5 / 3)

    def test_consecutive_chunks_coalesce(self):
        """Back-to-back same-row requests = one activation (row hit)."""
        stats = characterize(Trace.from_rows([1, 1, 1, 2, 2, 1]))
        assert stats.activations == 3  # 1, 2, 1

    def test_hot_threshold(self):
        rows = [9] * 300 + [1]
        # Interleave so the 300 accesses are separate activations.
        interleaved = []
        for r in rows[:300]:
            interleaved += [r, 1]
        stats = characterize(Trace.from_rows(interleaved), hot_threshold=250)
        assert stats.act250_rows == 2  # both 9 (300) and 1 (301)

    def test_line_transfers(self):
        stats = characterize(Trace.from_rows([1, 2], n_lines=4))
        assert stats.line_transfers == 8


def _brute_force_by_window(trace, window_ns, hot_threshold=250):
    """The pre-optimization O(windows x N) reference: one sub-Trace
    characterized per window."""
    arrival = np.cumsum(trace.gaps_ns)
    window_ids = (arrival // window_ns).astype(np.int64)
    result = {}
    for window in np.unique(window_ids):
        mask = window_ids == window
        sub = Trace(
            gaps_ns=trace.gaps_ns[mask],
            rows=trace.rows[mask],
            lines=trace.lines[mask],
            writes=trace.writes[mask],
        )
        result[int(window)] = characterize(sub, hot_threshold)
    return result


class TestWindowSplit:
    def test_statistics_by_window(self):
        trace = Trace.from_rows([1, 2, 3, 4], gap_ns=10.0)
        by_window = statistics_by_window(trace, window_ns=20.0)
        assert len(by_window) >= 2
        total = sum(s.activations for s in by_window.values())
        assert total == 4

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            statistics_by_window(Trace.from_rows([1]), window_ns=0.0)

    def test_empty_trace(self):
        assert statistics_by_window(Trace.from_rows([]), window_ns=5.0) == {}

    @pytest.mark.parametrize("window_ns", [5.0, 50.0, 333.3, 1e9])
    def test_one_pass_matches_per_window_characterize(self, window_ns):
        """The single-pass implementation must agree with the obvious
        sub-Trace-per-window reference on every field, including the
        dedup restart at window boundaries."""
        rng = np.random.default_rng(11)
        n = 3000
        trace = Trace(
            gaps_ns=rng.uniform(0.1, 15.0, n),
            rows=rng.integers(0, 40, n, dtype=np.int64),  # many repeats
            lines=rng.integers(1, 5, n).astype(np.int32),
            writes=rng.random(n) < 0.5,
        )
        assert statistics_by_window(
            trace, window_ns, hot_threshold=10
        ) == _brute_force_by_window(trace, window_ns, hot_threshold=10)

    def test_row_continuing_across_boundary_reactivates(self):
        """A row spanning a window boundary counts as a fresh
        activation in the new window (each window characterizes as its
        own trace)."""
        trace = Trace.from_rows([9, 9, 9, 9], gap_ns=10.0)
        # Arrivals 10/20/30/40 land in windows 0, 1, 1, 2: the run of
        # row 9 coalesces within window 1 but re-activates in each new
        # window — 3 activations, where whole-trace coalescing gives 1.
        by_window = statistics_by_window(trace, window_ns=20.0)
        assert sum(s.activations for s in by_window.values()) == 3
        assert by_window[1].activations == 1
