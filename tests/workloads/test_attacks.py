"""Tests for the attack pattern generators."""

import pytest

from repro.dram.timing import DramGeometry
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestBasicPatterns:
    def test_single_sided(self):
        seq = attacks.single_sided(5, 10)
        assert seq == [5] * 10

    def test_double_sided_sandwiches_victim(self):
        seq = attacks.double_sided(100, 3)
        assert seq == [99, 101, 99, 101, 99, 101]

    def test_double_sided_needs_interior_victim(self):
        with pytest.raises(ValueError):
            attacks.double_sided(0, 5)

    def test_many_sided_round_robin(self):
        seq = attacks.many_sided([1, 2, 3], rounds=2)
        assert seq == [1, 2, 3, 1, 2, 3]
        with pytest.raises(ValueError):
            attacks.many_sided([], 1)


class TestHalfDouble:
    def test_mostly_distance_two(self):
        seq = attacks.half_double(100, far_hammers=2000, near_ratio=1000)
        far = {98, 102}
        near = {99, 101}
        far_count = sum(1 for r in seq if r in far)
        near_count = sum(1 for r in seq if r in near)
        assert far_count == 2000
        assert near_count == 2

    def test_victim_itself_never_touched(self):
        seq = attacks.half_double(100, far_hammers=500)
        assert 100 not in seq


class TestThrash:
    def test_aggressor_interleaved_with_decoys(self):
        seq = attacks.thrash_then_hammer(5, [10, 11], hammers=3, interleave=1)
        assert seq.count(5) == 3
        assert seq.count(10) == 3

    def test_interleave_spacing(self):
        seq = attacks.thrash_then_hammer(5, [10], hammers=4, interleave=2)
        assert seq.count(10) == 2


class TestRccThrash:
    def test_touches_many_distinct_rows(self):
        seq = attacks.rcc_thrash(GEOMETRY, target_rows=50, rounds=3)
        assert len(seq) == 150
        assert len(set(seq)) == 50


class TestRctRegionAttack:
    def test_targets_metadata_rows_only(self):
        from repro.core.rct import RowCountTable

        table = RowCountTable(GEOMETRY, counter_bytes=1)
        seq = attacks.rct_region_attack(GEOMETRY, hammers=20)
        assert len(seq) == 20
        assert all(table.is_meta_row(r) for r in seq)
