"""Tests for address-level stream -> LLC -> DRAM trace conversion."""

import pytest

from repro.cpu.cache import LastLevelCache
from repro.dram.timing import DramGeometry
from repro.workloads.address_stream import (
    gups_address_stream,
    trace_from_addresses,
)

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


def small_llc(lines=16) -> LastLevelCache:
    return LastLevelCache(capacity_bytes=lines * 64, ways=16)


class TestTraceFromAddresses:
    def test_hits_produce_no_requests(self):
        stream = [(0, False)] * 100  # same line over and over
        trace = trace_from_addresses(stream, GEOMETRY, small_llc())
        assert len(trace) == 1  # one cold miss

    def test_gap_accumulates_over_hits(self):
        stream = [(0, False)] * 10 + [(4096, False)]
        trace = trace_from_addresses(
            stream, GEOMETRY, small_llc(), ns_per_access=2.0
        )
        assert trace.gaps_ns[0] == pytest.approx(2.0)  # first miss
        assert trace.gaps_ns[1] == pytest.approx(20.0)  # after 10 hits

    def test_dirty_writeback_emitted_as_write(self):
        llc = small_llc(lines=16)  # single set
        stream = [(0, True)] + [(line * 64, False) for line in range(1, 17)]
        trace = trace_from_addresses(stream, GEOMETRY, llc)
        assert bool(trace.writes.any())
        write_rows = trace.rows[trace.writes]
        assert 0 in write_rows.tolist()  # row of address 0 written back

    def test_row_mapping(self):
        address = 3 * GEOMETRY.row_size_bytes + 64
        trace = trace_from_addresses([(address, False)], GEOMETRY, small_llc())
        assert trace.rows[0] == 3

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            trace_from_addresses([], GEOMETRY, small_llc(), ns_per_access=0.0)


class TestGupsThroughCache:
    def test_rmw_pattern_mostly_misses_with_small_cache(self):
        stream = gups_address_stream(table_bytes=1 << 18, updates=2000)
        llc = LastLevelCache(capacity_bytes=16 * 64, ways=16)
        trace = trace_from_addresses(stream, GEOMETRY, llc)
        # Random updates over a table >> cache: nearly one miss per
        # update (the write to the same word hits the just-filled line).
        assert len(trace) > 1500

    def test_large_cache_absorbs_small_table(self):
        stream = gups_address_stream(table_bytes=16 * 64, updates=2000)
        llc = LastLevelCache(capacity_bytes=1 << 16, ways=16)
        trace = trace_from_addresses(stream, GEOMETRY, llc)
        assert len(trace) <= 16  # only cold misses

    def test_rejects_trivial_parameters(self):
        with pytest.raises(ValueError):
            gups_address_stream(table_bytes=8, updates=10)
        with pytest.raises(ValueError):
            gups_address_stream(table_bytes=1024, updates=0)

    def test_end_to_end_through_simulator(self):
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import simulate

        config = SystemConfig(scale=1 / 128, n_windows=1)
        stream = gups_address_stream(table_bytes=1 << 18, updates=3000)
        trace = trace_from_addresses(
            stream,
            config.geometry,
            LastLevelCache(capacity_bytes=32 * 64, ways=16),
            ns_per_access=2.0,
            name="gups-llc",
        )
        result = simulate(trace, config, "hydra")
        assert result.requests == len(trace)
        assert result.activations > 0
