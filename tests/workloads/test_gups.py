"""Tests for the GUPS kernel generator."""

import numpy as np
import pytest

from repro.dram.timing import PAPER_GEOMETRY, PAPER_TIMING
from repro.workloads.gups import generate_gups
from repro.workloads.trace import characterize

GEOMETRY = PAPER_GEOMETRY.scaled(1 / 32)
TIMING = PAPER_TIMING.scaled(1 / 32)


class TestGupsGenerator:
    def test_uniform_coverage_of_working_set(self):
        trace = generate_gups(GEOMETRY, TIMING, working_set_rows=500, updates=20_000)
        stats = characterize(trace)
        assert stats.unique_rows == pytest.approx(500, abs=5)

    def test_no_hot_rows(self):
        """Table 3: GUPS has zero 250+-ACT rows (uniform spreading)."""
        trace = generate_gups(GEOMETRY, TIMING, working_set_rows=2000, updates=60_000)
        stats = characterize(trace)
        assert stats.act250_rows == 0

    def test_deterministic(self):
        a = generate_gups(GEOMETRY, TIMING, 100, 1000, seed=5)
        b = generate_gups(GEOMETRY, TIMING, 100, 1000, seed=5)
        assert np.array_equal(a.rows, b.rows)

    def test_working_set_clamped_to_memory(self):
        trace = generate_gups(
            GEOMETRY, TIMING, working_set_rows=10**9, updates=100
        )
        assert len(trace) == 100

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_gups(GEOMETRY, TIMING, 0, 10)
        with pytest.raises(ValueError):
            generate_gups(GEOMETRY, TIMING, 10, 0)

    def test_update_rate_sets_gaps(self):
        trace = generate_gups(
            GEOMETRY, TIMING, 100, 10, update_rate_per_ns=0.1
        )
        assert trace.gaps_ns[0] == pytest.approx(10.0)
