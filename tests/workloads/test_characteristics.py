"""Tests for the Table 3 workload data."""

import pytest

from repro.dram.timing import PAPER_TIMING
from repro.workloads.characteristics import (
    SUITES,
    TABLE3,
    WorkloadCharacteristics,
    all_names,
    workload,
)


class TestTableContents:
    def test_thirty_six_workloads(self):
        assert len(TABLE3) == 36

    def test_suite_partition(self):
        assert len(SUITES["SPEC(22)"]) == 22
        assert len(SUITES["PARSEC(7)"]) == 7
        assert len(SUITES["GAP(6)"]) == 6
        assert SUITES["GUPS(1)"] == ["GUPS"]
        assert len(SUITES["ALL(36)"]) == 36

    def test_spot_check_parest(self):
        """parest: the hot-row extreme (5882 rows with 250+ ACTs)."""
        w = workload("parest")
        assert w.mpki_llc == 27.6
        assert w.unique_rows == 13_800
        assert w.act250_rows == 5882
        assert w.acts_per_row == 237.0

    def test_spot_check_deepsjeng(self):
        """deepsjeng: the footprint extreme (802K unique rows)."""
        w = workload("deepsjeng")
        assert w.unique_rows == 802_000
        assert w.act250_rows == 0

    def test_total_activations_helper(self):
        w = workload("bwaves")
        assert w.total_activations == int(77_900 * 38.6)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("quake3")

    def test_all_names_order_matches_table(self):
        assert all_names()[0] == "bwaves"
        assert all_names()[-1] == "GUPS"


class TestPhysicalPlausibility:
    def test_no_workload_exceeds_per_bank_act_budget(self):
        """Total ACTs must fit in 32 banks x ACT_max (§2.1)."""
        budget = 32 * PAPER_TIMING.max_activations_per_window()
        for w in TABLE3:
            assert w.total_activations < budget, w.name

    def test_hot_rows_never_exceed_unique_rows(self):
        for w in TABLE3:
            assert w.act250_rows <= w.unique_rows


class TestValidation:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            WorkloadCharacteristics("x", "S", 1.0, 0, 0, 1.0)
        with pytest.raises(ValueError):
            WorkloadCharacteristics("x", "S", 1.0, 10, 20, 1.0)
        with pytest.raises(ValueError):
            WorkloadCharacteristics("x", "S", 1.0, 10, 0, 0.0)
