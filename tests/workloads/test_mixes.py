"""Tests for heterogeneous workload mixing."""

import numpy as np
import pytest

from repro.workloads.mixes import attack_alongside, merge_traces
from repro.workloads.trace import Trace


class TestMergeTraces:
    def test_preserves_all_requests(self):
        a = Trace.from_rows([1, 2, 3], gap_ns=10.0)
        b = Trace.from_rows([4, 5], gap_ns=7.0)
        merged = merge_traces([a, b])
        assert len(merged) == 5
        assert set(merged.rows.tolist()) == {1, 2, 3, 4, 5}

    def test_arrival_order_respected(self):
        a = Trace.from_rows([1], gap_ns=100.0)  # arrives at 100
        b = Trace.from_rows([2], gap_ns=5.0)  # arrives at 5
        merged = merge_traces([a, b])
        assert merged.rows.tolist() == [2, 1]

    def test_gaps_reconstruct_arrivals(self):
        a = Trace.from_rows([1, 1], gap_ns=10.0)
        b = Trace.from_rows([2], gap_ns=15.0)
        merged = merge_traces([a, b])
        arrivals = np.cumsum(merged.gaps_ns)
        assert arrivals.tolist() == [10.0, 15.0, 20.0]

    def test_single_trace_identity(self):
        a = Trace.from_rows([1, 2], gap_ns=10.0)
        merged = merge_traces([a])
        assert merged.rows.tolist() == [1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_merge_drops_caches_but_resolves_identically(self):
        """Regression for the documented cache-drop contract: merging
        inputs with warm lazy caches yields a cold-cache mix whose
        rebuilt per-request topology matches resolving the merged
        arrays directly."""
        a = Trace.from_rows([1, 130, 257], gap_ns=10.0)
        b = Trace.from_rows([384, 2], gap_ns=7.0)
        list(a.resolved_stream(128, 2))  # warm the inputs' caches
        list(b.resolved_stream(128, 2))
        merged = merge_traces([a, b])
        assert merged._columns is None
        assert merged._resolved == {}
        rebuilt = Trace(
            gaps_ns=merged.gaps_ns.copy(),
            rows=merged.rows.copy(),
            lines=merged.lines.copy(),
            writes=merged.writes.copy(),
        )
        assert list(merged.resolved_stream(128, 2)) == list(
            rebuilt.resolved_stream(128, 2)
        )


class TestAttackAlongside:
    def test_injects_attack_at_rate(self):
        victim = Trace.from_rows([10] * 100, gap_ns=10.0)  # 1000 ns
        mixed = attack_alongside(
            victim, attack_rows=[500, 502], attack_rate_per_ns=0.1
        )
        attack_requests = int((mixed.rows >= 500).sum())
        assert attack_requests == 100  # 1000 ns x 0.1/ns

    def test_attack_rows_cycle(self):
        victim = Trace.from_rows([10] * 50, gap_ns=10.0)
        mixed = attack_alongside(
            victim, attack_rows=[500, 502], attack_rate_per_ns=0.02
        )
        attack_rows = mixed.rows[mixed.rows >= 500]
        assert set(attack_rows.tolist()) == {500, 502}

    def test_rejects_bad_inputs(self):
        victim = Trace.from_rows([1], gap_ns=10.0)
        with pytest.raises(ValueError):
            attack_alongside(victim, [], 0.1)
        with pytest.raises(ValueError):
            attack_alongside(victim, [5], 0.0)


class TestMixThroughTracker:
    def test_attacker_mitigated_inside_benign_mix(self):
        """End to end: the attack stream inside a benign mix still
        draws mitigations from Hydra."""
        from repro.sim.config import SystemConfig
        from repro.sim.simulator import simulate

        config = SystemConfig(scale=1 / 128, n_windows=1)
        victim = Trace.from_rows(
            [i % 300 for i in range(4000)], gap_ns=12.0, name="benign"
        )
        mixed = attack_alongside(
            victim,
            attack_rows=[5000, 5002],
            attack_rate_per_ns=0.05,
            name="mix",
        )
        result = simulate(mixed, config, "hydra")
        assert result.mitigations > 0
