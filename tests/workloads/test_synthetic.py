"""Tests that the synthetic generator actually matches Table 3."""

import numpy as np
import pytest

from repro.dram.timing import PAPER_GEOMETRY, PAPER_TIMING
from repro.workloads.characteristics import workload
from repro.workloads.synthetic import (
    GeneratorConfig,
    SyntheticWorkloadGenerator,
    usable_rows,
)
from repro.workloads.trace import characterize

SCALE = 1.0 / 32.0


def make_generator(**overrides) -> SyntheticWorkloadGenerator:
    defaults = dict(
        geometry=PAPER_GEOMETRY.scaled(SCALE),
        timing=PAPER_TIMING.scaled(SCALE),
        scale=SCALE,
        n_windows=1,
    )
    defaults.update(overrides)
    return SyntheticWorkloadGenerator(GeneratorConfig(**defaults))


def window_stats(name: str, **overrides):
    generator = make_generator(**overrides)
    return characterize(generator.generate(workload(name)))


class TestTable3Fidelity:
    @pytest.mark.parametrize("name", ["bwaves", "xz", "GUPS", "mcf"])
    def test_unique_rows_match(self, name):
        stats = window_stats(name)
        expected = workload(name).unique_rows * SCALE
        assert stats.unique_rows == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("name", ["bwaves", "xz", "parest", "lbm"])
    def test_acts_per_row_match(self, name):
        stats = window_stats(name)
        expected = workload(name).acts_per_row
        assert stats.acts_per_row == pytest.approx(expected, rel=0.15)

    @pytest.mark.parametrize("name", ["parest", "xz", "ferret"])
    def test_hot_row_count_matches(self, name):
        stats = window_stats(name)
        expected = workload(name).act250_rows * SCALE
        assert stats.act250_rows == pytest.approx(expected, rel=0.25)

    @pytest.mark.parametrize("name", ["bwaves", "lbm", "GUPS", "deepsjeng"])
    def test_no_spurious_hot_rows(self, name):
        """Workloads Table 3 lists with zero 250+-ACT rows."""
        stats = window_stats(name)
        assert stats.act250_rows <= max(2, 0.002 * stats.unique_rows)

    def test_rows_avoid_metadata_reservation(self):
        generator = make_generator()
        trace = generator.generate(workload("deepsjeng"))
        geometry = generator.config.geometry
        usable_per_bank = usable_rows(geometry) // geometry.total_banks
        locals_ = trace.rows % geometry.rows_per_bank
        assert int(locals_.max()) < usable_per_bank


class TestDeterminismAndWindows:
    def test_same_seed_same_trace(self):
        a = make_generator().generate(workload("xz"))
        b = make_generator().generate(workload("xz"))
        assert np.array_equal(a.rows, b.rows)

    def test_different_seed_differs(self):
        a = make_generator().generate(workload("xz"))
        b = make_generator(seed=99).generate(workload("xz"))
        assert not np.array_equal(a.rows, b.rows)

    def test_multi_window_repeats_statistics(self):
        from repro.workloads.trace import Trace

        generator = make_generator(n_windows=2)
        trace = generator.generate(workload("xz"))
        half = len(trace) // 2
        halves = [
            Trace(
                trace.gaps_ns[s], trace.rows[s], trace.lines[s], trace.writes[s]
            )
            for s in (slice(0, half), slice(half, None))
        ]
        stats = [characterize(t) for t in halves]
        assert stats[0].activations == pytest.approx(
            stats[1].activations, rel=0.1
        )
        assert stats[0].unique_rows == pytest.approx(
            stats[1].unique_rows, rel=0.1
        )


class TestShape:
    def test_gaps_positive_and_lines_bounded(self):
        trace = make_generator().generate(workload("bwaves"))
        assert (trace.gaps_ns > 0).all()
        assert int(trace.lines.max()) <= 16

    def test_memory_intensity_orders_gap_sizes(self):
        """Higher MPKI means denser arrivals."""
        heavy = make_generator().generate(workload("bc_t"))
        light = make_generator().generate(workload("leela"))
        assert heavy.gaps_ns.mean() < light.gaps_ns.mean()

    def test_chunking_splits_large_bursts(self):
        """bwaves moves ~20 lines per activation: multiple chunks."""
        trace = make_generator().generate(workload("bwaves"))
        stats = characterize(trace)
        assert len(trace) > stats.activations

    def test_cluster_span_constrains_footprint(self):
        generator = make_generator(cluster_span=2.0)
        trace = generator.generate(workload("xz"))
        spread = int(trace.rows.max()) - int(trace.rows.min())
        total = generator.config.geometry.total_rows
        assert spread < total / 4


class TestConfigValidation:
    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            GeneratorConfig(
                geometry=PAPER_GEOMETRY,
                timing=PAPER_TIMING,
                scale=0.0,
            )

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            GeneratorConfig(
                geometry=PAPER_GEOMETRY,
                timing=PAPER_TIMING,
                n_windows=0,
            )
