"""Tests for the Half-Double mitigation-cascade analysis (§7.4)."""

import pytest

from repro.analysis.blast import (
    amplification_factor,
    is_design_safe,
    mitigation_cascade,
    paper_worked_example,
)


class TestPaperExample:
    def test_section74_numbers(self):
        """300K hammers @ T_H=250: 1200 mitigations at ring 0, 4 at
        ring 1, nothing at ring 2 — verbatim from §7.4."""
        rings = paper_worked_example()
        assert rings[0].mitigations_per_row == 1200
        assert rings[1].activations_per_row == 1200
        assert rings[1].mitigations_per_row == 4
        assert rings[2].activations_per_row == 4
        assert rings[2].mitigations_per_row == 0

    def test_cascade_terminates_quickly(self):
        rings = paper_worked_example()
        assert len(rings) <= 4


class TestCascadeMath:
    def test_geometric_decay(self):
        rings = mitigation_cascade(hammers=10**6, th=100)
        values = [r.activations_per_row for r in rings]
        assert values == sorted(values, reverse=True)
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier // 100 + 1

    def test_no_mitigations_below_threshold(self):
        rings = mitigation_cascade(hammers=99, th=100)
        assert rings[0].mitigations_per_row == 0
        assert len(rings) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mitigation_cascade(-1, 100)
        with pytest.raises(ValueError):
            mitigation_cascade(100, 0)


class TestDesignSafety:
    def test_paper_design_is_safe(self):
        assert is_design_safe(trh=500, hammers=300_000)

    def test_not_counting_mitigations_is_unsafe(self):
        """§5.2.1's rule is load-bearing: without it, ring-1 rows
        absorb 1200 unmitigated activations > T_RH at low thresholds."""
        assert not is_design_safe(
            trh=500,
            hammers=300_000,
            count_mitigation_activations=False,
        )

    def test_extreme_hammering_still_safe_when_counted(self):
        assert is_design_safe(trh=250, hammers=10**7)


class TestAmplification:
    def test_overhead_is_small_fraction(self):
        """Mitigation traffic amortizes to ~4/T_H extra ACTs per
        demand ACT under sustained hammering."""
        factor = amplification_factor(hammers=300_000, th=250)
        assert factor == pytest.approx(4 / 250, rel=0.05)

    def test_zero_for_no_hammers(self):
        assert amplification_factor(0, 250) == 0.0


class TestCrossValidationWithTracker:
    def test_analytic_ring0_matches_functional_hydra(self):
        """The oracle-harness mitigation count for a pure double-sided
        hammer train matches the analytic ring-0 prediction."""
        from repro.analysis.security import verify_tracker
        from repro.core.config import HydraConfig
        from repro.core.hydra import HydraTracker
        from repro.dram.timing import DramGeometry

        geometry = DramGeometry(
            channels=1, ranks_per_channel=1, banks_per_rank=2,
            rows_per_bank=1024, row_size_bytes=256,
        )
        config = HydraConfig(
            geometry=geometry, trh=100, gct_entries=16,
            rcc_entries=8, rcc_ways=4,
        )
        # Two aggressors far enough apart that neither receives the
        # other's victim refreshes (pure ring-0 arithmetic).
        hammers_per_side = 1000
        tracker = HydraTracker(config)
        report = verify_tracker(
            tracker,
            geometry,
            [row for pair in zip([400] * hammers_per_side,
                                 [600] * hammers_per_side)
             for row in pair],
            config.th,
        )
        assert report.secure
        predicted = 2 * mitigation_cascade(
            hammers_per_side, config.th
        )[0].mitigations_per_row
        # The harness also counts one conservative mitigation per
        # neighbour (their counters inherit T_G at group init), so the
        # total sits between the ring-0 prediction and prediction +
        # one per neighbour (2 aggressors x 4 neighbours).
        assert predicted <= report.mitigations <= predicted + 8
