"""Tests for the CACTI-flavoured SRAM power model (§6.8)."""

import pytest

from repro.analysis.sram_power import (
    hydra_sram_power,
    read_energy_pj,
    sram_power,
)
from repro.core.config import HydraConfig


class TestModelShape:
    def test_energy_grows_with_capacity(self):
        assert read_energy_pj(64 * 1024) > read_energy_pj(8 * 1024)

    def test_energy_grows_with_associativity(self):
        assert read_energy_pj(8 * 1024, ways=16) > read_energy_pj(8 * 1024, ways=1)

    def test_leakage_linear_in_capacity(self):
        small = sram_power(16 * 1024, 0.0)
        large = sram_power(32 * 1024, 0.0)
        assert large.leakage_mw == pytest.approx(2 * small.leakage_mw)

    def test_dynamic_scales_with_rate(self):
        slow = sram_power(32 * 1024, 1e6)
        fast = sram_power(32 * 1024, 1e8)
        assert fast.dynamic_mw == pytest.approx(100 * slow.dynamic_mw)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            read_energy_pj(0)
        with pytest.raises(ValueError):
            read_energy_pj(1024, ways=0)
        with pytest.raises(ValueError):
            sram_power(1024, -1.0)


class TestPaperCalibration:
    def test_hydra_totals_near_paper_values(self):
        """§6.8: GCT ~10.6 mW, RCC ~8 mW, total ~18.6 mW at 22 nm.

        The analytic model should land within a factor-of-2 band of
        CACTI's numbers — the paper's conclusion (negligible) only
        needs the order of magnitude.
        """
        gct, rcc = hydra_sram_power(HydraConfig())
        assert gct.total_mw == pytest.approx(10.6, rel=0.5)
        assert rcc.total_mw == pytest.approx(8.0, rel=0.5)
        assert gct.total_mw + rcc.total_mw == pytest.approx(18.6, rel=0.4)

    def test_power_is_negligible_versus_dram(self):
        """DRAM ranks burn watts; Hydra's SRAM burns milliwatts."""
        gct, rcc = hydra_sram_power(HydraConfig())
        assert (gct.total_mw + rcc.total_mw) / 1000.0 < 0.05
