"""Tests for the tracker arena (slowdown/storage/security Pareto)."""

import json

import pytest

from repro.analysis.arena import (
    DEFAULT_TRH_LADDER,
    MANY_AGGRESSORS,
    ORACLE_SEQUENCES,
    ArenaCell,
    OracleOutcome,
    mark_pareto,
    oracle_sequence,
    run_arena,
)
from repro.analysis.report import render_arena
from repro.obs.manifest import read_arena_records, read_manifest
from repro.sim.config import SystemConfig

ACT_MAX = 100_000


def outcome(**overrides) -> OracleOutcome:
    base = dict(
        sequence="single",
        secure=True,
        exercised=True,
        violations=0,
        max_unmitigated=10,
        mitigations=1,
        activations=100,
    )
    base.update(overrides)
    return OracleOutcome(**base)


def cell(**overrides) -> ArenaCell:
    base = dict(
        spec="graphene",
        trh=1000,
        security_class="deterministic",
        slowdown_percent=1.0,
        sram_bytes=1024,
        llc_reserved_bytes=0,
        dram_reserved_bytes=0,
        oracle=(outcome(),),
    )
    base.update(overrides)
    return ArenaCell(**base)


class TestOracleSequences:
    def test_single_crosses_threshold_twice(self):
        rows, exercised = oracle_sequence("single", 1000, 4096, ACT_MAX)
        assert exercised
        assert rows == [5] * len(rows)
        assert len(rows) > 2 * 500

    def test_single_unexercised_when_window_too_small(self):
        """A scaled window smaller than T_H cannot host the attack."""
        _, exercised = oracle_sequence("single", 139_000, 4096, 10_000)
        assert not exercised

    def test_many_overflows_small_queues(self):
        rows, exercised = oracle_sequence("many", 1000, 4096, ACT_MAX)
        assert exercised
        assert len(set(rows)) == MANY_AGGRESSORS > 16

    def test_many_shrinks_to_sanity_size_when_capped(self):
        """Once the cap makes the threshold unreachable, the sequence
        shrinks instead of burning the full budget on a vacuous run."""
        rows, exercised = oracle_sequence("many", 139_000, 4096, ACT_MAX)
        assert not exercised
        assert len(rows) <= MANY_AGGRESSORS * 2048

    def test_random_is_sanity_only(self):
        rows, exercised = oracle_sequence("random", 1000, 64, ACT_MAX)
        assert not exercised
        assert all(0 <= row < 64 for row in rows)

    def test_random_is_deterministic(self):
        first, _ = oracle_sequence("random", 1000, 4096, ACT_MAX)
        second, _ = oracle_sequence("random", 1000, 4096, ACT_MAX)
        assert first == second

    def test_unknown_sequence_rejected(self):
        with pytest.raises(ValueError):
            oracle_sequence("half-pipe", 1000, 4096, ACT_MAX)


class TestVerdicts:
    def test_deterministic_clean_is_secure(self):
        assert cell().verdict == "secure"

    def test_deterministic_violation_is_flagged(self):
        bad = cell(oracle=(outcome(secure=False, violations=2),))
        assert bad.verdict == "INSECURE"
        assert not bad.oracle_eligible

    def test_probabilistic_violations_are_by_design(self):
        probabilistic = cell(
            security_class="probabilistic",
            oracle=(outcome(secure=False, violations=1),),
        )
        assert probabilistic.verdict == "violations (by design)"

    def test_rate_control_is_never_judged(self):
        rate = cell(
            security_class="rate-control",
            oracle=(outcome(secure=False, violations=16),),
        )
        assert rate.verdict == "n/a"

    def test_insecure_breaking_is_expected(self):
        control = cell(
            security_class="insecure",
            oracle=(outcome(secure=False, violations=16),),
        )
        assert control.verdict == "breaks (expected)"
        assert not control.oracle_eligible

    def test_unexercised_cells_are_honest(self):
        vacuous = cell(oracle=(outcome(exercised=False),))
        assert vacuous.verdict == "not exercised"

    def test_storage_axis_includes_llc_not_dram(self):
        c = cell(sram_bytes=100, llc_reserved_bytes=50, dram_reserved_bytes=900)
        assert c.storage_bytes == 150


class TestPareto:
    def test_dominated_cells_excluded(self):
        cheap_fast = cell(spec="a", slowdown_percent=1.0, sram_bytes=100)
        dominated = cell(spec="b", slowdown_percent=2.0, sram_bytes=200)
        tradeoff = cell(spec="c", slowdown_percent=0.5, sram_bytes=5000)
        cells = [cheap_fast, dominated, tradeoff]
        mark_pareto(cells)
        assert [c.spec for c in cells if c.pareto] == ["a", "c"]

    def test_insecure_and_violating_cells_excluded(self):
        control = cell(
            spec="ctl",
            security_class="insecure",
            slowdown_percent=0.0,
            sram_bytes=0,
        )
        violator = cell(
            spec="bad",
            slowdown_percent=0.0,
            sram_bytes=0,
            oracle=(outcome(secure=False, violations=1),),
        )
        honest = cell(spec="ok", slowdown_percent=3.0, sram_bytes=4096)
        cells = [control, violator, honest]
        mark_pareto(cells)
        assert [c.spec for c in cells if c.pareto] == ["ok"]

    def test_identical_points_co_own_the_frontier(self):
        twin_a = cell(spec="a", slowdown_percent=1.0, sram_bytes=100)
        twin_b = cell(spec="b", slowdown_percent=1.0, sram_bytes=100)
        cells = [twin_a, twin_b]
        mark_pareto(cells)
        assert twin_a.pareto and twin_b.pareto


class TestRunArena:
    """End-to-end on a deliberately tiny grid (one rung, one workload)."""

    @pytest.fixture(scope="class")
    def arena(self, tmp_path_factory):
        manifest = tmp_path_factory.mktemp("arena") / "manifest.jsonl"
        config = SystemConfig(scale=1 / 128, n_windows=1)
        report = run_arena(
            config,
            trackers=("baseline", "graphene", "comet", "prohit"),
            trh_ladder=(1000,),
            workloads=("GUPS",),
            jobs=1,
            manifest_path=manifest,
            progress=False,
        )
        return report, manifest

    def test_every_tracker_gets_a_cell(self, arena):
        report, _ = arena
        assert sorted(c.spec for c in report.rung(1000)) == [
            "baseline",
            "comet",
            "graphene",
            "prohit",
        ]

    def test_baseline_anchors_slowdown_at_zero(self, arena):
        report, _ = arena
        assert report.cell("baseline", 1000).slowdown_percent == 0.0

    def test_deterministic_trackers_pass_the_oracle(self, arena):
        report, _ = arena
        for spec in ("graphene", "comet"):
            assert report.cell(spec, 1000).verdict == "secure"

    def test_negative_control_breaks(self, arena):
        report, _ = arena
        assert report.cell("prohit", 1000).verdict == "breaks (expected)"

    def test_frontier_is_oracle_clean(self, arena):
        report, _ = arena
        frontier = report.pareto_frontier(1000)
        assert frontier
        assert all(c.oracle_eligible for c in frontier)

    def test_every_sequence_ran_per_cell(self, arena):
        report, _ = arena
        for c in report.cells:
            assert tuple(o.sequence for o in c.oracle) == ORACLE_SEQUENCES

    def test_manifest_carries_both_streams(self, arena):
        report, manifest = arena
        cells, cell_skipped = read_manifest(manifest)
        oracle, oracle_skipped = read_arena_records(manifest)
        assert cell_skipped == oracle_skipped == 0
        assert len(cells) == 4  # 4 trackers x 1 workload x 1 rung
        assert len(oracle) == 4 * len(ORACLE_SEQUENCES)
        by_spec = {r.spec for r in oracle}
        assert by_spec == {"baseline", "graphene", "comet", "prohit"}

    def test_report_serializes(self, arena):
        report, _ = arena
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["trh_ladder"] == [1000]
        assert payload["pareto"]["1000"]
        assert len(payload["cells"]) == 4
        first = payload["cells"][0]
        for key in ("spec", "verdict", "storage_bytes", "oracle", "pareto"):
            assert key in first

    def test_render_arena_mentions_every_tracker(self, arena):
        report, _ = arena
        text = render_arena(report)
        assert "## T_RH = 1000" in text
        for spec in ("baseline", "graphene", "comet", "prohit"):
            assert spec in text
        assert "Pareto frontier:" in text

    def test_unknown_cell_lookup_raises(self, arena):
        report, _ = arena
        with pytest.raises(KeyError):
            report.cell("graphene", 4800)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            run_arena(SystemConfig(scale=1 / 128), trh_ladder=())

    def test_default_ladder_spans_the_paper_range(self):
        assert DEFAULT_TRH_LADDER[0] == 139_000
        assert DEFAULT_TRH_LADDER[-1] == 500


class TestExperimentRegistration:
    def test_arena_is_a_named_experiment(self):
        from repro.sim.experiments import available_experiments

        assert "arena" in available_experiments()
