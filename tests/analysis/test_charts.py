"""Tests for the ASCII chart helpers."""

from repro.analysis.charts import bar_chart, comparison_chart, stacked_percentages


class TestBarChart:
    def test_renders_all_labels(self):
        chart = bar_chart({"alpha": 1.0, "beta": 2.0}, width=10)
        assert "alpha" in chart and "beta" in chart

    def test_scales_to_peak(self):
        chart = bar_chart({"small": 1.0, "big": 10.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_overflow_marker_with_fixed_max(self):
        chart = bar_chart({"x": 5.0}, width=10, max_value=2.0)
        assert "+" in chart

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_peak_does_not_crash(self):
        assert "0.00" in bar_chart({"x": 0.0})


class TestStackedPercentages:
    def test_renders_components_in_order(self):
        rows = {"w1": {"a": 0.5, "b": 0.5}}
        chart = stacked_percentages(rows, order=["a", "b"], width=10)
        bar = chart.splitlines()[0]
        assert "#####" in bar and "=====" in bar

    def test_legend_present(self):
        rows = {"w1": {"a": 1.0}}
        chart = stacked_percentages(rows, order=["a"])
        assert "#=a" in chart

    def test_empty(self):
        assert stacked_percentages({}) == "(no data)"


class TestComparisonChart:
    def test_pairs_measured_and_paper(self):
        chart = comparison_chart({"hydra": 0.7}, {"hydra": 0.7})
        assert chart.count("hydra") == 1
        assert "measured" in chart and "paper" in chart

    def test_only_common_keys(self):
        chart = comparison_chart({"a": 1.0, "b": 2.0}, {"a": 1.0})
        assert "b" not in chart

    def test_empty_intersection(self):
        assert comparison_chart({"a": 1.0}, {"b": 1.0}) == "(no data)"
