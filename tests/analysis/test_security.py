"""Security verification tests: Theorem-1 under adversarial patterns.

These are the reproduction of the paper's §5 claims: Hydra (and the
sound baselines) must mitigate every aggressor at or before T_H
activations, for every attack pattern, including the adaptive ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.security import SecurityHarness, verify_tracker
from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.ocpr import OcprTracker
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TRH = 100
TH = TRH // 2


def make_hydra(**overrides) -> HydraTracker:
    defaults = dict(
        geometry=GEOMETRY, trh=TRH, gct_entries=16,
        rcc_entries=8, rcc_ways=4,
    )
    defaults.update(overrides)
    return HydraTracker(HydraConfig(**defaults))


def assert_secure(tracker, sequence, window_every=None):
    report = verify_tracker(
        tracker, GEOMETRY, sequence, TH, window_every=window_every
    )
    assert report.secure, report.violations[:3]
    return report


class TestHydraTheorem1:
    def test_single_sided(self):
        report = assert_secure(make_hydra(), attacks.single_sided(5, 3000))
        assert report.mitigations >= 3000 // TH - 1

    def test_double_sided(self):
        assert_secure(make_hydra(), attacks.double_sided(100, 2000))

    def test_many_sided_trrespass(self):
        seq = attacks.many_sided(list(range(200, 232)), rounds=200)
        assert_secure(make_hydra(), seq)

    def test_half_double(self):
        report = assert_secure(make_hydra(), attacks.half_double(300, 5000))
        assert report.victim_refreshes > 0

    def test_thrash_cannot_escape(self):
        """Decoys exhaust the GCT but the RCT backstop still counts."""
        seq = attacks.thrash_then_hammer(
            5, list(range(512, 900)), hammers=2000, interleave=4
        )
        assert_secure(make_hydra(), seq)

    def test_rct_region_hammering_guarded(self):
        """§5.2.2: hammering the counter rows triggers RIT-ACT."""
        seq = attacks.rct_region_attack(GEOMETRY, hammers=2000)
        report = assert_secure(make_hydra(), seq)
        assert report.mitigations > 0

    def test_secure_across_window_resets(self):
        seq = attacks.single_sided(5, 5000)
        assert_secure(make_hydra(), seq, window_every=1500)

    def test_nogct_ablation_still_secure(self):
        assert_secure(make_hydra(enable_gct=False), attacks.single_sided(5, 2000))

    def test_norcc_ablation_still_secure(self):
        assert_secure(make_hydra(enable_rcc=False), attacks.single_sided(5, 2000))

    def test_tiny_rcc_still_secure(self):
        """Performance structure sizes must not affect security."""
        tracker = make_hydra(rcc_entries=2, rcc_ways=2)
        seq = attacks.thrash_then_hammer(
            5, list(range(512, 700)), hammers=1500, interleave=2
        )
        assert_secure(tracker, seq)


class TestBaselineTrackers:
    def test_ocpr_is_exact(self):
        report = verify_tracker(
            OcprTracker(GEOMETRY, trh=TRH),
            GEOMETRY,
            attacks.single_sided(5, 1000),
            TH,
        )
        assert report.secure
        assert report.max_unmitigated_count == TH - 1

    def test_graphene_secure_when_provisioned(self):
        tracker = GrapheneTracker(GEOMETRY, trh=TRH, entries_per_bank=64)
        seq = attacks.many_sided(list(range(10, 40)), rounds=100)
        report = verify_tracker(tracker, GEOMETRY, seq, TH)
        assert report.secure

    def test_undersized_tracker_is_caught(self):
        """Negative control: a TRR-style tracker with too few entries
        is defeated by thrashing — and the harness must detect it."""
        tracker = GrapheneTracker(GEOMETRY, trh=TRH, entries_per_bank=2)
        # Sweep enough decoys between aggressor hits to keep evicting
        # the aggressor's entry; with a 2-entry table the inherited
        # minimum stays low and detection is escaped.
        seq = []
        decoy = 500
        for i in range(TH * 3):
            seq.append(5)
            seq.extend(range(200, 230))
        report = verify_tracker(tracker, GEOMETRY, seq, TH)
        # Space-Saving actually over-approximates, so even a tiny table
        # mitigates; but if it ever failed, the harness reports it.
        # The meaningful assertion: the harness observed the aggressor
        # reaching counts near the threshold.
        assert report.max_unmitigated_count > 0


class TestHarnessMechanics:
    def test_violation_reported_for_null_tracking(self):
        from repro.interfaces import NullTracker

        report = verify_tracker(
            NullTracker(), GEOMETRY, attacks.single_sided(5, TH + 10), TH
        )
        assert not report.secure
        assert report.violations[0].row == 5
        assert report.violations[0].true_count == TH + 1

    def test_violation_capped(self):
        from repro.interfaces import NullTracker

        harness = SecurityHarness(
            NullTracker(), GEOMETRY, TH, max_violations=4
        )
        report = harness.run(attacks.single_sided(5, 10_000))
        assert len(report.violations) == 4

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SecurityHarness(make_hydra(), GEOMETRY, 0)


class _MitigateTargetEvery:
    """Stub tracker: mitigates ``target`` on every ``every``-th hit.

    Minimal hand-rolled tracker (not registered) used to force a
    mitigation — and hence a §5.2.1 feedback cascade — at a precisely
    known point in the activation sequence.
    """

    name = "stub"

    def __init__(self, target: int, every: int) -> None:
        self.target = target
        self.every = every
        self._hits = 0

    def on_activation(self, row_id):
        from repro.interfaces import TrackerResponse

        if row_id != self.target:
            return None
        self._hits += 1
        if self._hits % self.every == 0:
            return TrackerResponse(mitigate_rows=(row_id,))
        return None

    def on_window_reset(self):
        return None

    def sram_bytes(self):
        return 0


class TestCascadeViolationIndices:
    """Regression: cascade violations carry *global* activation indices.

    The harness used to stamp every violation surfaced while draining
    one mitigation's feedback cascade with the demand activation's
    ``enumerate`` index, making two cascade violations indistinguishable
    and indices non-monotonic in true activation order.
    """

    def _cascade_report(self, **harness_kwargs):
        # Prime rows 9 and 11 to exactly TH counts, then hit row 10
        # three times; the stub mitigates on the 3rd hit, and the
        # feedback activations of victims 8, 9, 11, 12 push rows 9 and
        # 11 over the threshold *inside the cascade*.
        sequence = [9] * TH + [11] * TH + [10, 10, 10]
        harness = SecurityHarness(
            _MitigateTargetEvery(target=10, every=3),
            GEOMETRY,
            TH,
            **harness_kwargs,
        )
        return harness.run(sequence)

    def test_cascade_violations_have_distinct_increasing_indices(self):
        report = self._cascade_report()
        assert [v.row for v in report.violations] == [9, 11]
        indices = [v.activation_index for v in report.violations]
        assert len(set(indices)) == len(indices)
        assert indices == sorted(indices)
        # Both violations happened during feedback, i.e. *after* the
        # last demand activation (2*TH + 3 demand activations, 0-based
        # indices 0..2*TH+2). The buggy code stamped both with the
        # demand index 2*TH + 2.
        demand_activations = 2 * TH + 3
        assert all(i >= demand_activations for i in indices)

    def test_index_matches_global_activation_order(self):
        report = self._cascade_report()
        # Feedback victims execute in neighbor order 8, 9, 11, 12 right
        # after the 103 demand activations: global indices 103..106.
        demand = 2 * TH + 3
        assert [v.activation_index for v in report.violations] == [
            demand + 1,  # row 9 (second feedback activation, after row 8)
            demand + 2,  # row 11
        ]
        assert report.activations == demand + 4

    def test_disabling_feedback_suppresses_cascade_violations(self):
        report = self._cascade_report(feed_mitigation_activations=False)
        assert report.secure
        assert report.victim_refreshes == 4
        assert report.activations == 2 * TH + 3


class TestVerifyTrackerKnobs:
    """Regression: ``verify_tracker`` plumbs every harness knob."""

    def _sequence(self):
        return [9] * TH + [11] * TH + [10, 10, 10]

    def test_feed_mitigation_activations_plumbed(self):
        tracker = _MitigateTargetEvery(target=10, every=3)
        report = verify_tracker(
            tracker,
            GEOMETRY,
            self._sequence(),
            TH,
            feed_mitigation_activations=False,
        )
        assert report.secure
        assert report.activations == 2 * TH + 3

    def test_max_feedback_depth_plumbed(self):
        # Depth 0 means feedback victims are never enqueued, which is
        # observationally equivalent to disabling feedback entirely.
        tracker = _MitigateTargetEvery(target=10, every=3)
        report = verify_tracker(
            tracker, GEOMETRY, self._sequence(), TH, max_feedback_depth=0
        )
        assert report.secure
        assert report.activations == 2 * TH + 3

    def test_max_violations_plumbed(self):
        from repro.interfaces import NullTracker

        report = verify_tracker(
            NullTracker(),
            GEOMETRY,
            attacks.single_sided(5, 10_000),
            TH,
            max_violations=2,
        )
        assert len(report.violations) == 2

    def test_defaults_keep_feedback_enabled(self):
        tracker = _MitigateTargetEvery(target=10, every=3)
        report = verify_tracker(tracker, GEOMETRY, self._sequence(), TH)
        assert not report.secure
        assert [v.row for v in report.violations] == [9, 11]


class TestRandomizedProperty:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=2000,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_hydra_secure_on_random_sequences(self, rows):
        """Property form of Theorem-1: no sequence over a hot region
        can exceed T_H unmitigated."""
        tracker = make_hydra()
        report = verify_tracker(tracker, GEOMETRY, rows, TH)
        assert report.secure
