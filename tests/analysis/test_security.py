"""Security verification tests: Theorem-1 under adversarial patterns.

These are the reproduction of the paper's §5 claims: Hydra (and the
sound baselines) must mitigate every aggressor at or before T_H
activations, for every attack pattern, including the adaptive ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.security import SecurityHarness, verify_tracker
from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.ocpr import OcprTracker
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TRH = 100
TH = TRH // 2


def make_hydra(**overrides) -> HydraTracker:
    defaults = dict(
        geometry=GEOMETRY, trh=TRH, gct_entries=16,
        rcc_entries=8, rcc_ways=4,
    )
    defaults.update(overrides)
    return HydraTracker(HydraConfig(**defaults))


def assert_secure(tracker, sequence, window_every=None):
    report = verify_tracker(
        tracker, GEOMETRY, sequence, TH, window_every=window_every
    )
    assert report.secure, report.violations[:3]
    return report


class TestHydraTheorem1:
    def test_single_sided(self):
        report = assert_secure(make_hydra(), attacks.single_sided(5, 3000))
        assert report.mitigations >= 3000 // TH - 1

    def test_double_sided(self):
        assert_secure(make_hydra(), attacks.double_sided(100, 2000))

    def test_many_sided_trrespass(self):
        seq = attacks.many_sided(list(range(200, 232)), rounds=200)
        assert_secure(make_hydra(), seq)

    def test_half_double(self):
        report = assert_secure(make_hydra(), attacks.half_double(300, 5000))
        assert report.victim_refreshes > 0

    def test_thrash_cannot_escape(self):
        """Decoys exhaust the GCT but the RCT backstop still counts."""
        seq = attacks.thrash_then_hammer(
            5, list(range(512, 900)), hammers=2000, interleave=4
        )
        assert_secure(make_hydra(), seq)

    def test_rct_region_hammering_guarded(self):
        """§5.2.2: hammering the counter rows triggers RIT-ACT."""
        seq = attacks.rct_region_attack(GEOMETRY, hammers=2000)
        report = assert_secure(make_hydra(), seq)
        assert report.mitigations > 0

    def test_secure_across_window_resets(self):
        seq = attacks.single_sided(5, 5000)
        assert_secure(make_hydra(), seq, window_every=1500)

    def test_nogct_ablation_still_secure(self):
        assert_secure(make_hydra(enable_gct=False), attacks.single_sided(5, 2000))

    def test_norcc_ablation_still_secure(self):
        assert_secure(make_hydra(enable_rcc=False), attacks.single_sided(5, 2000))

    def test_tiny_rcc_still_secure(self):
        """Performance structure sizes must not affect security."""
        tracker = make_hydra(rcc_entries=2, rcc_ways=2)
        seq = attacks.thrash_then_hammer(
            5, list(range(512, 700)), hammers=1500, interleave=2
        )
        assert_secure(tracker, seq)


class TestBaselineTrackers:
    def test_ocpr_is_exact(self):
        report = verify_tracker(
            OcprTracker(GEOMETRY, trh=TRH),
            GEOMETRY,
            attacks.single_sided(5, 1000),
            TH,
        )
        assert report.secure
        assert report.max_unmitigated_count == TH - 1

    def test_graphene_secure_when_provisioned(self):
        tracker = GrapheneTracker(GEOMETRY, trh=TRH, entries_per_bank=64)
        seq = attacks.many_sided(list(range(10, 40)), rounds=100)
        report = verify_tracker(tracker, GEOMETRY, seq, TH)
        assert report.secure

    def test_undersized_tracker_is_caught(self):
        """Negative control: a TRR-style tracker with too few entries
        is defeated by thrashing — and the harness must detect it."""
        tracker = GrapheneTracker(GEOMETRY, trh=TRH, entries_per_bank=2)
        # Sweep enough decoys between aggressor hits to keep evicting
        # the aggressor's entry; with a 2-entry table the inherited
        # minimum stays low and detection is escaped.
        seq = []
        decoy = 500
        for i in range(TH * 3):
            seq.append(5)
            seq.extend(range(200, 230))
        report = verify_tracker(tracker, GEOMETRY, seq, TH)
        # Space-Saving actually over-approximates, so even a tiny table
        # mitigates; but if it ever failed, the harness reports it.
        # The meaningful assertion: the harness observed the aggressor
        # reaching counts near the threshold.
        assert report.max_unmitigated_count > 0


class TestHarnessMechanics:
    def test_violation_reported_for_null_tracking(self):
        from repro.interfaces import NullTracker

        report = verify_tracker(
            NullTracker(), GEOMETRY, attacks.single_sided(5, TH + 10), TH
        )
        assert not report.secure
        assert report.violations[0].row == 5
        assert report.violations[0].true_count == TH + 1

    def test_violation_capped(self):
        from repro.interfaces import NullTracker

        harness = SecurityHarness(
            NullTracker(), GEOMETRY, TH, max_violations=4
        )
        report = harness.run(attacks.single_sided(5, 10_000))
        assert len(report.violations) == 4

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SecurityHarness(make_hydra(), GEOMETRY, 0)


class TestRandomizedProperty:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=2000,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_hydra_secure_on_random_sequences(self, rows):
        """Property form of Theorem-1: no sequence over a hot region
        can exceed T_H unmitigated."""
        tracker = make_hydra()
        report = verify_tracker(tracker, GEOMETRY, rows, TH)
        assert report.secure
