"""Tests for the markdown reproduction-report generator."""

import json

import pytest

from repro.analysis.report import load_results, render_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig5_performance.json").write_text(
        json.dumps(
            {
                "all36_slowdown_percent": {
                    "graphene": 0.09,
                    "cra": 16.6,
                    "hydra": 0.73,
                }
            }
        )
    )
    (tmp_path / "fig6_distribution.json").write_text(
        json.dumps(
            {"averages": {"gct_only": 0.91, "rcc_hit": 0.082, "rct_access": 0.008}}
        )
    )
    (tmp_path / "sec5_security.json").write_text(
        json.dumps(
            {
                "half-double": {
                    "secure": True,
                    "activations": 100,
                    "mitigations": 5,
                    "max_unmitigated": 249,
                }
            }
        )
    )
    (tmp_path / "table4_hydra_storage.json").write_text(
        json.dumps({"total_kib": 56.5})
    )
    return tmp_path


class TestLoadResults:
    def test_loads_all_json(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {
            "fig5_performance",
            "fig6_distribution",
            "sec5_security",
            "table4_hydra_storage",
        }

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_results(tmp_path / "nope") == {}

    def test_corrupt_json_skipped(self, results_dir):
        (results_dir / "broken.json").write_text("{nope")
        results = load_results(results_dir)
        assert "broken" not in results


class TestRenderReport:
    def test_contains_paper_vs_measured_rows(self, results_dir):
        text = render_report(load_results(results_dir))
        assert "hydra avg slowdown" in text
        assert "0.73%" in text
        assert "0.7%" in text  # the paper reference
        assert "56.5 KB" in text

    def test_security_section(self, results_dir):
        text = render_report(load_results(results_dir))
        assert "half-double" in text
        assert "yes" in text

    def test_flags_missing_experiments(self, results_dir):
        text = render_report(load_results(results_dir))
        assert "fig7_trh_sensitivity" in text  # listed as missing

    def test_empty_results_still_renders(self):
        text = render_report({})
        assert text.startswith("# Reproduction report")


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        out = tmp_path / "report.md"
        text = write_report(results_dir, out)
        assert out.read_text() == text
