"""Tests for the T_RH trend data and projection (Figure 1a)."""

import pytest

from repro.analysis.trends import (
    OBSERVATIONS,
    decay_rate_per_year,
    projected_trh,
    trend_rows,
    years_until_threshold,
)


class TestObservations:
    def test_anchor_points(self):
        by_year = {obs.year: obs for obs in OBSERVATIONS}
        assert by_year[2014].trh == 139_000  # DDR3, Kim et al.
        assert by_year[2020].trh == 4_800  # LPDDR4

    def test_monotonically_decreasing(self):
        values = [obs.trh for obs in OBSERVATIONS]
        assert values == sorted(values, reverse=True)


class TestProjection:
    def test_decay_rate_negative(self):
        assert decay_rate_per_year() < 0

    def test_trend_spans_order_of_magnitude_drop(self):
        """§2.2: more than 10x reduction over the observed period."""
        assert OBSERVATIONS[0].trh / OBSERVATIONS[-1].trh > 10

    def test_projection_continues_downward(self):
        assert projected_trh(2024) < OBSERVATIONS[-1].trh

    def test_ultra_low_regime_within_reach(self):
        """The paper's motivating claim: T_RH=500 is a near-future
        threshold, not a distant hypothetical."""
        assert years_until_threshold(500) < 10

    def test_years_until_current_threshold_is_zero(self):
        assert years_until_threshold(10_000) == 0.0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            years_until_threshold(0)


class TestRows:
    def test_rows_include_projection(self):
        rows = trend_rows()
        assert len(rows) == len(OBSERVATIONS) + 1
        assert "projected" in rows[-1]["technology"]
