"""Tests for the benchmark harness helpers (benchmarks/_common.py).

The benchmark files are collected separately (pytest-benchmark runs),
but their shared helpers carry logic worth pinning from the tier-1
suite — notably ``all_slowdown``'s behavior on reduced workload lists.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from _common import all_slowdown  # noqa: E402
from bench_engine_throughput import (  # noqa: E402
    DEFAULT_CELLS,
    cells_for_engines,
)

from repro.sim.results import Comparison  # noqa: E402
from repro.workloads.characteristics import all_names  # noqa: E402


def comp(name: str, slowdown_fraction: float) -> Comparison:
    return Comparison(
        workload=name,
        tracker="t",
        baseline_ns=100.0,
        tracked_ns=100.0 * (1.0 + slowdown_fraction),
    )


class TestAllSlowdown:
    def test_full_grid_uses_all36_geomean(self):
        comparisons = [comp(name, 0.25) for name in all_names()]
        assert all_slowdown(comparisons) == pytest.approx(25.0)

    def test_reduced_workload_list_does_not_keyerror(self):
        """Regression: a subset outside the paper's Table-3 suites
        used to die with a bare ``KeyError: 'ALL(36)'``."""
        comparisons = [comp("GUPS", 0.10), comp("mix-custom", 0.10)]
        assert all_slowdown(comparisons) == pytest.approx(10.0)

    def test_subset_geomean_matches_hand_computation(self):
        comparisons = [comp("custom-a", 0.0), comp("custom-b", 0.21)]
        # geomean of 1.0 and 1/1.21 normalized perfs = 1/1.1.
        assert all_slowdown(comparisons) == pytest.approx(10.0)

    def test_empty_input_raises_clearly(self):
        with pytest.raises(ValueError, match="at least one comparison"):
            all_slowdown([])


class TestEngineCellSelection:
    def test_default_cells_cover_all_three_engines(self):
        assert {engine for _, engine in DEFAULT_CELLS} == {
            "fast", "queued", "vector",
        }

    def test_engines_filter_keeps_order(self):
        cells = cells_for_engines(["vector"])
        assert cells == (("baseline", "vector"), ("hydra", "vector"))
        both = cells_for_engines(["fast", "vector"])
        assert both == tuple(
            c for c in DEFAULT_CELLS if c[1] in ("fast", "vector")
        )

    def test_unknown_engine_filter_exits(self):
        with pytest.raises(SystemExit, match="no benchmark cells"):
            cells_for_engines(["warp"])
