"""Tests for the hydra-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quake3"])

    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["sweep", "--jobs", "4"])
        assert args.jobs == 4

    def test_negative_jobs_rejected_cleanly(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--jobs", "-1"])

    def test_jobs_defaults_to_env_resolution(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs is None  # defer to REPRO_JOBS, then serial


class TestStorageCommand:
    def test_prints_tables(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "56.5 KB" in out
        assert "Graphene" in out


class TestSecurityCommand:
    def test_all_patterns_secure(self, capsys):
        assert main(["security", "--scale-denominator", "256"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATED" not in out
        assert "rct-region" in out


class TestExperimentCommand:
    def test_list_names(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_analytic_experiment_runs(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "56.5" in capsys.readouterr().out


class TestReportCommand:
    def test_renders_from_empty_results(self, tmp_path, capsys):
        assert (
            main(["report", "--results-dir", str(tmp_path / "none")]) == 0
        )
        assert "Reproduction report" in capsys.readouterr().out

    def test_writes_output_file(self, tmp_path):
        out = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--results-dir",
                    str(tmp_path),
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()


class TestRunCommand:
    def test_run_small_workload(self, capsys):
        code = main(
            ["run", "leela", "--tracker", "hydra",
             "--scale-denominator", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "mitigations" in out


class TestAttackCommands:
    def test_list_attacks_prints_registry(self, capsys):
        assert main(["list-attacks"]) == 0
        out = capsys.readouterr().out
        assert "single_sided" in out
        assert "many_sided" in out
        assert "aggs" in out

    def test_run_with_attack_spec(self, capsys):
        code = main(
            ["run", "leela", "--tracker", "hydra",
             "--scale-denominator", "256",
             "--attack", "single_sided@hammers=500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "single_sided" in out
        assert "execution time" in out

    def test_run_rejects_unknown_attack_spec(self):
        with pytest.raises(ValueError, match="unknown attack"):
            main(
                ["run", "leela", "--tracker", "hydra",
                 "--scale-denominator", "256",
                 "--attack", "nonsense"]
            )

    def test_arena_attack_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["arena", "--attack", "single",
             "--attack", "many_sided@aggs=4,rounds=600"]
        )
        assert args.attack == ["single", "many_sided@aggs=4,rounds=600"]

    def test_fuzz_smoke(self, tmp_path, capsys):
        code = main(
            ["fuzz", "--trackers", "graphene", "--programs", "2",
             "--corpus-seed", "9", "--scale-denominator", "256",
             "--jobs", "0",
             "--json-out", str(tmp_path / "fuzz.json"),
             "--manifest", str(tmp_path / "fuzz.jsonl")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "graphene" in out
        assert (tmp_path / "fuzz.json").exists()
        assert (tmp_path / "fuzz.jsonl").exists()
