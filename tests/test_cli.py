"""Tests for the hydra-sim command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quake3"])

    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["sweep", "--jobs", "4"])
        assert args.jobs == 4

    def test_negative_jobs_rejected_cleanly(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--jobs", "-1"])

    def test_jobs_defaults_to_env_resolution(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs is None  # defer to REPRO_JOBS, then serial


class TestStorageCommand:
    def test_prints_tables(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "56.5 KB" in out
        assert "Graphene" in out


class TestSecurityCommand:
    def test_all_patterns_secure(self, capsys):
        assert main(["security", "--scale-denominator", "256"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATED" not in out
        assert "rct-region" in out


class TestExperimentCommand:
    def test_list_names(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_analytic_experiment_runs(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "56.5" in capsys.readouterr().out


class TestReportCommand:
    def test_renders_from_empty_results(self, tmp_path, capsys):
        assert (
            main(["report", "--results-dir", str(tmp_path / "none")]) == 0
        )
        assert "Reproduction report" in capsys.readouterr().out

    def test_writes_output_file(self, tmp_path):
        out = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--results-dir",
                    str(tmp_path),
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()


class TestRunCommand:
    def test_run_small_workload(self, capsys):
        code = main(
            ["run", "leela", "--tracker", "hydra",
             "--scale-denominator", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "mitigations" in out

    def test_workload_defaults_to_gups(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "GUPS"

    def test_run_streamed_matches_materialized(self, capsys):
        """--stream-chunk changes memory behaviour, not results."""
        base_args = ["run", "leela", "--scale-denominator", "256"]
        assert main(base_args) == 0
        materialized = capsys.readouterr().out
        assert main(base_args + ["--stream-chunk", "700"]) == 0
        streamed = capsys.readouterr().out
        assert streamed == materialized

    def test_run_replays_trace_file(self, tmp_path, capsys):
        trc = tmp_path / "small.trc"
        assert main(
            ["trace", "record", "leela", str(trc),
             "--scale-denominator", "256"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["run", "--trace-file", str(trc),
             "--scale-denominator", "256", "--stream-chunk", "700"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload          : small" in out
        assert "execution time" in out


class TestProfileCommand:
    def test_engine_flag_parses_all_engines(self):
        for engine in ("fast", "queued", "vector"):
            args = build_parser().parse_args(
                ["profile", "leela", "--engine", engine]
            )
            assert args.engine == engine

    def test_profile_vector_engine_passthrough(self, capsys):
        code = main(
            ["profile", "leela", "--tracker", "hydra",
             "--scale-denominator", "256", "--engine", "vector",
             "--limit", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The profiled cell ran on the requested engine...
        assert "hydra/vector" in out
        # ...and the report shows the vector hot path, not the
        # scalar per-request pipeline.
        assert "tottime" in out


class TestTraceCommand:
    def _record(self, destination, capsys):
        assert main(
            ["trace", "record", "leela", str(destination),
             "--scale-denominator", "256", "--chunk", "500"]
        ) == 0
        return capsys.readouterr().out

    def test_record_and_inspect_text(self, tmp_path, capsys):
        trc = tmp_path / "leela.trc"
        out = self._record(trc, capsys)
        assert "external text" in out
        assert trc.exists()
        assert main(["trace", "inspect", str(trc)]) == 0
        out = capsys.readouterr().out
        assert "trace             : leela" in out
        assert "activations" in out
        assert "unique rows" in out

    def test_convert_roundtrip_all_formats(self, tmp_path, capsys):
        """text -> chunked -> npz -> text preserves the trace exactly."""
        import numpy as np

        from repro.workloads.streaming import read_external_trace

        trc = tmp_path / "leela.trc"
        self._record(trc, capsys)
        chunked = tmp_path / "chunked"
        assert main(
            ["trace", "convert", str(trc), str(chunked), "--chunk", "500"]
        ) == 0
        npz = tmp_path / "leela.npz"
        assert main(["trace", "convert", str(chunked), str(npz)]) == 0
        back = tmp_path / "back.trc"
        assert main(["trace", "convert", str(npz), str(back)]) == 0
        capsys.readouterr()
        original = read_external_trace(trc)
        roundtripped = read_external_trace(back)
        np.testing.assert_array_equal(roundtripped.gaps_ns, original.gaps_ns)
        np.testing.assert_array_equal(roundtripped.rows, original.rows)
        np.testing.assert_array_equal(roundtripped.lines, original.lines)
        np.testing.assert_array_equal(roundtripped.writes, original.writes)

    def test_head_slices_without_loading(self, tmp_path, capsys):
        trc = tmp_path / "leela.trc"
        self._record(trc, capsys)
        assert main(
            ["trace", "head", str(trc), "-n", "4", "--start", "2"]
        ) == 0
        out = capsys.readouterr().out
        payload = [
            line for line in out.splitlines() if not line.startswith("#")
        ]
        assert len(payload) == 4
        for line in payload:
            fields = line.split()
            assert len(fields) == 4
            assert fields[1] in ("R", "W")

    def test_inspect_chunked_matches_text(self, tmp_path, capsys):
        trc = tmp_path / "leela.trc"
        self._record(trc, capsys)
        chunked = tmp_path / "chunked"
        main(["trace", "convert", str(trc), str(chunked), "--chunk", "500"])
        capsys.readouterr()
        main(["trace", "inspect", str(trc)])
        text_stats = capsys.readouterr().out.splitlines()[1:]
        main(["trace", "inspect", str(chunked)])
        chunked_stats = capsys.readouterr().out.splitlines()[1:]
        assert chunked_stats == text_stats


class TestAttackCommands:
    def test_list_attacks_prints_registry(self, capsys):
        assert main(["list-attacks"]) == 0
        out = capsys.readouterr().out
        assert "single_sided" in out
        assert "many_sided" in out
        assert "aggs" in out

    def test_run_with_attack_spec(self, capsys):
        code = main(
            ["run", "leela", "--tracker", "hydra",
             "--scale-denominator", "256",
             "--attack", "single_sided@hammers=500"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "single_sided" in out
        assert "execution time" in out

    def test_run_rejects_unknown_attack_spec(self):
        with pytest.raises(ValueError, match="unknown attack"):
            main(
                ["run", "leela", "--tracker", "hydra",
                 "--scale-denominator", "256",
                 "--attack", "nonsense"]
            )

    def test_arena_attack_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["arena", "--attack", "single",
             "--attack", "many_sided@aggs=4,rounds=600"]
        )
        assert args.attack == ["single", "many_sided@aggs=4,rounds=600"]

    def test_fuzz_smoke(self, tmp_path, capsys):
        code = main(
            ["fuzz", "--trackers", "graphene", "--programs", "2",
             "--corpus-seed", "9", "--scale-denominator", "256",
             "--jobs", "0",
             "--json-out", str(tmp_path / "fuzz.json"),
             "--manifest", str(tmp_path / "fuzz.jsonl")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "graphene" in out
        assert (tmp_path / "fuzz.json").exists()
        assert (tmp_path / "fuzz.jsonl").exists()
