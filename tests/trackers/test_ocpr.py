"""Tests for OCPR, the exact per-row tracker / storage upper bound."""

import pytest

from repro.dram.timing import DramGeometry
from repro.trackers.ocpr import OcprTracker
from repro.trackers.storage import RANK_GEOMETRY, ocpr_bytes_per_rank

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestTracking:
    def test_exact_mitigation_point(self):
        tracker = OcprTracker(GEOMETRY, trh=100)
        for i in range(1, 50):
            assert tracker.on_activation(3) is None, i
        response = tracker.on_activation(3)
        assert response.mitigate_rows == (3,)

    def test_no_cross_row_interference(self):
        tracker = OcprTracker(GEOMETRY, trh=100)
        for _ in range(49):
            tracker.on_activation(3)
        assert tracker.on_activation(4) is None
        assert tracker.count_of(3) == 49

    def test_reset_after_mitigation(self):
        tracker = OcprTracker(GEOMETRY, trh=100)
        for _ in range(50):
            tracker.on_activation(3)
        assert tracker.count_of(3) == 0

    def test_window_reset(self):
        tracker = OcprTracker(GEOMETRY, trh=100)
        for _ in range(30):
            tracker.on_activation(3)
        tracker.on_window_reset()
        assert tracker.count_of(3) == 0

    def test_no_metadata_traffic_ever(self):
        tracker = OcprTracker(GEOMETRY, trh=100)
        for i in range(200):
            response = tracker.on_activation(i % 7)
            assert response is None or response.meta_accesses == ()


class TestStorage:
    @pytest.mark.parametrize(
        "trh,expected_mib",
        [(250, 2.0), (500, 2.25), (1000, 2.5), (32000, 3.75)],
    )
    def test_table1_ocpr_column(self, trh, expected_mib):
        """Table 1: OCPR needs R x log2(T_RH) bits per 16 GB rank."""
        assert ocpr_bytes_per_rank(trh) == pytest.approx(
            expected_mib * 1024 * 1024, rel=0.01
        )

    def test_tracker_storage_matches_model(self):
        tracker = OcprTracker(RANK_GEOMETRY, trh=500)
        assert tracker.sram_bytes() == ocpr_bytes_per_rank(500)
