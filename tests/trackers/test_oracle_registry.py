"""Registry-wide oracle sweep: every tracker meets its security claim.

Drives every tracker in the registry (the same list ``hydra-sim
list-trackers`` prints) through the §5 :class:`SecurityHarness` on
random and single-row-hammer sequences at T_RH in {1000, 500}, and
checks the outcome against the tracker's declared security class:

- ``deterministic`` trackers must report **zero** violations on every
  sequence — that is the claim the class makes;
- ``insecure`` negative controls must be caught violating somewhere
  in the battery (an oracle that can't catch ProTRR-interval or
  MRLoc-queue breakage isn't testing anything);
- ``probabilistic`` and ``rate-control`` trackers are exempt from the
  zero-violation bar (sampling designs may lose at low thresholds;
  delay-based designs aren't modeled by an activation-count oracle)
  but must still run cleanly and produce a well-formed report.

A new tracker registration gets all of this for free — which is the
point: the arena's verdict table rests on these semantics.
"""

import random

import pytest

from repro.analysis.security import verify_tracker
from repro.sim.config import SystemConfig
from repro.trackers.registry import (
    available_trackers,
    build_tracker,
    tracker_info,
)
from repro.workloads import attacks

TRH_RUNGS = (1000, 500)
CONFIG = SystemConfig(scale=1 / 128, n_windows=1)


def _sequences(trh: int, total_rows: int):
    threshold = trh // 2
    rng = random.Random(0xC0FFEE + trh)
    span = min(2048, total_rows)
    return {
        "single": attacks.single_sided(5, int(2.5 * threshold) + 8),
        "random": [rng.randrange(span) for _ in range(4 * threshold)],
    }


def _battery(name: str):
    """All (sequence, report) outcomes for one tracker across rungs."""
    outcomes = {}
    for trh in TRH_RUNGS:
        cfg = CONFIG.with_trh(trh)
        act_max = cfg.timing.max_activations_per_window()
        for seq_name, sequence in _sequences(trh, cfg.geometry.total_rows).items():
            tracker = build_tracker(name, cfg.tracker_context())
            outcomes[(trh, seq_name)] = verify_tracker(
                tracker,
                cfg.geometry,
                sequence,
                threshold=trh // 2,
                window_every=act_max,
                max_feedback_depth=2,
            )
    return outcomes


@pytest.mark.parametrize("name", available_trackers())
def test_tracker_meets_its_security_claim(name):
    info = tracker_info(name)
    outcomes = _battery(name)
    assert set(outcomes) == {
        (trh, seq) for trh in TRH_RUNGS for seq in ("single", "random")
    }
    total_violations = sum(len(r.violations) for r in outcomes.values())
    if info.security_class == "deterministic":
        for (trh, seq), report in outcomes.items():
            assert report.secure, (
                f"{name} (claims deterministic) violated on {seq} at"
                f" T_RH={trh}: {report.violations[:3]}"
            )
    elif info.security_class == "insecure":
        assert total_violations > 0, (
            f"{name} is registered as an insecure negative control but"
            " the oracle battery caught nothing — the battery lost its"
            " teeth or the tracker is misclassified"
        )
    else:
        # probabilistic / rate-control: no zero-violation bar, but the
        # harness must have actually exercised the tracker.
        for report in outcomes.values():
            assert report.activations > 0
            assert report.max_unmitigated_count >= 0


@pytest.mark.parametrize("name", available_trackers())
def test_single_sided_always_pressures_the_oracle(name):
    """Sanity on the battery itself: the single-row hammer must push
    some row's unmitigated count near the threshold for every tracker
    that doesn't mitigate early (and the report must say so)."""
    trh = 1000
    cfg = CONFIG.with_trh(trh)
    tracker = build_tracker(name, cfg.tracker_context())
    report = verify_tracker(
        tracker,
        cfg.geometry,
        attacks.single_sided(5, int(2.5 * (trh // 2)) + 8),
        threshold=trh // 2,
        window_every=cfg.timing.max_activations_per_window(),
        max_feedback_depth=2,
    )
    assert report.activations >= trh // 2
    assert report.max_unmitigated_count > 0
