"""Tests for the MINT (single-entry in-DRAM sampler) tracker."""

import pytest

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.mint import MintTracker, mint_interval_slots

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestIntervalArithmetic:
    def test_ddr4_slots_per_trefi(self):
        """tREFI / tRC = 7800 / 45 -> 173 activation slots."""
        assert mint_interval_slots(DramTiming()) == 173

    def test_never_zero(self):
        timing = DramTiming()
        assert mint_interval_slots(timing) >= 1


class TestTrackerBehaviour:
    def make(self, interval_slots=8, seed=1) -> MintTracker:
        return MintTracker(
            GEOMETRY, interval_slots=interval_slots, seed=seed
        )

    def test_one_mitigation_per_busy_interval(self):
        tracker = self.make(interval_slots=8)
        mitigated = []
        for i in range(80):
            response = tracker.on_activation(5)
            if response:
                mitigated.extend(response.mitigate_rows)
        assert tracker.intervals == 10
        # Single-row hammering: every selected slot holds row 5.
        assert mitigated == [5] * 10

    def test_selected_row_follows_slot(self):
        """With two rows alternating, the mitigated row is whichever
        occupied the randomly selected slot — always one of the two."""
        tracker = self.make(interval_slots=8)
        mitigated = []
        for i in range(800):
            response = tracker.on_activation(5 if i % 2 == 0 else 9)
            if response:
                mitigated.extend(response.mitigate_rows)
        assert mitigated
        assert set(mitigated) <= {5, 9}

    def test_banks_sample_independently(self):
        tracker = self.make(interval_slots=8)
        other = GEOMETRY.rows_per_bank + 7
        for _ in range(8):
            tracker.on_activation(5)
        assert tracker.intervals == 1
        # The other bank's interval is still mid-flight.
        for _ in range(7):
            assert tracker.on_activation(other) is None
        response = tracker.on_activation(other)
        assert response is not None and response.mitigate_rows == (other,)

    def test_deterministic_under_seed(self):
        runs = []
        for _ in range(2):
            tracker = self.make(interval_slots=16, seed=42)
            log = []
            for i in range(160):
                response = tracker.on_activation(i % 7)
                log.append(response.mitigate_rows if response else None)
            runs.append(log)
        assert runs[0] == runs[1]

    def test_window_reset_restarts_intervals(self):
        tracker = self.make(interval_slots=8)
        for _ in range(5):
            tracker.on_activation(5)
        tracker.on_window_reset()
        for _ in range(7):
            assert tracker.on_activation(5) is None

    def test_sram_is_a_few_bytes_per_bank(self):
        """The minimalist point: orders below any SRAM tracker."""
        tracker = MintTracker(GEOMETRY)
        assert tracker.sram_bytes() <= 8 * GEOMETRY.total_banks

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            self.make(interval_slots=0)
