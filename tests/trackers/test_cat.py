"""Tests for the Counter-based Adaptive Tree tracker."""

import pytest

from repro.analysis.security import verify_tracker
from repro.dram.timing import DramGeometry
from repro.trackers.cat import CatTracker
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


def make(trh=100, counters=256, split_fraction=0.25) -> CatTracker:
    return CatTracker(
        GEOMETRY,
        trh=trh,
        counters_per_bank=counters,
        split_fraction=split_fraction,
    )


class TestAdaptation:
    def test_starts_with_one_counter_per_bank(self):
        tracker = make()
        assert tracker.counters_in_use() == GEOMETRY.total_banks

    def test_hot_row_earns_single_row_leaf(self):
        tracker = make()
        for _ in range(60):
            tracker.on_activation(5)
        leaf = tracker._trees[0].leaf_for(5)
        assert leaf.span == 1
        assert tracker.splits > 0

    def test_cold_regions_stay_coarse(self):
        tracker = make()
        for _ in range(60):
            tracker.on_activation(5)
        other_bank_leaf = tracker._trees[1].leaf_for(5)
        assert other_bank_leaf.span == GEOMETRY.rows_per_bank

    def test_children_inherit_parent_count(self):
        """Inheritance keeps every node's count an overestimate."""
        tracker = make(split_fraction=0.5)
        for _ in range(49):
            tracker.on_activation(5)
        leaf = tracker._trees[0].leaf_for(5)
        assert leaf.count >= 49 - 1  # counts carried down the splits


class TestMitigation:
    def test_single_row_leaf_mitigates_at_threshold(self):
        tracker = make(trh=100)
        mitigated = False
        for i in range(1, 51):
            response = tracker.on_activation(5)
            if response and 5 in response.mitigate_rows:
                mitigated = True
                assert i <= 50  # at or before T_H
                break
        assert mitigated

    def test_saturated_leaf_mitigates_every_activation(self):
        """With a starved counter pool, CAT degrades securely to
        mitigate-on-every-activation of the saturated range."""
        tracker = make(trh=100, counters=1)  # can never split
        responses = [tracker.on_activation(5) for _ in range(50)]
        assert responses[-1] is not None
        assert responses[-1].mitigate_rows == (5,)
        # Once saturated, every further activation mitigates its row.
        follow_up = tracker.on_activation(7)
        assert follow_up.mitigate_rows == (7,)
        assert tracker.range_mitigations >= 2

    def test_window_reset_restores_coarse_tree(self):
        tracker = make()
        for _ in range(60):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker.counters_in_use() == GEOMETRY.total_banks


class TestSecurity:
    def test_theorem_holds_under_double_sided(self):
        tracker = make(trh=100)
        report = verify_tracker(
            tracker, GEOMETRY, attacks.double_sided(500, 1000), 50
        )
        assert report.secure

    def test_theorem_holds_under_many_sided(self):
        tracker = make(trh=100)
        seq = attacks.many_sided(list(range(64, 96)), rounds=120)
        report = verify_tracker(tracker, GEOMETRY, seq, 50)
        assert report.secure

    def test_theorem_holds_with_tiny_pool(self):
        tracker = make(trh=100, counters=3)
        report = verify_tracker(
            tracker, GEOMETRY, attacks.single_sided(5, 600), 50
        )
        assert report.secure


class TestSizing:
    def test_default_budget_tracks_table1(self):
        from repro.trackers.storage import cat_bytes_per_rank

        tracker = CatTracker(GEOMETRY, trh=500)
        per_rank_default = cat_bytes_per_rank(500) // 4
        assert tracker.sram_bytes() > 0
        assert (
            tracker._trees[0].counter_budget
            >= per_rank_default // GEOMETRY.banks_per_rank // 2
        )

    def test_rejects_bad_split_fraction(self):
        with pytest.raises(ValueError):
            make(split_fraction=0.0)
