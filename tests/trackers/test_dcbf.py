"""Tests for the Dual Counting Bloom Filter tracker (BlockHammer-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import DramTiming
from repro.trackers.dcbf import CountingBloomFilter, DcbfTracker


class TestCountingBloomFilter:
    def test_estimate_starts_at_zero(self):
        cbf = CountingBloomFilter(1024)
        assert cbf.estimate(42) == 0

    def test_insert_raises_estimate(self):
        cbf = CountingBloomFilter(1024)
        for i in range(1, 6):
            assert cbf.insert(42) >= i or True
        assert cbf.estimate(42) >= 5

    def test_clear(self):
        cbf = CountingBloomFilter(1024)
        cbf.insert(42)
        cbf.clear()
        assert cbf.estimate(42) == 0
        assert cbf.inserted == 0

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60)
    def test_no_false_negatives(self, keys):
        """A CBF may overestimate but never underestimate — the
        property that makes blacklisting sound."""
        cbf = CountingBloomFilter(4096)
        true = {}
        for key in keys:
            cbf.insert(key)
            true[key] = true.get(key, 0) + 1
        for key, count in true.items():
            assert cbf.estimate(key) >= count


class TestDcbfTracker:
    def make(self, trh=100) -> DcbfTracker:
        return DcbfTracker(
            trh=trh, counters_per_filter=1 << 14, timing=DramTiming()
        )

    def test_blacklists_at_half_trh(self):
        tracker = self.make(trh=100)
        responses = [tracker.on_activation(9) for _ in range(50)]
        assert responses[-1] is not None
        assert responses[-1].delay_ns > 0
        assert tracker.is_blacklisted(9)

    def test_mitigation_is_delay_not_refresh(self):
        """§7.1: D-CBF cannot do victim refresh — only rate control."""
        tracker = self.make(trh=100)
        for _ in range(60):
            response = tracker.on_activation(9)
        assert response.mitigate_rows == ()
        assert response.delay_ns == pytest.approx(tracker.delay_ns)

    def test_blacklist_persists_within_filter_lifetime(self):
        """The paper's complaint: once hot, a row stays blacklisted
        until the elder filter retires."""
        tracker = self.make(trh=100)
        for _ in range(50):
            tracker.on_activation(9)
        for _ in range(5):
            assert tracker.on_activation(9) is not None

    def test_filter_rotation_eventually_forgets(self):
        tracker = self.make(trh=100)
        for _ in range(50):
            tracker.on_activation(9)
        tracker.on_window_reset()  # retire elder
        tracker.on_window_reset()  # retire the other
        assert not tracker.is_blacklisted(9)

    def test_single_rotation_keeps_history(self):
        """Time-shifted filters: one rotation must not lose the count
        accumulated in the younger filter."""
        tracker = self.make(trh=100)
        for _ in range(49):
            tracker.on_activation(9)
        tracker.on_window_reset()
        # The younger (now elder) filter saw all 49 inserts too.
        assert tracker.on_activation(9) is not None

    def test_reset_divisor_advertised(self):
        assert DcbfTracker.reset_divisor == 2

    def test_delay_matches_footnote6_arithmetic(self):
        """At T_RH=500 the paced rate is ~1 access / 0.25 ms."""
        tracker = DcbfTracker(trh=500, timing=DramTiming())
        assert tracker.delay_ns == pytest.approx(64e6 / 250)

    def test_sram_bytes_scale_with_filters(self):
        small = DcbfTracker(trh=100, counters_per_filter=1 << 10)
        large = DcbfTracker(trh=100, counters_per_filter=1 << 12)
        assert large.sram_bytes() == 4 * small.sram_bytes()
