"""Tests for the Graphene (Misra-Gries / Space-Saving) tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.graphene import (
    GrapheneTracker,
    _SpaceSavingTable,
    graphene_entries_per_bank,
)

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestSpaceSavingTable:
    def test_tracks_within_capacity_exactly(self):
        table = _SpaceSavingTable(capacity=4)
        for _ in range(5):
            table.record(1)
        assert table.counts[1] == 5

    def test_eviction_inherits_min_plus_one(self):
        table = _SpaceSavingTable(capacity=2)
        table.record(1)
        table.record(1)
        table.record(2)
        estimate = table.record(3)  # evicts row 2 (min count 1)
        assert estimate == 2
        assert 2 not in table.counts

    def test_clear(self):
        table = _SpaceSavingTable(capacity=2)
        table.record(1)
        table.clear()
        assert not table.counts
        assert table.record(1) == 1

    def test_reset_row_moves_to_floor(self):
        table = _SpaceSavingTable(capacity=4)
        for _ in range(10):
            table.record(1)
        table.reset_row(1, 0)
        assert table.counts[1] == 0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=500
        )
    )
    @settings(max_examples=80)
    def test_estimate_never_underestimates(self, rows):
        """The Space-Saving guarantee that makes Graphene sound:
        a tabled row's estimate >= its true count."""
        table = _SpaceSavingTable(capacity=4)
        true = {}
        for row in rows:
            estimate = table.record(row)
            true[row] = true.get(row, 0) + 1
            assert estimate >= true[row]

    @given(
        st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=500
        )
    )
    @settings(max_examples=80)
    def test_capacity_respected(self, rows):
        table = _SpaceSavingTable(capacity=4)
        for row in rows:
            table.record(row)
            assert len(table.counts) <= 4

    def test_floor_is_public_and_tracks_minimum(self):
        table = _SpaceSavingTable(capacity=2)
        assert table.floor() == 0  # empty table
        table.record(1)
        table.record(1)
        table.record(2)
        assert table.floor() == 1
        table.record(3)  # evicts row 2, inherits min + 1 = 2
        assert table.floor() == 2
        table.clear()
        assert table.floor() == 0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["record", "reset", "clear"]),
                st.integers(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=80)
    def test_invariants_under_mixed_churn(self, ops):
        """Pin the two Space-Saving invariants under arbitrary
        interleavings of insert, evict, mitigation-reset, and clear:

        1. a *resident* row's tabled estimate >= its true count since
           its last reset/clear (the soundness guarantee); and
        2. ``floor()`` equals the minimum tabled count at all times
           (the bucket-queue bookkeeping Graphene's reset relies on).
        """
        table = _SpaceSavingTable(capacity=3)
        true = {}
        for op, row in ops:
            if op == "record":
                estimate = table.record(row)
                true[row] = true.get(row, 0) + 1
                assert estimate >= true[row]
            elif op == "reset":
                # Mirrors GrapheneTracker's post-mitigation reset: the
                # true count restarts from zero alongside the estimate.
                table.reset_row(row, table.floor())
                if row in table.counts:
                    true[row] = 0
            else:  # clear
                table.clear()
                true.clear()
            # Invariant 2: floor == minimum resident count (0 if empty).
            if table.counts:
                assert table.floor() == min(table.counts.values())
            else:
                assert table.floor() == 0
            # Invariant 1 for every resident row, not just the touched
            # one: churn must never degrade an existing overestimate.
            for resident, estimate in table.counts.items():
                assert estimate >= true.get(resident, 0)


class TestSizing:
    def test_paper_entry_count_at_500(self):
        """§4.1: 5441 entries per bank at T_RH=500 (ACT_max=1.36M)."""
        assert graphene_entries_per_bank(500, 1_360_000) == 5441

    def test_entries_double_as_threshold_halves(self):
        e500 = graphene_entries_per_bank(500, 1_360_000)
        e250 = graphene_entries_per_bank(250, 1_360_000)
        assert e250 == pytest.approx(2 * e500, rel=0.01)

    def test_table1_340kb_per_rank(self):
        from repro.trackers.storage import RANK_GEOMETRY

        tracker = GrapheneTracker(RANK_GEOMETRY, trh=500)
        assert tracker.sram_bytes() == pytest.approx(340 * 1024, rel=0.01)


class TestTrackerBehaviour:
    def make(self, trh=100, entries=64) -> GrapheneTracker:
        return GrapheneTracker(
            GEOMETRY, trh=trh, entries_per_bank=entries
        )

    def test_mitigates_at_half_trh(self):
        tracker = self.make(trh=100)
        responses = [tracker.on_activation(5) for _ in range(50)]
        assert responses[-1].mitigate_rows == (5,)
        assert all(r is None for r in responses[:-1])

    def test_remitigates_under_continued_hammering(self):
        tracker = self.make(trh=100)
        mitigations = 0
        for _ in range(500):
            response = tracker.on_activation(5)
            if response:
                mitigations += 1
        assert mitigations >= 9  # ~every 50 activations

    def test_per_bank_tables_are_independent(self):
        tracker = self.make(trh=100)
        other_bank_row = GEOMETRY.rows_per_bank + 5
        for _ in range(49):
            tracker.on_activation(5)
        assert tracker.on_activation(other_bank_row) is None

    def test_window_reset_forgets(self):
        tracker = self.make(trh=100)
        for _ in range(49):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker.on_activation(5) is None

    def test_thrash_cannot_escape_with_adequate_sizing(self):
        """With the paper's sizing, decoy sweeps cannot evict an
        aggressor faster than it accumulates count."""
        timing = DramTiming().scaled(1 / 64)
        tracker = GrapheneTracker(GEOMETRY, trh=100, timing=timing)
        mitigated = False
        decoys = list(range(100, 400))
        for _ in range(60):
            response = tracker.on_activation(5)
            mitigated = mitigated or bool(response and response.mitigate_rows)
            for decoy in decoys:
                tracker.on_activation(decoy)
        assert mitigated
