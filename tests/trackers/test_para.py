"""Tests for PARA, the stateless probabilistic mitigation (§7.3)."""

import pytest

from repro.trackers.para import ParaTracker, para_probability


class TestProbability:
    def test_formula_inverts_failure_bound(self):
        p = para_probability(trh=500, failure_exponent=40)
        assert (1 - p) ** 500 == pytest.approx(2.0**-40, rel=1e-6)

    def test_probability_grows_as_threshold_falls(self):
        """§7.3: p must increase proportionally as T_RH reduces —
        the reason PARA gets expensive at ultra-low thresholds."""
        assert para_probability(125) > para_probability(500) > para_probability(32000)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            para_probability(0)
        with pytest.raises(ValueError):
            para_probability(500, failure_exponent=0)


class TestTracker:
    def test_deterministic_with_seed(self):
        a = ParaTracker(trh=500, seed=1)
        b = ParaTracker(trh=500, seed=1)
        seq_a = [bool(a.on_activation(7)) for _ in range(1000)]
        seq_b = [bool(b.on_activation(7)) for _ in range(1000)]
        assert seq_a == seq_b

    def test_mitigation_rate_near_p(self):
        tracker = ParaTracker(trh=500, probability=0.05, seed=3)
        n = 20_000
        for _ in range(n):
            tracker.on_activation(1)
        rate = tracker.mitigations / n
        assert rate == pytest.approx(0.05, rel=0.15)

    def test_expected_mitigations_helper(self):
        tracker = ParaTracker(trh=500, probability=0.1)
        assert tracker.expected_mitigations(1000) == pytest.approx(100.0)

    def test_failure_probability_decreases_with_activations(self):
        tracker = ParaTracker(trh=500)
        assert tracker.failure_probability(500) < tracker.failure_probability(100)

    def test_stateless_reset_is_noop(self):
        tracker = ParaTracker(trh=500)
        tracker.on_window_reset()
        assert tracker.sram_bytes() == 0

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            ParaTracker(probability=0.0)
        with pytest.raises(ValueError):
            ParaTracker(probability=1.5)
