"""Tests for the tracker interface types."""

from repro.interfaces import (
    MetaAccess,
    NullTracker,
    TrackerResponse,
    merge_responses,
)


class TestTrackerResponse:
    def test_defaults_are_empty(self):
        response = TrackerResponse()
        assert response.mitigate_rows == ()
        assert response.meta_accesses == ()
        assert response.delay_ns == 0.0

    def test_is_lightweight_tuple(self):
        response = TrackerResponse(mitigate_rows=(1,))
        assert isinstance(response, tuple)


class TestNullTracker:
    def test_always_silent(self):
        tracker = NullTracker()
        assert all(tracker.on_activation(i) is None for i in range(100))
        assert tracker.sram_bytes() == 0
        assert tracker.dram_reserved_bytes() == 0
        assert tracker.mitigation_count() == 0

    def test_reset_is_noop(self):
        NullTracker().on_window_reset()


class TestMergeResponses:
    def test_empty_merge_is_none(self):
        assert merge_responses([TrackerResponse(), TrackerResponse()]) is None

    def test_merge_concatenates(self):
        merged = merge_responses(
            [
                TrackerResponse(mitigate_rows=(1,)),
                TrackerResponse(
                    meta_accesses=(MetaAccess(5, 1, False),),
                ),
            ]
        )
        assert merged.mitigate_rows == (1,)
        assert merged.meta_accesses == (MetaAccess(5, 1, False),)

    def test_merge_accumulates_delay(self):
        merged = merge_responses(
            [
                TrackerResponse(delay_ns=120.0),
                TrackerResponse(mitigate_rows=(7,), delay_ns=30.0),
            ]
        )
        assert merged.delay_ns == 150.0
        assert merged.mitigate_rows == (7,)

    def test_delay_only_merge_survives(self):
        merged = merge_responses([TrackerResponse(delay_ns=45.0)])
        assert merged is not None
        assert merged.delay_ns == 45.0
        assert merged.mitigate_rows == ()
        assert merged.meta_accesses == ()
