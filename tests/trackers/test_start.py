"""Tests for the START (LLC-resident escalating counters) tracker."""

import pytest

from repro.dram.timing import DramGeometry
from repro.trackers.start import (
    ROWS_PER_LINE,
    StartTracker,
    start_lines_per_bank,
)

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestSizing:
    def test_high_threshold_needs_few_lines(self):
        """At T_RH = 139K only a handful of groups can ever get hot."""
        lines = start_lines_per_bank(139_000, 1_360_000, 131_072)
        assert lines <= 64

    def test_low_threshold_caps_at_per_row_footprint(self):
        """At ultra-low thresholds the budget degenerates to plain
        per-row counters resident in the LLC — never more."""
        per_row = -(-131_072 // ROWS_PER_LINE)
        assert start_lines_per_bank(500, 1_360_000, 131_072) == per_row

    def test_monotone_in_threshold(self):
        previous = None
        for trh in (139_000, 20_000, 4800, 1000, 500):
            lines = start_lines_per_bank(trh, 1_360_000, 131_072)
            if previous is not None:
                assert lines >= previous
            previous = lines

    def test_rejects_bad_trh(self):
        with pytest.raises(ValueError):
            start_lines_per_bank(2, 1_360_000, 131_072)


class TestTrackerBehaviour:
    def make(self, trh=100, **kwargs) -> StartTracker:
        return StartTracker(GEOMETRY, trh=trh, **kwargs)

    def test_mitigates_at_half_trh(self):
        tracker = self.make(trh=100)
        responses = [tracker.on_activation(5) for _ in range(50)]
        assert responses[-1].mitigate_rows == (5,)
        assert all(r is None for r in responses[:-1])

    def test_escalation_before_mitigation(self):
        """The group promotes to per-row counters at T_RH/4."""
        tracker = self.make(trh=100)
        for _ in range(25):
            tracker.on_activation(5)
        assert tracker.escalations == 1
        assert tracker.peak_lines == 1

    def test_inherited_counters_stay_conservative(self):
        """After escalation driven by row A, sibling row B's counter
        inherited A's aggregate — B mitigates early, never late."""
        tracker = self.make(trh=100)
        for _ in range(30):
            tracker.on_activation(5)  # escalates group at act 25
        sibling = 6  # same 32-row group as row 5
        acts_to_mitigate = 0
        for _ in range(50):
            acts_to_mitigate += 1
            if tracker.on_activation(sibling):
                break
        # The counter inherited the aggregate at escalation time (25;
        # row 5's later acts go to its own per-row counter), so the
        # sibling mitigates after 50 - 25 = 25 acts, not the full 50.
        assert acts_to_mitigate == 25

    def test_exhausted_budget_falls_back_to_group_mitigation(self):
        tracker = self.make(trh=100, lines_per_bank=1)
        for _ in range(30):
            tracker.on_activation(5)  # consumes the only line
        # A second group in the same bank cannot escalate; it clamps
        # with a group-wide refresh at the mitigation threshold.
        response = None
        for _ in range(50):
            response = tracker.on_activation(200) or response
        assert tracker.group_mitigations == 1
        assert response is not None
        assert len(response.mitigate_rows) == ROWS_PER_LINE
        assert 200 in response.mitigate_rows

    def test_per_bank_state_is_independent(self):
        tracker = self.make(trh=100)
        other_bank_row = GEOMETRY.rows_per_bank + 5
        for _ in range(49):
            tracker.on_activation(5)
        assert tracker.on_activation(other_bank_row) is None

    def test_window_reset_forgets(self):
        tracker = self.make(trh=100)
        for _ in range(49):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker.on_activation(5) is None
        assert tracker.extra_stats()["peak_lines"] == 1

    def test_sram_is_directory_only(self):
        """START's pitch: no dedicated CAM — one presence bit per
        group; the counters live in reserved LLC lines."""
        tracker = self.make(trh=100)
        groups = -(-GEOMETRY.rows_per_bank // ROWS_PER_LINE)
        assert tracker.sram_bytes() == (
            groups * GEOMETRY.total_banks + 7
        ) // 8
        assert tracker.llc_reserved_bytes() > tracker.sram_bytes()

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            self.make(lines_per_bank=0)
