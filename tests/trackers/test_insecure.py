"""MRLOC / ProHIT: average-case protection, worst-case insecurity.

Reproduces the paper's §7.3 claim that these probabilistic designs
"are not secure": the Theorem-1 oracle finds concrete sequences that
exceed the threshold unmitigated — which never happens to the
guaranteed trackers under the same harness.
"""

import pytest

from repro.analysis.security import verify_tracker
from repro.dram.timing import DramGeometry
from repro.trackers.insecure import MrlocTracker, ProhitTracker
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TH = 50


class TestMrlocAverageCase:
    def test_sustained_hammering_usually_mitigated(self):
        """Statistically, a long hammer train draws many mitigations."""
        tracker = MrlocTracker(base_probability=0.01, seed=1)
        for _ in range(20_000):
            tracker.on_activation(5)
        assert tracker.mitigations > 100

    def test_locality_boost_raises_probability(self):
        tracker = MrlocTracker(base_probability=0.01, locality_boost=8.0)
        assert tracker.probability_for(5) == pytest.approx(0.01)
        tracker._queue.append(5)
        assert tracker.probability_for(5) == pytest.approx(0.08)

    def test_window_reset_clears_queue(self):
        tracker = MrlocTracker()
        tracker._queue.append(5)
        tracker.on_window_reset()
        assert tracker.probability_for(5) == tracker.base_probability

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MrlocTracker(queue_entries=0)
        with pytest.raises(ValueError):
            MrlocTracker(base_probability=0.0)
        with pytest.raises(ValueError):
            MrlocTracker(locality_boost=0.5)


class TestMrlocInsecurity:
    def test_oracle_finds_unmitigated_overflow(self):
        """§7.3: not secure. With realistic per-activation
        probabilities, some seed lets an aggressor exceed the
        threshold unmitigated — and the harness proves it."""
        violated = False
        for seed in range(40):
            tracker = MrlocTracker(base_probability=0.002, seed=seed)
            report = verify_tracker(
                tracker, GEOMETRY, attacks.single_sided(5, TH + 25), TH
            )
            if not report.secure:
                violated = True
                assert report.violations[0].row == 5
                break
        assert violated, "expected at least one seed to slip through"


class TestProhitAverageCase:
    def test_single_hot_row_eventually_sampled_and_mitigated(self):
        tracker = ProhitTracker(
            insert_probability=0.05, mitigation_interval=64, seed=3
        )
        for _ in range(20_000):
            tracker.on_activation(5)
        assert tracker.mitigations > 10

    def test_promotion_moves_cold_to_hot(self):
        tracker = ProhitTracker(insert_probability=1.0)
        tracker.on_activation(5)  # inserted cold
        tracker.on_activation(5)  # promoted
        assert 5 in tracker._hot

    def test_window_reset(self):
        tracker = ProhitTracker(insert_probability=1.0)
        tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker.tabled_rows() == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ProhitTracker(hot_entries=0)
        with pytest.raises(ValueError):
            ProhitTracker(insert_probability=0.0)
        with pytest.raises(ValueError):
            ProhitTracker(mitigation_interval=0)


class TestProhitInsecurity:
    def test_many_sided_attack_evades_sampling(self):
        """Parallel aggressors overwhelm the probabilistic tables:
        some aggressor is never sampled (or never surfaces as the
        hottest) before crossing the threshold."""
        violated = False
        for seed in range(40):
            tracker = ProhitTracker(
                hot_entries=4,
                cold_entries=8,
                insert_probability=0.01,
                mitigation_interval=512,
                seed=seed,
            )
            sequence = attacks.many_sided(list(range(100, 164)), TH + 10)
            report = verify_tracker(tracker, GEOMETRY, sequence, TH)
            if not report.secure:
                violated = True
                break
        assert violated, "expected sampling to miss an aggressor"


class TestContrastWithGuaranteedTrackers:
    def test_hydra_survives_the_exact_same_attacks(self):
        """The discriminating experiment: identical sequences, same
        oracle — Hydra never violates."""
        from repro.core.config import HydraConfig
        from repro.core.hydra import HydraTracker

        config = HydraConfig(
            geometry=GEOMETRY, trh=2 * TH, gct_entries=16,
            rcc_entries=8, rcc_ways=4,
        )
        for sequence in (
            attacks.single_sided(5, TH + 25),
            attacks.many_sided(list(range(100, 164)), TH + 10),
        ):
            report = verify_tracker(
                HydraTracker(config), GEOMETRY, sequence, TH
            )
            assert report.secure
