"""Tests for the PTMP (PrIDE probabilistic FIFO) tracker."""

import pytest

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.mint import mint_interval_slots
from repro.trackers.ptmp import (
    DEFAULT_PTMP_ENTRIES,
    DEFAULT_PTMP_PROBABILITY,
    PtmpTracker,
)

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestConstruction:
    def test_defaults_follow_pride(self):
        tracker = PtmpTracker(GEOMETRY)
        assert tracker.entries == DEFAULT_PTMP_ENTRIES == 5
        assert tracker.probability == DEFAULT_PTMP_PROBABILITY == 0.125
        assert tracker.interval_slots == mint_interval_slots(DramTiming())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PtmpTracker(GEOMETRY, entries=0)
        with pytest.raises(ValueError):
            PtmpTracker(GEOMETRY, probability=0.0)
        with pytest.raises(ValueError):
            PtmpTracker(GEOMETRY, probability=1.5)
        with pytest.raises(ValueError):
            PtmpTracker(GEOMETRY, interval_slots=0)


class TestBehaviour:
    def make(self, **kwargs) -> PtmpTracker:
        kwargs.setdefault("interval_slots", 8)
        kwargs.setdefault("seed", 1)
        return PtmpTracker(GEOMETRY, **kwargs)

    def test_certain_insertion_drains_on_cadence(self):
        """With p=1 and one hot row, every interval's drain mitigates
        the hot row — the probabilistic machinery degenerates to a
        deterministic FIFO."""
        tracker = self.make(probability=1.0)
        mitigated = []
        for _ in range(80):
            response = tracker.on_activation(5)
            if response:
                mitigated.extend(response.mitigate_rows)
        assert mitigated == [5] * 10
        assert tracker.mitigations == 10
        assert tracker.insertions == 80

    def test_fifo_capacity_evicts_oldest(self):
        tracker = self.make(probability=1.0, entries=2, interval_slots=100)
        for row in (1, 2, 3):
            tracker.on_activation(row)
        assert tracker.evictions == 1
        assert list(tracker._banks[0].fifo) == [2, 3]

    def test_empty_fifo_drain_is_counted_not_mitigated(self):
        # Probability so small no insertion happens in one interval.
        tracker = self.make(probability=1e-12)
        for _ in range(8):
            assert tracker.on_activation(5) is None
        assert tracker.empty_drains == 1
        assert tracker.mitigations == 0

    def test_banks_clock_independently(self):
        tracker = self.make(probability=1.0)
        other = GEOMETRY.rows_per_bank + 7
        for _ in range(8):
            tracker.on_activation(5)
        assert tracker.mitigations == 1
        for _ in range(7):
            assert tracker.on_activation(other) is None
        response = tracker.on_activation(other)
        assert response is not None and response.mitigate_rows == (other,)

    def test_deterministic_under_seed(self):
        runs = []
        for _ in range(2):
            tracker = self.make(seed=42)
            log = []
            for i in range(400):
                response = tracker.on_activation(i % 13)
                log.append(response.mitigate_rows if response else None)
            runs.append(log)
        assert runs[0] == runs[1]

    def test_window_reset_clears_state(self):
        tracker = self.make(probability=1.0)
        for _ in range(5):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert not tracker._banks[0].fifo
        for _ in range(7):
            assert tracker.on_activation(5) is None

    def test_sram_stays_tiny(self):
        """The PrIDE headline: a handful of row ids per bank, far below
        any threshold-scaled CAM."""
        tracker = PtmpTracker(GEOMETRY)
        row_bits = (GEOMETRY.rows_per_bank - 1).bit_length()
        slot_bits = (tracker.interval_slots - 1).bit_length()
        per_bank_bits = DEFAULT_PTMP_ENTRIES * row_bits + slot_bits
        expected = (per_bank_bits * GEOMETRY.total_banks + 7) // 8
        assert tracker.sram_bytes() == expected

    def test_extra_stats_surface_counters(self):
        tracker = self.make(probability=1.0)
        for _ in range(8):
            tracker.on_activation(5)
        stats = tracker.extra_stats()
        assert stats["insertions"] == 8
        assert stats["interval_slots"] == 8


class TestRegistration:
    def test_registered_as_probabilistic(self):
        from repro.trackers.registry import (
            available_trackers,
            tracker_info,
        )

        assert "ptmp" in available_trackers()
        info = tracker_info("ptmp")
        assert info.security_class == "probabilistic"

    def test_buildable_from_spec(self):
        from repro.trackers.registry import TrackerContext, build_tracker

        ctx = TrackerContext(geometry=GEOMETRY)
        tracker = build_tracker(
            "ptmp@entries=7,probability=0.25,interval_slots=16", ctx
        )
        assert isinstance(tracker, PtmpTracker)
        assert tracker.entries == 7
        assert tracker.probability == 0.25
        assert tracker.interval_slots == 16
