"""Tests for the CoMeT (count-min sketch + RAT) tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import DramGeometry
from repro.trackers.comet import (
    CometTracker,
    _CountMinSketch,
    comet_counters_per_hash,
)

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestCountMinSketch:
    def test_estimate_tracks_single_key(self):
        sketch = _CountMinSketch(width=64, saturation=1000)
        for expected in range(1, 20):
            assert sketch.record(7) == expected

    @given(
        st.lists(
            st.integers(min_value=0, max_value=200), min_size=1, max_size=500
        )
    )
    @settings(max_examples=60)
    def test_min_counter_never_underestimates(self, rows):
        """The CMS soundness property CoMeT's mitigation rests on."""
        sketch = _CountMinSketch(width=16, saturation=10_000)
        true = {}
        for row in rows:
            estimate = sketch.record(row)
            true[row] = true.get(row, 0) + 1
            assert estimate >= true[row]

    def test_counters_saturate(self):
        sketch = _CountMinSketch(width=8, saturation=5)
        for _ in range(50):
            estimate = sketch.record(3)
        assert estimate == 5

    def test_clear(self):
        sketch = _CountMinSketch(width=8, saturation=100)
        sketch.record(1)
        sketch.clear()
        assert sketch.record(1) == 1


class TestSizing:
    def test_paper_design_point(self):
        """512 counters per hash per bank at the paper's T_RH = 1000."""
        assert comet_counters_per_hash(1000) == 512

    def test_width_doubles_as_threshold_halves(self):
        assert comet_counters_per_hash(500) == 1024
        assert comet_counters_per_hash(250) == 2048

    def test_width_shrinks_at_high_thresholds(self):
        assert comet_counters_per_hash(139_000) == 64

    def test_width_is_power_of_two(self):
        for trh in (125, 300, 500, 777, 4800, 139_000):
            width = comet_counters_per_hash(trh)
            assert width & (width - 1) == 0

    def test_rejects_bad_trh(self):
        with pytest.raises(ValueError):
            comet_counters_per_hash(0)


class TestTrackerBehaviour:
    def make(self, trh=100, **kwargs) -> CometTracker:
        return CometTracker(GEOMETRY, trh=trh, **kwargs)

    def test_mitigates_at_half_trh(self):
        tracker = self.make(trh=100)
        responses = [tracker.on_activation(5) for _ in range(50)]
        assert responses[-1].mitigate_rows == (5,)
        assert all(r is None for r in responses[:-1])

    def test_rat_takes_over_after_first_mitigation(self):
        """Post-mitigation the row counts exactly in the RAT, so the
        next mitigation comes after another full threshold of acts —
        not immediately off the saturated sketch."""
        tracker = self.make(trh=100)
        for _ in range(50):
            tracker.on_activation(5)
        assert tracker.rat_mitigations == 0
        responses = [tracker.on_activation(5) for _ in range(50)]
        assert all(r is None for r in responses[:-1])
        assert responses[-1].mitigate_rows == (5,)
        assert tracker.rat_mitigations == 1
        assert tracker.rat_hits == 50

    def test_rat_eviction_is_conservative(self):
        """An evicted row falls back to its saturated sketch estimate
        and re-mitigates within one activation — early, never late."""
        tracker = self.make(trh=100, rat_entries=1)
        for _ in range(50):
            tracker.on_activation(5)  # row 5 mitigated, in RAT
        for _ in range(50):
            tracker.on_activation(700)  # row 700 mitigated, evicts 5
        assert tracker.rat_evictions == 1
        response = tracker.on_activation(5)
        assert response is not None and response.mitigate_rows == (5,)

    def test_per_bank_sketches_are_independent(self):
        tracker = self.make(trh=100)
        other_bank_row = GEOMETRY.rows_per_bank + 5
        for _ in range(49):
            tracker.on_activation(5)
        assert tracker.on_activation(other_bank_row) is None

    def test_window_reset_forgets(self):
        tracker = self.make(trh=100)
        for _ in range(49):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker.on_activation(5) is None

    def test_sram_scales_with_width(self):
        small = self.make(trh=100, counters_per_hash=256)
        large = self.make(trh=100, counters_per_hash=1024)
        assert large.sram_bytes() > small.sram_bytes()

    def test_extra_stats_keys(self):
        stats = self.make().extra_stats()
        assert "rat_hits" in stats
        assert "sketch_mitigations" in stats

    def test_rejects_bad_rat(self):
        with pytest.raises(ValueError):
            self.make(rat_entries=0)
