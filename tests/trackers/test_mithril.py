"""Tests for the Mithril RFM-driven tracker."""

import pytest

from repro.analysis.security import verify_tracker
from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.mithril import MithrilTracker
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


def make(trh=100, rfm_interval=10, entries=64) -> MithrilTracker:
    return MithrilTracker(
        GEOMETRY,
        trh=trh,
        timing=TIMING,
        rfm_interval=rfm_interval,
        entries_per_bank=entries,
    )


class TestRfmMitigation:
    def test_hottest_row_mitigated_at_rfm(self):
        tracker = make(rfm_interval=10)
        mitigated = []
        for _ in range(10):
            response = tracker.on_activation(5)
            if response:
                mitigated.extend(response.mitigate_rows)
        assert mitigated == [5]
        assert tracker.rfm_commands == 1

    def test_rfm_cadence_is_per_bank(self):
        tracker = make(rfm_interval=10)
        other_bank = GEOMETRY.rows_per_bank + 7
        for _ in range(9):
            tracker.on_activation(5)
            tracker.on_activation(other_bank)
        assert tracker.rfm_commands == 0
        tracker.on_activation(5)
        assert tracker.rfm_commands == 1

    def test_threshold_backstop_fires_between_rfms(self):
        tracker = make(trh=20, rfm_interval=1000, entries=64)
        responses = [tracker.on_activation(5) for _ in range(10)]
        assert any(r and 5 in r.mitigate_rows for r in responses)

    def test_window_reset(self):
        tracker = make()
        for _ in range(5):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker._tables[0].counts == {}
        assert tracker._acts_since_rfm[0] == 0


class TestSecurity:
    def test_single_aggressor(self):
        report = verify_tracker(
            make(trh=100, rfm_interval=12),
            GEOMETRY,
            attacks.single_sided(5, 2000),
            50,
        )
        assert report.secure

    def test_many_sided(self):
        tracker = make(trh=100, rfm_interval=12, entries=128)
        seq = attacks.many_sided(list(range(100, 132)), rounds=120)
        report = verify_tracker(tracker, GEOMETRY, seq, 50)
        assert report.secure

    def test_unmitigated_counts_bounded_by_rfm_arithmetic(self):
        """Mithril's bound: with the immediate backstop, no row's
        unmitigated true count passes T_H."""
        tracker = make(trh=100, rfm_interval=25)
        seq = attacks.double_sided(500, 1200)
        report = verify_tracker(tracker, GEOMETRY, seq, 50)
        assert report.secure
        assert report.max_unmitigated_count <= 50


class TestSizing:
    def test_default_interval_quarter_threshold(self):
        tracker = MithrilTracker(GEOMETRY, trh=500, timing=TIMING)
        assert tracker.rfm_interval == 250 // 4

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MithrilTracker(GEOMETRY, trh=100, timing=TIMING, rfm_interval=0)

    def test_sram_scales_with_entries(self):
        small = make(entries=32)
        large = make(entries=64)
        assert large.sram_bytes() == 2 * small.sram_bytes()
