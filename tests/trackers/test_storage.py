"""Tests for the Table 1 / Table 5 storage models."""

import pytest

from repro.trackers.storage import (
    RANK_GEOMETRY,
    cat_bytes_per_rank,
    dcbf_bytes_per_rank,
    graphene_bytes_per_rank,
    hydra_bytes_total,
    storage_table,
    total_sram_table,
    twice_bytes_per_rank,
)

KIB = 1024
MIB = 1024 * 1024


class TestTable1Calibration:
    """Each model must land on the paper's published points."""

    @pytest.mark.parametrize(
        "trh,expected_kib,tol",
        [(250, 679, 0.03), (500, 340, 0.03), (1000, 170, 0.03), (32000, 5, 0.15)],
    )
    def test_graphene(self, trh, expected_kib, tol):
        assert graphene_bytes_per_rank(trh) == pytest.approx(
            expected_kib * KIB, rel=tol
        )

    @pytest.mark.parametrize(
        "trh,expected_kib", [(500, 2355), (1000, 1229), (32000, 38)]
    )
    def test_twice(self, trh, expected_kib):
        assert twice_bytes_per_rank(trh) == pytest.approx(
            expected_kib * KIB, rel=0.05
        )

    @pytest.mark.parametrize(
        "trh,expected_kib", [(500, 1536), (1000, 768), (32000, 24)]
    )
    def test_cat(self, trh, expected_kib):
        assert cat_bytes_per_rank(trh) == pytest.approx(
            expected_kib * KIB, rel=0.05
        )

    @pytest.mark.parametrize(
        "trh,expected_kib", [(250, 1536), (500, 768), (1000, 384), (32000, 53)]
    )
    def test_dcbf(self, trh, expected_kib):
        assert dcbf_bytes_per_rank(trh) == pytest.approx(
            expected_kib * KIB, rel=0.05
        )

    def test_every_prior_scheme_blows_the_64kb_goal_at_500(self):
        """The paper's Table 1 'Goal' column: <= 64 KB per rank."""
        row = [r for r in storage_table() if r.trh == 500][0]
        for scheme, size in row.bytes_by_scheme.items():
            assert size > 64 * KIB, scheme

    def test_storage_grows_as_threshold_falls(self):
        rows = {r.trh: r for r in storage_table()}
        for scheme in ("Graphene", "TWiCE", "CAT", "D-CBF"):
            assert (
                rows[250].bytes_by_scheme[scheme]
                > rows[1000].bytes_by_scheme[scheme]
            )


class TestTable5:
    def test_hydra_is_56_5_kb_and_flat_across_ddr5(self):
        table = total_sram_table(trh=500)
        assert table["Hydra"]["ddr4"] == pytest.approx(56.5 * KIB, rel=0.01)
        assert table["Hydra"]["ddr4"] == table["Hydra"]["ddr5"]

    def test_graphene_totals(self):
        """Table 5: 680 KB on DDR4, 1.4 MB on DDR5."""
        table = total_sram_table(trh=500)
        assert table["Graphene"]["ddr4"] == pytest.approx(680 * KIB, rel=0.01)
        assert table["Graphene"]["ddr5"] == 2 * table["Graphene"]["ddr4"]

    def test_dcbf_does_not_double_on_ddr5(self):
        table = total_sram_table(trh=500)
        assert table["D-CBF"]["ddr4"] == table["D-CBF"]["ddr5"]

    def test_hydra_orders_of_magnitude_below_priors(self):
        table = total_sram_table(trh=500)
        hydra = table["Hydra"]["ddr4"]
        for scheme in ("Graphene", "TWiCE", "CAT", "D-CBF"):
            assert table[scheme]["ddr4"] > 10 * hydra


class TestHydraScaling:
    def test_structures_scale_inversely_below_500(self):
        assert hydra_bytes_total(250) == pytest.approx(
            2 * hydra_bytes_total(500), rel=0.05
        )

    def test_rank_geometry_is_16gb(self):
        assert (
            RANK_GEOMETRY.rows_per_bank
            * RANK_GEOMETRY.banks_per_rank
            * RANK_GEOMETRY.row_size_bytes
            == 16 * 1024**3
        )
