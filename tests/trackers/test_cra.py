"""Tests for CRA (per-row DRAM counters + line-granularity cache)."""

import pytest

from repro.dram.timing import DramGeometry
from repro.trackers.cra import CraTracker, LineMetadataCache

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestLineMetadataCache:
    def test_miss_installs(self):
        cache = LineMetadataCache(capacity_bytes=16 * 64, ways=16)
        hit, victim = cache.access(1, make_dirty=True)
        assert not hit and victim is None
        hit, victim = cache.access(1, make_dirty=False)
        assert hit

    def test_dirty_eviction_reported(self):
        cache = LineMetadataCache(capacity_bytes=16 * 64, ways=16)  # 1 set
        for line in range(16):
            cache.access(line, make_dirty=True)
        hit, victim = cache.access(99, make_dirty=True)
        assert not hit
        assert victim == 0  # LRU order: first-installed evicted

    def test_clean_eviction_free(self):
        cache = LineMetadataCache(capacity_bytes=16 * 64, ways=16)
        for line in range(16):
            cache.access(line, make_dirty=False)
        hit, victim = cache.access(99, make_dirty=True)
        assert victim is None

    def test_lru_promotion(self):
        cache = LineMetadataCache(capacity_bytes=16 * 64, ways=16)
        for line in range(16):
            cache.access(line, make_dirty=True)
        cache.access(0, make_dirty=False)  # promote line 0
        __, victim = cache.access(99, make_dirty=True)
        assert victim == 1

    def test_rejects_partial_sets(self):
        with pytest.raises(ValueError):
            LineMetadataCache(capacity_bytes=100, ways=16)

    def test_reset(self):
        cache = LineMetadataCache(capacity_bytes=16 * 64, ways=16)
        cache.access(1, make_dirty=True)
        cache.reset()
        hit, _ = cache.access(1, make_dirty=False)
        assert not hit


class TestCraTracker:
    def make(self, trh=100, cache_bytes=16 * 64) -> CraTracker:
        return CraTracker(GEOMETRY, trh=trh, cache_bytes=cache_bytes)

    def test_first_access_misses_and_fetches(self):
        tracker = self.make()
        response = tracker.on_activation(0)
        assert response is not None
        reads = [a for a in response.meta_accesses if not a.is_write]
        assert len(reads) == 1
        assert reads[0].row_id == tracker.table.meta_row_of(0)

    def test_cached_line_covers_64_neighbouring_rows(self):
        tracker = self.make()
        tracker.on_activation(0)
        # Row 1's counter shares row 0's line: pure cache hit, silent.
        assert tracker.on_activation(1) is None
        assert tracker.cache.hits == 1

    def test_dirty_writeback_on_conflict(self):
        tracker = self.make(cache_bytes=16 * 64)  # 16 lines, 1 set
        for line_index in range(16):
            tracker.on_activation(line_index * 64)
        response = tracker.on_activation(16 * 64)
        writes = [a for a in response.meta_accesses if a.is_write]
        assert len(writes) == 1

    def test_mitigation_at_half_trh(self):
        tracker = self.make(trh=100)
        mitigated_at = None
        for i in range(1, 60):
            response = tracker.on_activation(7)
            if response and response.mitigate_rows:
                mitigated_at = i
                break
        assert mitigated_at == 50
        assert tracker.mitigations == 1

    def test_counter_reset_after_mitigation(self):
        tracker = self.make(trh=100)
        for _ in range(50):
            tracker.on_activation(7)
        assert tracker.table.read(7) == 0

    def test_metadata_row_activations_ignored(self):
        tracker = self.make()
        meta_row = tracker.table.meta_row_of(0)
        assert tracker.on_activation(meta_row) is None

    def test_window_reset_clears_counts_and_cache(self):
        tracker = self.make(trh=100)
        for _ in range(30):
            tracker.on_activation(7)
        tracker.on_window_reset()
        assert tracker.table.read(7) == 0
        assert tracker.cache.hits + tracker.cache.misses > 0
        hit, _ = tracker.cache.access(0, make_dirty=False)
        assert not hit  # cache emptied (this access re-installed it)

    def test_sram_is_cache_plus_overhead(self):
        tracker = self.make(cache_bytes=64 * 1024)
        assert tracker.sram_bytes() == int(64 * 1024 * 1.25)

    def test_dram_reservation_positive(self):
        assert self.make().dram_reserved_bytes() > 0
