"""Tests for the TWiCE pruned-table tracker."""

import pytest

from repro.analysis.security import verify_tracker
from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.twice import TwiceTracker
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)
TIMING = DramTiming().scaled(1 / 64)


def make(trh=100, entries=128, prune_interval=64) -> TwiceTracker:
    return TwiceTracker(
        GEOMETRY,
        trh=trh,
        timing=TIMING,
        entries_per_bank=entries,
        prune_interval_acts=prune_interval,
    )


class TestTracking:
    def test_mitigates_at_half_trh(self):
        tracker = make(trh=100)
        responses = [tracker.on_activation(5) for _ in range(50)]
        assert responses[-1].mitigate_rows == (5,)
        assert all(r is None for r in responses[:-1])

    def test_counts_are_per_bank(self):
        tracker = make(trh=100)
        other = GEOMETRY.rows_per_bank + 5
        for _ in range(49):
            tracker.on_activation(5)
        assert tracker.on_activation(other) is None

    def test_window_reset_clears(self):
        tracker = make(trh=100)
        for _ in range(49):
            tracker.on_activation(5)
        tracker.on_window_reset()
        assert tracker.on_activation(5) is None
        assert tracker.occupancy() == 1


class TestPruning:
    def make_tight_window(self, budget_acts=700, trh=100, entries=2048):
        """A timing whose per-bank activation budget is tiny, so the
        sound pruning rule actually has room to fire."""
        window_scale = budget_acts / DramTiming().max_activations_per_window()
        return TwiceTracker(
            GEOMETRY,
            trh=trh,
            timing=DramTiming().scaled(window_scale),
            entries_per_bank=entries,
            prune_interval_acts=64,
        )

    def test_nothing_prunable_early_at_ultra_low_threshold(self):
        """The paper's §2.4 point: with a huge remaining activation
        budget, no touched row can be ruled out, so TWiCE's table
        degenerates toward per-row tracking."""
        tracker = make(entries=2048, prune_interval=64)
        for row in range(600):
            tracker.on_activation(row)
        assert tracker.pruned_entries() == 0
        assert tracker.occupancy() == 600

    def test_hopeless_rows_pruned_near_window_end(self):
        tracker = self.make_tight_window(budget_acts=400, trh=100)
        # One-touch rows: past ~350 of the 400-activation budget, a
        # 1-count row provably cannot reach T_H = 50 and is pruned.
        for row in range(390):
            tracker.on_activation(row)
        assert tracker.pruned_entries() > 0
        assert tracker.occupancy() < 390

    def test_viable_aggressor_survives_pruning(self):
        tracker = self.make_tight_window(budget_acts=700, trh=100)
        for i in range(320):
            tracker.on_activation(5)
            tracker.on_activation(100 + i)  # one-touch noise
        resident = 5 in tracker._tables[0].entries
        assert resident or tracker.mitigations > 0


class TestOverflow:
    def test_full_table_inherits_min_count(self):
        """Space-Saving-style displacement keeps soundness when the
        table is under-provisioned."""
        tracker = make(entries=4, prune_interval=10_000)
        for row in range(4):
            for _ in range(5):
                tracker.on_activation(row)
        # A new row displaces the minimum and inherits its count.
        tracker.on_activation(999)
        assert tracker._tables[0].entries[999] == 6

    def test_security_with_tiny_table(self):
        tracker = make(trh=100, entries=4, prune_interval=10_000)
        seq = attacks.thrash_then_hammer(
            5, list(range(100, 160)), hammers=400, interleave=2
        )
        report = verify_tracker(tracker, GEOMETRY, seq, 50)
        assert report.secure


class TestSecurity:
    def test_double_sided(self):
        report = verify_tracker(
            make(trh=100), GEOMETRY, attacks.double_sided(500, 800), 50
        )
        assert report.secure

    def test_many_sided(self):
        seq = attacks.many_sided(list(range(50, 80)), rounds=100)
        report = verify_tracker(make(trh=100), GEOMETRY, seq, 50)
        assert report.secure


class TestValidation:
    def test_rejects_bad_prune_interval(self):
        with pytest.raises(ValueError):
            make(prune_interval=0)

    def test_default_sizing_positive(self):
        tracker = TwiceTracker(GEOMETRY, trh=500)
        assert tracker.sram_bytes() > 0
