"""Tests for the declarative tracker registry and spec strings."""

import inspect
from dataclasses import asdict

import pytest

from repro.core.hydra import HydraTracker
from repro.interfaces import NullTracker
from repro.sim.config import SystemConfig
from repro.sim.simulator import make_tracker, simulate, simulate_workload
from repro.trackers.cat import CatTracker
from repro.trackers.cra import CraTracker
from repro.trackers.dcbf import DcbfTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.insecure import MrlocTracker, ProhitTracker
from repro.trackers.mithril import MithrilTracker
from repro.trackers.ocpr import OcprTracker
from repro.trackers.para import ParaTracker
from repro.trackers.registry import (
    TrackerSpec,
    available_trackers,
    build_tracker,
    canonical_spec,
    parse_spec,
    tracker_info,
)
from repro.trackers.twice import TwiceTracker

CONFIG = SystemConfig(scale=1 / 128)

#: Every name the pre-registry ``make_tracker`` accepted.
LEGACY_NAMES = (
    "baseline",
    "hydra",
    "hydra-randomized",
    "hydra-nogct",
    "hydra-norcc",
    "graphene",
    "cra",
    "ocpr",
    "cat",
    "twice",
    "mithril",
    "mrloc",
    "prohit",
    "para",
    "dcbf",
)


def legacy_tracker(name, config):
    """The pre-registry name->constructor mapping (parity reference)."""
    if name == "baseline":
        return NullTracker()
    if name == "hydra":
        return HydraTracker(config.hydra_config())
    if name == "hydra-randomized":
        tracker = HydraTracker(config.hydra_config(randomize_mapping=True))
        tracker.name = "hydra-randomized"
        return tracker
    if name == "hydra-nogct":
        return HydraTracker(config.hydra_config(enable_gct=False))
    if name == "hydra-norcc":
        return HydraTracker(config.hydra_config(enable_rcc=False))
    if name == "graphene":
        return GrapheneTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "cra":
        return CraTracker(
            config.geometry,
            trh=config.trh,
            cache_bytes=config.cra_cache_bytes(),
        )
    if name == "ocpr":
        return OcprTracker(config.geometry, trh=config.trh)
    if name == "cat":
        return CatTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "twice":
        return TwiceTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "mithril":
        return MithrilTracker(
            config.geometry, trh=config.trh, timing=config.timing
        )
    if name == "mrloc":
        return MrlocTracker()
    if name == "prohit":
        return ProhitTracker()
    if name == "para":
        return ParaTracker(trh=config.trh)
    if name == "dcbf":
        counters = max(1024, int((1 << 18) * config.scale))
        return DcbfTracker(
            trh=config.trh, counters_per_filter=counters, timing=config.timing
        )
    raise ValueError(f"unknown tracker {name!r}")


class TestRegistryParity:
    """The registry must rebuild every legacy tracker identically."""

    def test_catalogue_covers_all_legacy_names(self):
        assert set(LEGACY_NAMES) <= set(available_trackers())

    @pytest.mark.parametrize("name", LEGACY_NAMES)
    def test_same_tracker_as_legacy_construction(self, name):
        old = legacy_tracker(name, CONFIG)
        new = make_tracker(name, CONFIG)
        assert type(new) is type(old)
        assert getattr(new, "name", name) == getattr(old, "name", name)
        assert new.sram_bytes() == old.sram_bytes()
        assert new.dram_reserved_bytes() == old.dram_reserved_bytes()

    def test_trh_param_matches_with_trh_route(self):
        via_spec = make_tracker("hydra@trh=250", CONFIG)
        via_config = legacy_tracker("hydra", CONFIG.with_trh(250))
        assert via_spec.sram_bytes() == via_config.sram_bytes()
        assert (
            via_spec.dram_reserved_bytes() == via_config.dram_reserved_bytes()
        )

    def test_every_tracker_has_summary_line(self):
        for name in available_trackers():
            assert tracker_info(name).summary


class TestSpecParsing:
    def test_bare_name(self):
        spec = parse_spec("hydra")
        assert spec == TrackerSpec(name="hydra")
        assert spec.canonical() == "hydra"

    def test_params_coerced_and_sorted(self):
        spec = parse_spec("hydra@trh=250, rcc_ways = 8")
        assert spec.params == (("rcc_ways", 8), ("trh", 250))
        assert spec.canonical() == "hydra@rcc_ways=8,trh=250"

    def test_canonical_round_trips(self):
        text = "hydra@enable_gct=false,tg_fraction=0.65,trh=250"
        assert canonical_spec(text) == text
        assert parse_spec(canonical_spec(text)) == parse_spec(text)

    def test_canonical_is_order_insensitive(self):
        assert canonical_spec("hydra@trh=250,rcc_ways=8") == canonical_spec(
            "hydra@rcc_ways=8,trh=250"
        )

    def test_bool_spellings(self):
        assert parse_spec("hydra@enable_gct=no").params == (
            ("enable_gct", False),
        )
        assert parse_spec("hydra@enable_gct=ON").params == (
            ("enable_gct", True),
        )

    def test_parse_accepts_parsed_spec(self):
        spec = parse_spec("graphene@trh=250")
        assert parse_spec(spec) is spec


class TestSpecErrors:
    def test_unknown_tracker_lists_available(self):
        with pytest.raises(ValueError, match="unknown tracker 'nope'"):
            parse_spec("nope")
        with pytest.raises(ValueError, match="hydra"):
            parse_spec("nope@trh=1")

    def test_unknown_param_lists_schema(self):
        with pytest.raises(
            ValueError, match="no parameter 'bogus'.*parameters:"
        ):
            parse_spec("hydra@bogus=1")

    def test_param_of_other_tracker_rejected(self):
        with pytest.raises(ValueError, match="no parameter 'cache_kb'"):
            parse_spec("graphene@cache_kb=128")

    def test_malformed_pair(self):
        with pytest.raises(ValueError, match="malformed parameter"):
            parse_spec("hydra@trh")

    def test_empty_parameter_list(self):
        with pytest.raises(ValueError, match="empty parameter list"):
            parse_spec("hydra@")

    def test_duplicate_param(self):
        with pytest.raises(ValueError, match="duplicate parameter 'trh'"):
            parse_spec("hydra@trh=250,trh=500")

    def test_bad_int_value(self):
        with pytest.raises(ValueError, match="'abc' is not int"):
            parse_spec("hydra@gct_entries=abc")

    def test_bad_bool_value(self):
        with pytest.raises(ValueError, match="not a boolean"):
            parse_spec("hydra@enable_gct=maybe")

    def test_rcc_kb_and_entries_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            build_tracker(
                "hydra@rcc_kb=24,rcc_entries=8192", CONFIG.tracker_context()
            )


class TestParameterizedBuilds:
    def test_rcc_kb_equivalent_to_entries(self):
        """24 KB at 3 B/entry is exactly 8192 entries (the default)."""
        by_kb = make_tracker("hydra@rcc_kb=24", CONFIG)
        by_entries = make_tracker("hydra@rcc_entries=8192", CONFIG)
        assert by_kb.sram_bytes() == by_entries.sram_bytes()
        assert by_kb.dram_reserved_bytes() == by_entries.dram_reserved_bytes()

    def test_gct_entries_override_shrinks_sram(self):
        small = make_tracker("hydra@gct_entries=16384", CONFIG)
        default = make_tracker("hydra", CONFIG)
        assert small.sram_bytes() < default.sram_bytes()

    def test_cra_cache_kb_override_grows_cache(self):
        small = make_tracker("cra", CONFIG)
        large = make_tracker("cra@cache_kb=256", CONFIG)
        assert large.sram_bytes() > small.sram_bytes()


class TestSimulateIntegration:
    def test_spec_route_matches_systemconfig_route(self):
        """ISSUE acceptance: ``hydra@trh=1000`` == SystemConfig route."""
        config = SystemConfig(scale=1 / 128, n_windows=1)
        via_spec = simulate_workload(config, "hydra@trh=1000", "xz")
        via_config = simulate_workload(config.with_trh(1000), "hydra", "xz")
        assert asdict(via_spec) == asdict(via_config)

    def test_simulate_has_no_tracker_isinstance_checks(self):
        assert "isinstance" not in inspect.getsource(simulate)

    def test_extra_stats_replaces_isinstance_dispatch(self):
        assert "distribution" in make_tracker("hydra", CONFIG).extra_stats()
        assert "cache_miss_rate" in make_tracker("cra", CONFIG).extra_stats()
        assert NullTracker().extra_stats() == {}
