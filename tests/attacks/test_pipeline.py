"""Tests for the staged attack pipeline and its harness integration."""

import pytest

from repro.analysis.verdicts import (
    VERDICT_BREAKS_EXPECTED,
    VERDICT_NOT_EXERCISED,
    VERDICT_SECURE,
)
from repro.attacks.compile import EVENT_SYNC
from repro.attacks.ops import SyncRefresh
from repro.attacks.pipeline import (
    align_to_refresh,
    annotate,
    hammer,
    run_pipeline,
    tracker_context_for,
    verify,
)
from repro.attacks.registry import AttackContext, compile_attack

CTX = AttackContext(trh=1000)


class TestAlignToRefresh:
    def test_prepends_sync(self):
        attack = compile_attack("single_sided@hammers=10", CTX)
        assert attack.syncs == 0
        run = run_pipeline(attack, CTX, align_to_refresh())
        assert run.attack.syncs == 1
        assert next(iter(run.attack.iter_events()))[0] == EVENT_SYNC
        assert run.attack.activations == 10

    def test_idempotent_when_already_aligned(self):
        from repro.attacks.compile import compile_program
        from repro.attacks.parse import parse_program
        from repro.attacks.resolve import resolve

        attack = compile_program(
            resolve(parse_program("sync_refresh\nact row=5\npre\n"))
        )
        assert isinstance(attack.program.ops[0], SyncRefresh)
        run = run_pipeline(attack, CTX, align_to_refresh())
        assert run.attack.syncs == attack.syncs == 1


class TestHammerAndVerify:
    def test_baseline_breaks_as_expected(self):
        attack = compile_attack("single_sided", CTX)
        run = run_pipeline(
            attack,
            CTX,
            align_to_refresh(),
            hammer("baseline"),
            verify(),
        )
        assert run.security_class == "insecure"
        assert run.exercised is True
        assert run.report.violations
        assert run.verdict == VERDICT_BREAKS_EXPECTED

    def test_graphene_survives(self):
        attack = compile_attack("single_sided", CTX)
        run = run_pipeline(
            attack,
            CTX,
            align_to_refresh(),
            hammer("graphene"),
            verify(),
            annotate(origin="test"),
        )
        assert run.security_class == "deterministic"
        assert run.verdict == VERDICT_SECURE
        assert not run.report.violations
        assert run.annotations["attack"] == "single_sided"
        assert run.annotations["activations"] == attack.activations
        assert run.annotations["origin"] == "test"

    def test_unexercised_attack_judged_vacuous(self):
        attack = compile_attack("single_sided@hammers=3", CTX)
        run = run_pipeline(
            attack, CTX, hammer("graphene"), verify()
        )
        assert run.exercised is False
        assert run.verdict == VERDICT_NOT_EXERCISED

    def test_hammer_accepts_tracker_instance(self):
        from repro.trackers import build_tracker

        tracker = build_tracker("graphene", tracker_context_for(CTX))
        attack = compile_attack("single_sided", CTX)
        run = run_pipeline(attack, CTX, hammer(tracker), verify())
        assert run.tracker_spec == "GrapheneTracker"
        assert run.verdict == VERDICT_SECURE

    def test_verify_without_hammer_raises(self):
        attack = compile_attack("single_sided", CTX)
        with pytest.raises(ValueError, match="hammer"):
            run_pipeline(attack, CTX, verify())

    def test_tracker_context_scales_structures(self):
        tctx = tracker_context_for(AttackContext(trh=125))
        assert tctx.trh == 125
        assert tctx.structure_scale == 4  # 500 // 125
