"""Tests for the attack DSL core: ops, parse, resolve, compile."""

import pytest

from repro.attacks.compile import (
    EVENT_ACT,
    EVENT_SYNC,
    compile_program,
    exercised_within,
)
from repro.attacks.ops import (
    Act,
    Loop,
    Nop,
    P,
    Placeholder,
    Pre,
    Program,
    SyncRefresh,
)
from repro.attacks.parse import ParseError, ProgramBuilder, parse_program
from repro.attacks.resolve import (
    AttackBoundsError,
    UnboundPlaceholderError,
    resolve,
)
from repro.dram.timing import DramGeometry

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestPlaceholders:
    def test_offset_arithmetic(self):
        p = P("victim")
        assert (p + 1) == Placeholder("victim", 1)
        assert (p - 2) == Placeholder("victim", -2)
        assert (p + 1) - 1 == p

    def test_render_forms(self):
        assert P("v").render() == "$v"
        assert (P("v") + 3).render() == "$v+3"
        assert (P("v") - 3).render() == "$v-3"

    def test_program_placeholder_inventory(self):
        prog = Program(
            name="t",
            ops=(
                Act(row=P("a")),
                Loop(count=P("n"), body=(Act(row=P("b") + 1),)),
            ),
            defaults={"a": 1},
        )
        assert prog.placeholders() == ("a", "b", "n")
        assert prog.unbound() == ("b", "n")


class TestBuilder:
    def test_builds_nested_loops(self):
        b = ProgramBuilder("nested")
        with b.loop(3):
            b.act(5).pre()
            with b.loop(2):
                b.act(7).pre()
        prog = b.build()
        assert len(prog.ops) == 1
        outer = prog.ops[0]
        assert isinstance(outer, Loop) and outer.count == 3
        assert isinstance(outer.body[2], Loop)

    def test_unclosed_loop_raises(self):
        b = ProgramBuilder("open")
        cm = b.loop(2)
        cm.__enter__()
        b.act(1)
        with pytest.raises(ValueError):
            b.build()


class TestParse:
    def test_round_trips_render(self):
        source = """# program: demo
let victim = 500
sync_refresh
loop $n:
    act row=$victim-1
    pre
    act row=$victim+1
    pre
nop 16
"""
        prog = parse_program(source)
        assert prog.name == "demo"
        assert prog.defaults == {"victim": 500}
        assert parse_program(prog.render()) == prog

    def test_bank_addressed_act(self):
        prog = parse_program("act bank=1 row=3\n")
        assert prog.ops == (Act(row=3, bank=1),)

    def test_rejects_tabs(self):
        with pytest.raises(ParseError):
            parse_program("loop 2:\n\tact row=1\n")

    def test_rejects_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_program("hammer row=1\n")

    def test_rejects_empty_loop_body(self):
        with pytest.raises(ParseError):
            parse_program("loop 2:\nact row=1\n")

    def test_rejects_let_inside_loop(self):
        with pytest.raises(ParseError):
            parse_program("loop 2:\n    let x = 1\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("act row=1\nbogus\n")


class TestResolve:
    def test_bindings_override_defaults(self):
        prog = Program("t", ops=(Act(row=P("r")),), defaults={"r": 5})
        assert resolve(prog).ops == (Act(row=5),)
        assert resolve(prog, bindings={"r": 9}).ops == (Act(row=9),)

    def test_unbound_placeholder_is_named(self):
        prog = Program("t", ops=(Act(row=P("mystery")),))
        with pytest.raises(UnboundPlaceholderError, match="mystery"):
            resolve(prog)

    def test_offsets_apply_after_binding(self):
        prog = Program("t", ops=(Act(row=P("v") - 1), Act(row=P("v") + 1)))
        ops = resolve(prog, bindings={"v": 100}).ops
        assert ops == (Act(row=99), Act(row=101))

    def test_bank_addressing_normalizes_to_global(self):
        prog = Program("t", ops=(Act(row=3, bank=1),))
        resolved = resolve(prog, geometry=GEOMETRY)
        assert resolved.ops == (Act(row=GEOMETRY.rows_per_bank + 3),)

    def test_bank_addressing_without_geometry_raises(self):
        prog = Program("t", ops=(Act(row=3, bank=1),))
        with pytest.raises(ValueError, match="geometry"):
            resolve(prog)

    def test_out_of_range_bank_always_raises(self):
        prog = Program("t", ops=(Act(row=0, bank=2),))
        with pytest.raises(AttackBoundsError):
            resolve(prog, geometry=GEOMETRY, bounds="clamp")

    def test_row_bounds_raise_by_default(self):
        prog = Program("t", ops=(Act(row=GEOMETRY.total_rows),))
        with pytest.raises(AttackBoundsError):
            resolve(prog, geometry=GEOMETRY)

    def test_row_bounds_clamp_policy(self):
        prog = Program("t", ops=(Act(row=-5), Act(row=10**9)))
        resolved = resolve(prog, geometry=GEOMETRY, bounds="clamp")
        assert resolved.ops == (
            Act(row=0),
            Act(row=GEOMETRY.total_rows - 1),
        )

    def test_no_geometry_skips_bounds(self):
        prog = Program("t", ops=(Act(row=10**9),))
        assert resolve(prog).ops == (Act(row=10**9),)

    def test_unknown_bounds_policy_rejected(self):
        prog = Program("t", ops=())
        with pytest.raises(ValueError, match="bounds"):
            resolve(prog, bounds="wrap")

    def test_negative_loop_count_rejected(self):
        prog = Program("t", ops=(Loop(count=P("n"), body=(Pre(),)),))
        with pytest.raises(ValueError, match="loop count"):
            resolve(prog, bindings={"n": -1})

    def test_negative_nop_count_rejected(self):
        prog = Program("t", ops=(Nop(count=-2),))
        with pytest.raises(ValueError, match="nop count"):
            resolve(prog)


class TestCompile:
    def test_counts_are_analytic(self):
        prog = Program(
            "t",
            ops=(
                SyncRefresh(),
                Loop(
                    count=1000,
                    body=(Act(row=1), Pre(), Nop(count=3)),
                ),
            ),
        )
        compiled = compile_program(resolve(prog))
        assert compiled.activations == 1000
        assert compiled.precharges == 1000
        assert compiled.nops == 3000
        assert compiled.syncs == 1
        assert len(compiled) == 1000

    def test_events_interleave_syncs(self):
        prog = parse_program(
            "loop 2:\n    sync_refresh\n    act row=7\n    pre\n"
        )
        compiled = compile_program(resolve(prog))
        assert list(compiled.iter_events()) == [
            (EVENT_SYNC, 0),
            (EVENT_ACT, 7),
            (EVENT_SYNC, 0),
            (EVENT_ACT, 7),
        ]

    def test_rows_cached_and_streaming_agree(self):
        prog = parse_program("loop 5:\n    act row=3\n    pre\n")
        compiled = compile_program(resolve(prog))
        assert list(compiled.iter_rows()) == [3] * 5
        assert compiled.rows() == [3] * 5
        assert compiled.rows() is compiled.rows()  # cached


class TestExercisedWithin:
    def test_crossing_threshold_detected(self):
        prog = parse_program("loop 11:\n    act row=4\n")
        compiled = compile_program(resolve(prog))
        assert exercised_within(compiled, 10, None)
        assert not exercised_within(compiled, 11, None)

    def test_window_reset_prevents_crossing(self):
        prog = parse_program("loop 100:\n    act row=4\n")
        compiled = compile_program(resolve(prog))
        assert not exercised_within(compiled, 10, 10)
        assert exercised_within(compiled, 10, 100)

    def test_sync_event_resets_counts(self):
        prog = parse_program(
            "loop 4:\n    sync_refresh\n    loop 10:\n        act row=4\n"
        )
        compiled = compile_program(resolve(prog))
        # 10 acts per window never exceed a threshold of 10.
        assert not exercised_within(compiled, 10, None)
        assert exercised_within(compiled, 9, None)

    def test_accepts_plain_sequences(self):
        assert exercised_within([1] * 12, 10, None)
        assert not exercised_within([1] * 12, 10, 6)
