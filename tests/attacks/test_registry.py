"""Tests for the attack registry: spec parsing, context defaults."""

import pytest

from repro.attacks.programs import (
    DEFAULT_MANY_AGGRESSORS,
    MANY_ACT_CAP,
    RANDOM_ACT_CAP,
    RANDOM_SEED,
)
from repro.attacks.registry import (
    AttackContext,
    AttackSpec,
    attack_info,
    available_attacks,
    build_attack,
    canonical_attack_spec,
    compile_attack,
    parse_attack_spec,
)
from repro.dram.timing import PAPER_GEOMETRY

EXPECTED_ATTACKS = {
    "single_sided",
    "double_sided",
    "many_sided",
    "half_double",
    "thrash",
    "rcc_thrash",
    "rct_region",
    "random",
    "refresh_sync",
}


class TestRegistry:
    def test_zoo_is_registered(self):
        assert EXPECTED_ATTACKS <= set(available_attacks())

    def test_attack_info_lists_available_on_miss(self):
        with pytest.raises(ValueError, match="single_sided"):
            attack_info("no_such_attack")

    def test_info_carries_schema(self):
        info = attack_info("many_sided")
        assert "aggs" in info.params
        assert info.params["aggs"].default == DEFAULT_MANY_AGGRESSORS


class TestSpecParsing:
    def test_bare_name(self):
        spec = parse_attack_spec("single_sided")
        assert spec == AttackSpec(name="single_sided")
        assert spec.canonical() == "single_sided"

    def test_params_coerced_and_sorted(self):
        spec = parse_attack_spec("many_sided@rounds=600, aggs=4")
        assert spec.params == (("aggs", 4), ("rounds", 600))
        assert spec.canonical() == "many_sided@aggs=4,rounds=600"

    def test_canonical_is_stable(self):
        a = canonical_attack_spec("many_sided@aggs=4,rounds=600")
        b = canonical_attack_spec("many_sided@rounds=600,aggs=4")
        assert a == b

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError, match="unknown attack"):
            parse_attack_spec("warp_drive@speed=9")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            parse_attack_spec("single_sided@sides=2")

    def test_empty_param_list_rejected(self):
        with pytest.raises(ValueError, match="empty parameter"):
            parse_attack_spec("single_sided@")

    def test_spec_passthrough(self):
        spec = AttackSpec(name="single_sided")
        assert parse_attack_spec(spec) is spec


class TestContext:
    def test_threshold_is_half_trh(self):
        assert AttackContext(trh=500).threshold == 250
        assert AttackContext(trh=1).threshold == 1

    def test_with_trh(self):
        ctx = AttackContext().with_trh(125)
        assert ctx.trh == 125
        assert ctx.geometry is PAPER_GEOMETRY

    def test_from_system_duck_typed(self):
        from repro.dram.timing import PAPER_TIMING

        class FakeConfig:
            geometry = PAPER_GEOMETRY
            timing = PAPER_TIMING
            trh = 700

        ctx = AttackContext.from_system(FakeConfig)
        assert ctx.trh == 700
        assert ctx.geometry is PAPER_GEOMETRY


class TestContextDefaults:
    """Default parameters derive from the context (threshold scaling)."""

    def test_single_sided_scales_with_threshold(self):
        ctx = AttackContext(trh=500)
        compiled = compile_attack("single_sided", ctx)
        assert compiled.activations == int(2.5 * ctx.threshold) + 8
        assert compiled.rows() == [5] * compiled.activations

    def test_many_sided_defaults(self):
        ctx = AttackContext(trh=500)
        compiled = compile_attack("many_sided", ctx)
        aggs = DEFAULT_MANY_AGGRESSORS
        rounds = int(1.25 * ctx.threshold) + 8
        assert compiled.rows() == [200 + i for i in range(aggs)] * rounds

    def test_many_sided_rounds_capped_at_high_rungs(self):
        ctx = AttackContext(trh=139_000)
        compiled = compile_attack("many_sided", ctx)
        assert compiled.activations <= MANY_ACT_CAP

    def test_random_defaults_match_arena_battery(self):
        import random as _random

        ctx = AttackContext(trh=500)
        compiled = compile_attack("random", ctx)
        length = min(4 * ctx.threshold, RANDOM_ACT_CAP)
        span = min(4096, ctx.geometry.total_rows)
        rng = _random.Random(RANDOM_SEED)
        assert compiled.rows() == [
            rng.randrange(span) for _ in range(length)
        ]

    def test_explicit_params_override_context(self):
        ctx = AttackContext(trh=500)
        compiled = compile_attack("single_sided@row=9,hammers=17", ctx)
        assert compiled.rows() == [9] * 17

    def test_refresh_sync_emits_sync_events(self):
        ctx = AttackContext(trh=500)
        compiled = compile_attack("refresh_sync@windows=3,hammers=10", ctx)
        assert compiled.syncs == 3
        assert compiled.activations == 30

    def test_build_attack_returns_program(self):
        ctx = AttackContext(trh=500)
        program = build_attack("double_sided", ctx)
        assert program.name == "double_sided"
        # Resolvable as-is: registry builders bind all placeholders.
        compile_attack("double_sided", ctx)

    def test_compile_bounds_checks_against_context_geometry(self):
        from repro.attacks.resolve import AttackBoundsError

        ctx = AttackContext(trh=500)
        top = ctx.geometry.total_rows - 1
        with pytest.raises(AttackBoundsError):
            compile_attack(f"double_sided@victim={top}", ctx)
        clamped = compile_attack(
            f"double_sided@victim={top}", ctx, bounds="clamp"
        )
        assert max(clamped.rows()) == top
