"""Tests for the seeded attack-program fuzzer."""

import pytest

from repro.attacks.compile import compile_program
from repro.attacks.fuzz import (
    FuzzReport,
    generate_program,
    run_fuzz,
)
from repro.attacks.registry import AttackContext
from repro.attacks.resolve import resolve
from repro.obs.manifest import read_fuzz_records
from repro.sim.config import SystemConfig

CONFIG = SystemConfig(scale=1 / 128, n_windows=1)
CTX = AttackContext.from_system(CONFIG)


class TestGenerateProgram:
    def test_same_seed_same_program(self):
        assert generate_program(7, CTX) == generate_program(7, CTX)

    def test_different_seeds_differ(self):
        corpus = {generate_program(s, CTX).render() for s in range(12)}
        assert len(corpus) > 1

    def test_programs_resolve_within_geometry(self):
        for seed in range(16):
            program = generate_program(seed, CTX)
            compiled = compile_program(
                resolve(program, geometry=CTX.geometry)
            )
            assert compiled.activations > 0
            assert all(
                0 <= r < CTX.geometry.total_rows
                for r in compiled.iter_rows()
            )

    def test_high_rung_generation_does_not_crash(self):
        ctx = CTX.with_trh(139_000)
        for seed in range(8):
            program = generate_program(seed, ctx)
            assert compile_program(resolve(program)).activations > 0

    def test_budget_bounds_activations(self):
        for seed in range(8):
            program = generate_program(seed, CTX, act_budget=500)
            compiled = compile_program(resolve(program))
            # Budget is per-phase after the threshold clamp; the total
            # can exceed one budget slightly (decoy tails) but stays
            # within the same order of magnitude.
            assert compiled.activations < 8 * (6 * CTX.threshold + 64)


class TestRunFuzz:
    def test_deterministic_and_quiet_on_secure_trackers(self, tmp_path):
        manifest = tmp_path / "fuzz.jsonl"
        kwargs = dict(
            trackers=["graphene", "baseline"],
            programs=3,
            corpus_seed=99,
            jobs=0,
            manifest_path=manifest,
        )
        report = run_fuzz(CONFIG, **kwargs)
        assert isinstance(report, FuzzReport)
        assert len(report.outcomes) == 6
        # Graphene is deterministic-secure: nothing flagged.
        assert not [o for o in report.flagged if o.spec == "graphene"]
        # Determinism: a second campaign reproduces the first.
        manifest2 = tmp_path / "fuzz2.jsonl"
        kwargs["manifest_path"] = manifest2
        report2 = run_fuzz(CONFIG, **kwargs)
        assert [o.to_dict() for o in report.outcomes] == [
            o.to_dict() for o in report2.outcomes
        ]

    def test_manifest_round_trips(self, tmp_path):
        manifest = tmp_path / "fuzz.jsonl"
        report = run_fuzz(
            CONFIG,
            trackers=["graphene"],
            programs=2,
            corpus_seed=5,
            jobs=0,
            manifest_path=manifest,
        )
        records, skipped = read_fuzz_records(manifest)
        assert skipped == 0
        assert len(records) == 2
        for record, outcome in zip(records, report.outcomes):
            assert record.kind == "fuzz-oracle"
            assert record.spec == outcome.spec
            assert record.program_seed == outcome.program_seed
            assert record.verdict == outcome.verdict

    def test_verdict_counts_partition_outcomes(self, tmp_path):
        report = run_fuzz(
            CONFIG,
            trackers=["baseline"],
            programs=2,
            corpus_seed=5,
            jobs=0,
            manifest_path=tmp_path / "m.jsonl",
        )
        counts = report.verdict_counts()
        assert sum(counts["baseline"].values()) == 2

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError, match="programs"):
            run_fuzz(CONFIG, programs=0)

    def test_report_to_dict_shape(self, tmp_path):
        report = run_fuzz(
            CONFIG,
            trackers=["graphene"],
            programs=1,
            corpus_seed=3,
            jobs=0,
            manifest_path=tmp_path / "m.jsonl",
        )
        payload = report.to_dict()
        assert payload["trackers"] == ["graphene"]
        assert payload["programs"] == 1
        assert len(payload["outcomes"]) == 1
        assert "verdicts" in payload
