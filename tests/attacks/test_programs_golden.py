"""Golden-parity tests: compiled programs vs the legacy generators.

The hand-written generators that used to live in
``repro.workloads.attacks`` are re-implemented here verbatim as
*reference* functions; every DSL program (and every legacy shim) must
reproduce their output bit-identically. This is the contract that let
the attack zoo be replaced by programs without touching a single
pinned harness outcome.
"""

import itertools

import numpy as np
import pytest

from repro.attacks.programs import (
    double_sided_program,
    half_double_program,
    many_sided_program,
    random_noise_program,
    rcc_thrash_program,
    rct_region_program,
    single_sided_program,
    thrash_then_hammer_program,
)
from repro.attacks.compile import compile_program
from repro.attacks.resolve import resolve
from repro.core.rct import RowCountTable
from repro.dram.timing import PAPER_GEOMETRY, DramGeometry
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


# ----------------------------------------------------------------------
# Reference implementations (the original generators, frozen)
# ----------------------------------------------------------------------


def ref_single_sided(aggressor, hammers):
    return [aggressor] * hammers


def ref_double_sided(victim, hammers_per_side):
    return [victim - 1, victim + 1] * hammers_per_side


def ref_many_sided(aggressors, rounds):
    return list(
        itertools.chain.from_iterable([list(aggressors)] * rounds)
    )


def ref_half_double(victim, far_hammers, near_ratio=1000):
    sequence = []
    near = [victim - 1, victim + 1]
    far = [victim - 2, victim + 2]
    for i in range(far_hammers):
        sequence.append(far[i % 2])
        if near_ratio and i % near_ratio == near_ratio - 1:
            sequence.append(near[(i // near_ratio) % 2])
    return sequence


def ref_thrash_then_hammer(aggressor, decoy_rows, hammers, interleave=1):
    sequence = []
    decoys = list(decoy_rows)
    for i in range(hammers):
        sequence.append(aggressor)
        if decoys and i % interleave == 0:
            sequence.extend(decoys)
    return sequence


def ref_rcc_thrash(geometry, target_rows, rounds, seed=11):
    rng = np.random.default_rng(seed)
    rows = rng.choice(
        geometry.total_rows // 2, size=target_rows, replace=False
    )
    sequence = []
    for _ in range(rounds):
        rng.shuffle(rows)
        sequence.extend(int(r) for r in rows)
    return sequence


def ref_rct_region_attack(geometry, hammers, counter_bytes=1):
    table = RowCountTable(geometry, counter_bytes=counter_bytes)
    base = table.meta_base_local
    meta_rows = [
        bank * geometry.rows_per_bank + base + offset
        for bank in range(min(2, geometry.total_banks))
        for offset in range(table.meta_rows_per_bank)
    ]
    first_two = meta_rows[:2] if len(meta_rows) >= 2 else meta_rows
    return list(itertools.islice(itertools.cycle(first_two), hammers))


def rows_of(program):
    return compile_program(resolve(program)).rows()


class TestProgramParity:
    """DSL programs compile to the reference outputs bit-identically."""

    @pytest.mark.parametrize("hammers", [0, 1, 100, 1259])
    def test_single_sided(self, hammers):
        assert rows_of(single_sided_program(5, hammers)) == (
            ref_single_sided(5, hammers)
        )

    @pytest.mark.parametrize("hammers", [0, 1, 37, 640])
    def test_double_sided(self, hammers):
        assert rows_of(double_sided_program(50, hammers)) == (
            ref_double_sided(50, hammers)
        )

    @pytest.mark.parametrize(
        "aggressors,rounds",
        [([7], 3), ([200 + i for i in range(18)], 55), ([1, 2, 3], 0)],
    )
    def test_many_sided(self, aggressors, rounds):
        assert rows_of(many_sided_program(aggressors, rounds)) == (
            ref_many_sided(aggressors, rounds)
        )

    @pytest.mark.parametrize(
        "far_hammers,near_ratio",
        [(0, 1000), (250, 0), (5007, 100), (2500, 1000), (3, 1)],
    )
    def test_half_double(self, far_hammers, near_ratio):
        assert rows_of(
            half_double_program(500, far_hammers, near_ratio)
        ) == ref_half_double(500, far_hammers, near_ratio)

    @pytest.mark.parametrize(
        "decoys,hammers,interleave",
        [([], 10, 1), (range(100, 140), 333, 7), ([9], 5, 1)],
    )
    def test_thrash_then_hammer(self, decoys, hammers, interleave):
        assert rows_of(
            thrash_then_hammer_program(5, decoys, hammers, interleave)
        ) == ref_thrash_then_hammer(5, decoys, hammers, interleave)

    @pytest.mark.parametrize("target_rows,rounds", [(50, 3), (1, 1), (64, 0)])
    def test_rcc_thrash(self, target_rows, rounds):
        assert rows_of(
            rcc_thrash_program(GEOMETRY, target_rows, rounds, seed=11)
        ) == ref_rcc_thrash(GEOMETRY, target_rows, rounds, seed=11)

    @pytest.mark.parametrize("hammers", [0, 1, 2, 101, 10])
    @pytest.mark.parametrize("geometry", [GEOMETRY, PAPER_GEOMETRY])
    def test_rct_region(self, geometry, hammers):
        assert rows_of(rct_region_program(geometry, hammers)) == (
            ref_rct_region_attack(geometry, hammers)
        )

    def test_random_noise_matches_arena_battery(self):
        import random as _random

        rng = _random.Random(0xA12E5A)
        expected = [rng.randrange(4096) for _ in range(2000)]
        assert rows_of(
            random_noise_program(2000, 4096, 0xA12E5A)
        ) == expected


class TestShimParity:
    """The legacy facade returns the reference outputs (and raises the
    historical validation errors)."""

    def test_outputs_match_references(self):
        assert attacks.single_sided(5, 100) == ref_single_sided(5, 100)
        assert attacks.double_sided(50, 37) == ref_double_sided(50, 37)
        assert attacks.many_sided([1, 5, 9], 4) == ref_many_sided(
            [1, 5, 9], 4
        )
        assert attacks.half_double(500, 2500) == ref_half_double(500, 2500)
        assert attacks.thrash_then_hammer(
            5, range(20, 30), 33, 3
        ) == ref_thrash_then_hammer(5, range(20, 30), 33, 3)
        assert attacks.rcc_thrash(GEOMETRY, 50, 3) == ref_rcc_thrash(
            GEOMETRY, 50, 3
        )
        assert attacks.rct_region_attack(
            GEOMETRY, 101
        ) == ref_rct_region_attack(GEOMETRY, 101)

    def test_historical_validation_errors(self):
        with pytest.raises(ValueError):
            attacks.single_sided(5, -1)
        with pytest.raises(ValueError):
            attacks.double_sided(0, 5)
        with pytest.raises(ValueError):
            attacks.many_sided([], 5)
        with pytest.raises(ValueError):
            attacks.half_double(1, 5)
        with pytest.raises(ValueError):
            attacks.thrash_then_hammer(5, [1], 5, interleave=0)


class TestShimBounds:
    """The new optional geometry validation (the silent-bounds bugfix)."""

    def test_double_sided_top_row_raises_with_geometry(self):
        from repro.attacks.resolve import AttackBoundsError

        top = GEOMETRY.total_rows - 1
        with pytest.raises(AttackBoundsError):
            attacks.double_sided(top, 2, geometry=GEOMETRY)

    def test_double_sided_top_row_clamps_on_request(self):
        top = GEOMETRY.total_rows - 1
        rows = attacks.double_sided(top, 2, geometry=GEOMETRY, bounds="clamp")
        assert rows == [top - 1, top, top - 1, top]
        assert max(rows) < GEOMETRY.total_rows

    def test_without_geometry_keeps_historical_behaviour(self):
        top = GEOMETRY.total_rows - 1
        rows = attacks.double_sided(top, 1)
        assert rows == [top - 1, top + 1]  # out of range, as ever

    def test_rct_region_validates_unconditionally(self):
        # The meta rows live inside the geometry; this must not raise.
        rows = attacks.rct_region_attack(GEOMETRY, 10)
        assert all(0 <= r < GEOMETRY.total_rows for r in rows)
