"""Cross-module integration tests: full trace -> core -> DRAM paths."""

import pytest

from repro.analysis.security import verify_tracker
from repro.core.hydra import HydraTracker
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.sim.sweep import ExperimentRunner
from repro.workloads import attacks
from repro.workloads.trace import Trace

CONFIG = SystemConfig(scale=1 / 128, n_windows=1)


class TestWorkloadPipeline:
    """Generator -> simulator -> results, on one real workload."""

    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        return ExperimentRunner(
            CONFIG, cache_dir=tmp_path_factory.mktemp("cache")
        )

    def test_hydra_close_to_baseline(self, runner):
        comp = runner.compare("hydra", ["xz"])[0]
        assert comp.slowdown_percent < 10.0

    def test_cra_slower_than_hydra(self, runner):
        hydra = runner.compare("hydra", ["xz"])[0]
        cra = runner.compare("cra", ["xz"])[0]
        assert cra.slowdown_percent > hydra.slowdown_percent

    def test_hydra_distribution_dominated_by_gct(self, runner):
        result = runner.run("hydra", "xz")
        dist = result.extra["distribution"]
        assert dist["gct_only"] > 0.5
        assert dist["rct_access"] < 0.1

    def test_mitigations_fire_on_hot_workload(self, runner):
        """xz has many 250+-ACT rows: mitigation activity expected."""
        result = runner.run("hydra", "xz")
        assert result.mitigations > 0
        assert result.victim_refreshes >= result.mitigations


class TestAttackThroughFullSystem:
    """Attack trace through the timing simulator (not just the
    functional harness): mitigations must still fire."""

    def test_single_sided_hammering_needs_alternation(self):
        """Back-to-back accesses to one row are row-buffer hits — a
        single activation, no hammering. The timing model captures
        this physical fact."""
        sequence = attacks.single_sided(5, 4000)
        trace = Trace.from_rows(sequence, gap_ns=50.0)
        result = simulate(trace, CONFIG, "hydra")
        assert result.activations < 10
        assert result.mitigations == 0

    def test_double_sided_attack_mitigated_in_timing_sim(self):
        """Alternating aggressors force an ACT per access — the real
        hammering pattern — and must draw mitigations."""
        sequence = attacks.double_sided(500, 2000)
        trace = Trace.from_rows(sequence, gap_ns=50.0)
        tracker = HydraTracker(CONFIG.hydra_config())
        result = simulate(trace, CONFIG, tracker=tracker)
        # ~2000 activations per aggressor at T_H = 250.
        assert result.mitigations >= 10

    def test_half_double_attack_mitigated(self):
        sequence = attacks.half_double(500, 4000)
        trace = Trace.from_rows(sequence, gap_ns=50.0)
        tracker = HydraTracker(CONFIG.hydra_config())
        result = simulate(trace, CONFIG, tracker=tracker)
        assert result.mitigations > 0


class TestFunctionalVsTimingConsistency:
    def test_same_mitigation_count_both_paths(self):
        """The functional harness and the timing simulator agree on
        Hydra's mitigation count for the same activation sequence
        (with mitigation feedback disabled to align semantics —
        feedback rows differ only via blast-radius bookkeeping). The
        sequence alternates two distant aggressors so that every
        access is a true activation in the timing model too."""
        sequence = attacks.double_sided(500, 1500)
        functional = HydraTracker(CONFIG.hydra_config())
        report = verify_tracker(
            functional,
            CONFIG.geometry,
            sequence,
            CONFIG.hydra_config().th,
        )
        assert report.secure

        timing_tracker = HydraTracker(CONFIG.hydra_config())
        trace = Trace.from_rows(sequence, gap_ns=50.0)
        result = simulate(trace, CONFIG, tracker=timing_tracker)
        assert result.mitigations == pytest.approx(
            report.mitigations, rel=0.2
        )


class TestEveryTrackerEndToEnd:
    @pytest.mark.parametrize(
        "name",
        ["baseline", "hydra", "hydra-nogct", "hydra-norcc",
         "graphene", "cra", "ocpr", "para", "dcbf"],
    )
    def test_runs_clean(self, name):
        trace = Trace.from_rows(
            [i % 200 for i in range(1500)], gap_ns=20.0
        )
        result = simulate(trace, CONFIG, name)
        assert result.end_time_ns > 0
        assert result.requests == 1500
