"""Tests for the Row-Count Cache (row-tagged, SRRIP)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rcc import RowCountCache


class TestBasicOperation:
    def test_miss_then_hit(self):
        rcc = RowCountCache(entries=16, ways=4)
        assert rcc.lookup(7) is None
        rcc.install(7, 42)
        assert rcc.lookup(7) == 42
        assert rcc.hits == 1
        assert rcc.misses == 1

    def test_write_updates_resident_entry(self):
        rcc = RowCountCache(entries=16, ways=4)
        rcc.install(7, 1)
        rcc.write(7, 99)
        assert rcc.lookup(7) == 99

    def test_write_to_absent_row_raises(self):
        rcc = RowCountCache(entries=16, ways=4)
        with pytest.raises(KeyError):
            rcc.write(7, 1)

    def test_install_into_free_way_evicts_nothing(self):
        rcc = RowCountCache(entries=16, ways=4)
        assert rcc.install(7, 1) is None

    def test_eviction_returns_dirty_victim(self):
        rcc = RowCountCache(entries=4, ways=4)  # single set
        for row in range(4):
            rcc.install(row, row * 10)
        victim = rcc.install(99, 5)
        assert victim is not None
        victim_row, victim_count = victim
        assert victim_row in range(4)
        assert victim_count == victim_row * 10
        assert rcc.evictions == 1

    def test_reinstall_resident_row_keeps_capacity(self):
        rcc = RowCountCache(entries=4, ways=4)
        rcc.install(1, 10)
        assert rcc.install(1, 20) is None
        assert rcc.lookup(1) == 20
        assert rcc.occupancy() == 1


class TestSetMapping:
    def test_rows_map_by_modulo(self):
        rcc = RowCountCache(entries=8, ways=2)  # 4 sets
        # Rows 0 and 4 collide; 0,4,8 overflow the 2-way set.
        rcc.install(0, 1)
        rcc.install(4, 2)
        victim = rcc.install(8, 3)
        assert victim is not None

    def test_different_sets_do_not_interfere(self):
        rcc = RowCountCache(entries=8, ways=2)
        rcc.install(0, 1)
        rcc.install(1, 2)
        rcc.install(2, 3)
        assert rcc.occupancy() == 3
        assert rcc.evictions == 0


class TestSrrip:
    def test_recently_hit_entry_survives(self):
        rcc = RowCountCache(entries=4, ways=4)
        for row in range(4):
            rcc.install(row, row)
        rcc.lookup(0)  # promote row 0 (RRPV -> 0)
        victim_row, _ = rcc.install(99, 0)
        assert victim_row != 0

    def test_victim_is_stale_insertion(self):
        rcc = RowCountCache(entries=4, ways=4)
        for row in range(4):
            rcc.install(row, row)
        for row in range(3):
            rcc.lookup(row)  # rows 0-2 promoted, row 3 stale
        victim_row, _ = rcc.install(99, 0)
        assert victim_row == 3

    def test_aging_terminates_when_no_entry_is_distant(self):
        """Regression: victim selection must age the set until an
        RRPV-max entry appears, even when every entry was just
        promoted to RRPV 0 (near-immediate re-reference)."""
        rcc = RowCountCache(entries=4, ways=4)
        for row in range(4):
            rcc.install(row, row)
            rcc.lookup(row)  # all four at RRPV 0
        victim = rcc.install(99, 0)
        assert victim is not None  # selection terminated
        assert rcc.occupancy() == 4

    def test_insertion_rrpv_ages_out_before_promoted_entries(self):
        """Regression: a fresh insertion (RRPV 2) reaches RRPV-max
        before promoted entries (RRPV 0), so one aging round evicts
        the never-reused newcomer, not the hot rows."""
        rcc = RowCountCache(entries=4, ways=4)
        for row in range(3):
            rcc.install(row, row)
            rcc.lookup(row)  # rows 0-2 hot (RRPV 0)
        rcc.install(3, 30)  # newcomer at insertion RRPV 2
        victim_row, victim_count = rcc.install(99, 0)
        assert victim_row == 3
        assert victim_count == 30
        for row in range(3):
            assert rcc.contains(row)

    def test_reinstall_refreshes_srrip_state(self):
        """Regression: re-installing a resident row resets its RRPV to
        the insertion value, making it the eviction candidate again
        relative to promoted peers."""
        rcc = RowCountCache(entries=4, ways=4)
        for row in range(4):
            rcc.install(row, row)
            rcc.lookup(row)  # everyone hot
        rcc.install(2, 20)  # demote row 2 back to insertion RRPV
        victim_row, _ = rcc.install(99, 0)
        assert victim_row == 2


class TestReset:
    def test_reset_drops_everything(self):
        rcc = RowCountCache(entries=16, ways=4)
        for row in range(10):
            rcc.install(row, row)
        rcc.reset()
        assert rcc.occupancy() == 0
        assert rcc.lookup(0) is None


class TestStorage:
    def test_table4_rcc_cost(self):
        """Table 4: 8K entries x 3 bytes = 24 KB."""
        assert RowCountCache(entries=8192, ways=16).sram_bytes() == 24 * 1024


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            RowCountCache(entries=0, ways=4)
        with pytest.raises(ValueError):
            RowCountCache(entries=10, ways=4)


class TestCapacityInvariant:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=250),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_capacity(self, operations):
        rcc = RowCountCache(entries=16, ways=4)
        for row, count in operations:
            if rcc.lookup(row) is None:
                rcc.install(row, count)
            else:
                rcc.write(row, count)
            assert rcc.occupancy() <= rcc.entries
            for set_index in range(rcc.sets):
                assert len(rcc._data[set_index]) <= rcc.ways


class TestIncrementIfPresent:
    """The fused hit path must be indistinguishable from lookup+write."""

    def test_hit_increments_and_returns_new_count(self):
        rcc = RowCountCache(entries=16, ways=4)
        rcc.install(5, 7)
        assert rcc.increment_if_present(5) == 8
        assert rcc.lookup(5) == 8

    def test_miss_counts_and_modifies_nothing(self):
        rcc = RowCountCache(entries=16, ways=4)
        assert rcc.increment_if_present(3) is None
        assert rcc.misses == 1
        assert rcc.hits == 0
        assert rcc.occupancy() == 0

    def test_hit_promotes_srrip_like_lookup(self):
        """A fused hit must leave the entry at RRPV 0 (near-immediate
        re-reference), exactly as a plain lookup would — otherwise the
        replacement order diverges from the unfused code."""
        rcc = RowCountCache(entries=4, ways=4)
        for row in range(4):
            rcc.install(row, 0)
        rcc.increment_if_present(0)  # promote row 0
        # Fill pressure: the promoted row must survive the eviction
        # that installing a fifth row forces.
        rcc.install(4, 0)
        assert rcc.contains(0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),
                st.booleans(),  # True -> fused, False -> lookup+write
            ),
            max_size=300,
        )
    )
    @settings(max_examples=60)
    def test_equivalent_to_lookup_then_write(self, operations):
        """Differential: two caches fed the same rows, one through the
        fused entry point and one through lookup()+write(count+1),
        must agree on contents, SRRIP state, and hit/miss/eviction
        accounting at every step."""
        fused = RowCountCache(entries=16, ways=4)
        plain = RowCountCache(entries=16, ways=4)
        for row, use_fused in operations:
            if use_fused:
                got = fused.increment_if_present(row)
            else:
                count = fused.lookup(row)
                if count is None:
                    got = None
                else:
                    fused.write(row, count + 1)
                    got = count + 1
            count = plain.lookup(row)
            if count is None:
                expected = None
            else:
                plain.write(row, count + 1)
                expected = count + 1
            if got is None:
                # Both missed: install so later ops exercise hits too.
                assert expected is None
                fused.install(row, 0)
                plain.install(row, 0)
            else:
                assert got == expected
            assert fused._data == plain._data
            assert (fused.hits, fused.misses, fused.evictions) == (
                plain.hits,
                plain.misses,
                plain.evictions,
            )
