"""Tests for HydraConfig parameter derivation and validation."""

import pytest

from repro.core.config import HydraConfig
from repro.dram.timing import PAPER_GEOMETRY


class TestDefaults:
    def test_paper_design_point(self):
        cfg = HydraConfig()
        assert cfg.trh == 500
        assert cfg.th == 250  # T_H = T_RH / 2 (§4.6)
        assert cfg.tg == 200  # 80% of T_H (§6.6)
        assert cfg.gct_entries == 32768
        assert cfg.rcc_entries == 8192

    def test_group_size_is_128_rows(self):
        """4M rows / 32K GCT entries = 128-row groups (§4.4)."""
        assert HydraConfig().group_size == 128

    def test_rcc_sets(self):
        assert HydraConfig().rcc_sets == 8192 // 16


class TestValidation:
    def test_rejects_tiny_trh(self):
        with pytest.raises(ValueError):
            HydraConfig(trh=2)

    def test_rejects_non_power_of_two_gct(self):
        with pytest.raises(ValueError):
            HydraConfig(gct_entries=30000)

    def test_rejects_rcc_not_divisible_by_ways(self):
        with pytest.raises(ValueError):
            HydraConfig(rcc_entries=100, rcc_ways=16)

    def test_rejects_bad_tg_fraction(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                HydraConfig(tg_fraction=bad)

    def test_rejects_gct_larger_than_rows(self):
        with pytest.raises(ValueError):
            HydraConfig(gct_entries=PAPER_GEOMETRY.total_rows * 2)

    def test_rejects_negative_blast_radius(self):
        with pytest.raises(ValueError):
            HydraConfig(blast_radius=-1)


class TestScaling:
    def test_scaled_preserves_group_size(self):
        cfg = HydraConfig().scaled(1 / 32)
        assert cfg.group_size == 128

    def test_scaled_preserves_thresholds(self):
        cfg = HydraConfig().scaled(1 / 32)
        assert cfg.th == 250
        assert cfg.tg == 200

    def test_scaled_preserves_rows_to_rcc_ratio(self):
        full = HydraConfig()
        scaled = full.scaled(1 / 32)
        full_ratio = full.geometry.total_rows / full.rcc_entries
        scaled_ratio = scaled.geometry.total_rows / scaled.rcc_entries
        assert scaled_ratio == pytest.approx(full_ratio, rel=0.1)

    def test_scale_one_is_identity(self):
        assert HydraConfig().scaled(1.0).gct_entries == 32768

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            HydraConfig().scaled(0.0)
        with pytest.raises(ValueError):
            HydraConfig().scaled(2.0)


class TestThresholdRetargeting:
    def test_figure7_scaling(self):
        """Figure 7: structures scale 2x at T_RH=250, 4x at 125."""
        cfg = HydraConfig().with_threshold(250, structure_scale=2)
        assert cfg.trh == 250
        assert cfg.th == 125
        assert cfg.gct_entries == 65536
        assert cfg.rcc_entries == 16384

    def test_gct_capped_at_row_count(self):
        cfg = HydraConfig().with_threshold(125, structure_scale=256)
        assert cfg.gct_entries <= cfg.geometry.total_rows

    def test_rejects_zero_structure_scale(self):
        with pytest.raises(ValueError):
            HydraConfig().with_threshold(250, structure_scale=0)
