"""Tests for Hydra's Table 4 storage accounting."""

import pytest

from repro.core.config import HydraConfig
from repro.core.storage import hydra_storage


class TestTable4:
    def test_paper_breakdown_exact(self):
        """Table 4: GCT 32 KB + RCC 24 KB + RIT-ACT 0.5 KB = 56.5 KB."""
        report = hydra_storage(HydraConfig())
        assert report.gct_bytes == 32 * 1024
        assert report.rcc_bytes == 24 * 1024
        assert report.rit_act_bytes == 512
        assert report.sram_total_kib == pytest.approx(56.5)

    def test_dram_reservation_is_4mb(self):
        report = hydra_storage(HydraConfig())
        assert report.dram_reserved_bytes == 4 * 1024 * 1024

    def test_rows_formatting(self):
        rows = hydra_storage(HydraConfig()).rows()
        assert rows["Total"] == "56.5 KB"
        assert rows["GCT"] == "32.0 KB"

    def test_ablations_drop_structures(self):
        nogct = hydra_storage(HydraConfig(enable_gct=False))
        assert nogct.gct_bytes == 0
        norcc = hydra_storage(HydraConfig(enable_rcc=False))
        assert norcc.rcc_bytes == 0

    def test_scaling_with_structures(self):
        """Figure 7: 2x structures at T_RH=250 roughly doubles SRAM."""
        base = hydra_storage(HydraConfig())
        doubled = hydra_storage(
            HydraConfig().with_threshold(250, structure_scale=2)
        )
        assert doubled.gct_bytes == 2 * base.gct_bytes
        assert doubled.rcc_bytes == 2 * base.rcc_bytes

    def test_wider_counters_at_higher_threshold(self):
        """Above T_H=255 the RCT needs 2-byte counters: more meta rows."""
        base = hydra_storage(HydraConfig(trh=500))
        wide = hydra_storage(HydraConfig(trh=1000))
        assert wide.rit_act_bytes == 2 * base.rit_act_bytes
        assert wide.dram_reserved_bytes == 2 * base.dram_reserved_bytes
