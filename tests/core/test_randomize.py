"""Tests for the randomized row-to-group mapping (footnote 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.security import verify_tracker
from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.core.randomize import FeistelPermutation
from repro.dram.timing import DramGeometry
from repro.workloads import attacks

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestFeistelPermutation:
    @pytest.mark.parametrize("n", [2, 7, 100, 1024, 4096, 100_000])
    def test_is_a_bijection(self, n):
        perm = FeistelPermutation(n, key=42)
        sample = range(n) if n <= 4096 else range(0, n, 97)
        images = {perm.permute(v) for v in sample}
        assert len(images) == len(list(sample))
        assert all(0 <= image < n for image in images)

    def test_full_domain_bijection_odd_bits(self):
        """17-bit-style odd-width domains must still be bijective
        (cycle-walking over the widened even-bit domain)."""
        n = 1 << 7  # 7 bits -> widened to 8
        perm = FeistelPermutation(n, key=1)
        assert sorted(perm.permute(v) for v in range(n)) == list(range(n))

    def test_deterministic_per_key(self):
        a = FeistelPermutation(1024, key=5)
        b = FeistelPermutation(1024, key=5)
        assert [a.permute(i) for i in range(50)] == [
            b.permute(i) for i in range(50)
        ]

    def test_different_keys_differ(self):
        a = FeistelPermutation(4096, key=5)
        b = FeistelPermutation(4096, key=6)
        outputs_a = [a.permute(i) for i in range(256)]
        outputs_b = [b.permute(i) for i in range(256)]
        assert outputs_a != outputs_b

    def test_scrambles_group_neighbourhoods(self):
        """Consecutive rows must not stay in one 128-row group."""
        perm = FeistelPermutation(1 << 20, key=9)
        groups = {perm.permute(i) >> 7 for i in range(128)}
        assert len(groups) > 64

    def test_rekeyed(self):
        perm = FeistelPermutation(1024, key=5)
        fresh = perm.rekeyed(6)
        assert fresh.n_values == 1024
        assert fresh.key == 6

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FeistelPermutation(0, key=1)
        with pytest.raises(ValueError):
            FeistelPermutation(10, key=1).permute(10)

    @given(st.integers(min_value=1, max_value=10_000), st.integers())
    @settings(max_examples=50)
    def test_permute_stays_in_domain(self, n, key):
        perm = FeistelPermutation(n, key=key)
        assert 0 <= perm.permute(n - 1) < n
        assert 0 <= perm.permute(0) < n


class TestRandomizedHydra:
    def make(self, **overrides) -> HydraTracker:
        defaults = dict(
            geometry=GEOMETRY,
            trh=100,
            gct_entries=16,
            rcc_entries=8,
            rcc_ways=4,
            randomize_mapping=True,
        )
        defaults.update(overrides)
        return HydraTracker(HydraConfig(**defaults))

    def test_mitigation_names_physical_row(self):
        tracker = self.make()
        response = None
        for _ in range(tracker.th * 3):
            response = tracker.on_activation(5) or response
            if response and response.mitigate_rows:
                break
        assert response.mitigate_rows == (5,)

    def test_theorem1_still_holds(self):
        tracker = self.make()
        report = verify_tracker(
            tracker, GEOMETRY, attacks.double_sided(500, 1500), tracker.th
        )
        assert report.secure

    def test_theorem1_across_rekeying(self):
        tracker = self.make()
        report = verify_tracker(
            tracker,
            GEOMETRY,
            attacks.single_sided(5, 4000),
            tracker.th,
            window_every=1200,
        )
        assert report.secure

    def test_rekey_changes_group_membership(self):
        tracker = self.make()
        before = tracker._permutation.permute(5)
        tracker.on_window_reset()
        after = tracker._permutation.permute(5)
        # Extremely likely to differ (1/2048 collision chance).
        assert before != after or tracker._permutation.key != 0

    def test_mitigation_rate_matches_static_design(self):
        """Paper: randomized design performs within ~0.1% of static —
        at tracker level, mitigation counts should match closely."""
        sequence = attacks.double_sided(500, 2000)
        static = HydraTracker(
            HydraConfig(
                geometry=GEOMETRY, trh=100, gct_entries=16,
                rcc_entries=8, rcc_ways=4,
            )
        )
        randomized = self.make()
        for row in sequence:
            static.on_activation(row)
            randomized.on_activation(row)
        assert randomized.stats.mitigations == pytest.approx(
            static.stats.mitigations, abs=2
        )
