"""Tests for the Group-Count Table, including the Lemma-1 property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gct import GroupCountTable


def make_gct(entries=8, threshold=10, group_size=16) -> GroupCountTable:
    return GroupCountTable(entries, threshold, group_size)


class TestIndexing:
    def test_rows_with_same_msbs_share_group(self):
        gct = make_gct(group_size=16)
        assert gct.group_of(0) == gct.group_of(15)
        assert gct.group_of(15) != gct.group_of(16)

    def test_group_of_matches_update_target(self):
        gct = make_gct()
        gct.update(33)
        assert gct.value(33) == 1
        assert gct.value(32) == 1  # same group
        assert gct.value(48) == 0  # next group


class TestUpdateSemantics:
    def test_counts_up_to_threshold(self):
        gct = make_gct(threshold=3)
        assert gct.update(0) == 1
        assert gct.update(0) == 2
        assert gct.update(0) == 3  # saturation on THIS update

    def test_saturated_sentinel(self):
        gct = make_gct(threshold=3)
        for _ in range(3):
            gct.update(0)
        assert gct.update(0) == 4  # threshold + 1 sentinel
        assert gct.value(0) == 3  # counter itself stays at T_G

    def test_saturation_counted_once(self):
        gct = make_gct(threshold=2)
        gct.update(0)
        gct.update(0)
        gct.update(0)
        assert gct.saturated_groups == 1

    def test_is_saturated(self):
        gct = make_gct(threshold=2)
        assert not gct.is_saturated(5)
        gct.update(5)
        gct.update(5)
        assert gct.is_saturated(5)

    def test_groups_independent(self):
        gct = make_gct(threshold=2, group_size=16)
        gct.update(0)
        gct.update(0)
        assert not gct.is_saturated(16)


class TestReset:
    def test_reset_clears_counts_and_saturation(self):
        gct = make_gct(threshold=1)
        gct.update(0)
        gct.reset()
        assert gct.value(0) == 0
        assert gct.saturated_groups == 0
        assert gct.update(0) == 1


class TestStorage:
    def test_one_byte_entries_at_default_tg(self):
        """Table 4: 32K entries at T_G=200 cost 32 KB."""
        gct = GroupCountTable(32768, 200, 128)
        assert gct.sram_bytes() == 32 * 1024

    def test_wider_entries_above_255(self):
        gct = GroupCountTable(1024, 400, 128)
        assert gct.sram_bytes() == 2048


class TestValidation:
    def test_rejects_non_power_of_two_group(self):
        with pytest.raises(ValueError):
            GroupCountTable(8, 10, 100)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GroupCountTable(0, 10, 16)
        with pytest.raises(ValueError):
            GroupCountTable(8, 0, 16)


class TestLemma1Property:
    """Lemma-1: while a group is below T_G, its GCT value is >= the
    true activation count of every individual row in the group."""

    @given(
        st.lists(
            st.integers(min_value=0, max_value=127), min_size=1, max_size=400
        )
    )
    @settings(max_examples=100)
    def test_gct_value_bounds_every_row_count(self, activations):
        threshold = 50
        gct = GroupCountTable(entries=8, threshold=threshold, group_size=16)
        true_counts = {}
        for row in activations:
            state = gct.update(row)
            true_counts[row] = true_counts.get(row, 0) + 1
            if state <= threshold:
                # Group not yet saturated: GCT value must dominate
                # every row's true count in the group.
                group = gct.group_of(row)
                for other, count in true_counts.items():
                    if gct.group_of(other) == group:
                        assert gct.value(other) >= count

    @given(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=600
        ),
        st.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=60)
    def test_unsaturated_group_implies_no_row_reached_threshold(
        self, activations, threshold
    ):
        """Lemma-1's safety contrapositive, across every group at
        once: any row with true count >= T_G must live in a group the
        GCT reports saturated — no hot row hides below saturation."""
        gct = GroupCountTable(entries=16, threshold=threshold, group_size=16)
        true_counts = {}
        for row in activations:
            gct.update(row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, count in true_counts.items():
            if count >= threshold:
                assert gct.is_saturated(row)
            if not gct.is_saturated(row):
                assert gct.value(row) >= count


class _ReferenceGct:
    """The original list-of-ints GCT, kept as a differential oracle.

    The shipping class stores counters in a compact ``array('Q')``
    with a memcpy reset; this reference reproduces the pre-array
    semantics with plain Python lists so the hypothesis test below can
    assert the backends are indistinguishable update-for-update.
    """

    def __init__(self, entries, threshold, group_size):
        self.threshold = threshold
        self._shift = group_size.bit_length() - 1
        self._counts = [0] * entries
        self.saturated_groups = 0

    def update(self, row_id):
        group = row_id >> self._shift
        value = self._counts[group]
        if value >= self.threshold:
            return self.threshold + 1
        value += 1
        self._counts[group] = value
        if value == self.threshold:
            self.saturated_groups += 1
        return value

    def value(self, row_id):
        return self._counts[row_id >> self._shift]

    def is_saturated(self, row_id):
        return self._counts[row_id >> self._shift] >= self.threshold

    def reset(self):
        self._counts = [0] * len(self._counts)
        self.saturated_groups = 0


class TestArrayBackend:
    """The array('Q') backing must be invisible to callers."""

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=127),  # update(row)
                st.just("reset"),
            ),
            max_size=400,
        ),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60)
    def test_matches_reference_list_semantics(self, ops, threshold):
        gct = GroupCountTable(entries=8, threshold=threshold, group_size=16)
        ref = _ReferenceGct(entries=8, threshold=threshold, group_size=16)
        for op in ops:
            if op == "reset":
                gct.reset()
                ref.reset()
            else:
                assert gct.update(op) == ref.update(op)
            assert gct.saturated_groups == ref.saturated_groups
        for row in range(128):
            assert gct.value(row) == ref.value(row)
            assert gct.is_saturated(row) == ref.is_saturated(row)

    def test_reset_preserves_backing_identity(self):
        """Hot loops hoist a reference to the counter array; a window
        reset must zero it in place, not rebind a fresh buffer."""
        gct = make_gct(threshold=3)
        backing = gct._counts
        for _ in range(3):
            gct.update(0)
        gct.reset()
        assert gct._counts is backing
        assert gct.value(0) == 0
        assert gct.saturated_groups == 0

    def test_huge_threshold_falls_back_to_list(self):
        """Thresholds beyond uint64 use plain Python ints (general
        correctness; never a hardware-relevant point)."""
        big = 2**64
        gct = GroupCountTable(entries=4, threshold=big, group_size=16)
        assert isinstance(gct._counts, list)
        assert gct.update(0) == 1
        gct.reset()
        assert gct.value(0) == 0

    def test_saturating_update_resumes_after_reset(self):
        gct = make_gct(threshold=2)
        assert gct.update(0) == 1
        assert gct.update(0) == 2  # saturates
        assert gct.update(0) == 3  # sentinel
        gct.reset()
        assert gct.update(0) == 1  # counts again from zero
