"""Tests for the assembled Hydra tracker (Figure 4 paths, §4.5-4.6)."""

import pytest

from repro.core.config import HydraConfig
from repro.core.hydra import HydraTracker
from repro.dram.timing import DramGeometry

GEOMETRY = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


def make_tracker(**overrides) -> HydraTracker:
    defaults = dict(
        geometry=GEOMETRY,
        trh=100,  # T_H = 50, T_G = 40
        gct_entries=16,  # groups of 128 rows
        rcc_entries=8,
        rcc_ways=4,
    )
    defaults.update(overrides)
    return HydraTracker(HydraConfig(**defaults))


def saturate_group(tracker: HydraTracker, row: int):
    """Drive the row's group to T_G; returns the saturating response."""
    response = None
    for _ in range(tracker.tg):
        response = tracker.on_activation(row)
    return response


class TestGctPath:
    def test_cold_rows_filtered_silently(self):
        tracker = make_tracker()
        for i in range(tracker.tg - 1):
            assert tracker.on_activation(0) is None
        assert tracker.stats.gct_only == tracker.tg - 1

    def test_group_init_on_saturation(self):
        tracker = make_tracker()
        response = saturate_group(tracker, 0)
        assert response is not None
        assert response.mitigate_rows == ()
        # Two line reads + two line writes of RCT initialization.
        assert len(response.meta_accesses) == 2
        assert sum(a.n_lines for a in response.meta_accesses) == 4
        assert tracker.stats.group_inits == 1

    def test_rct_initialized_to_tg(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        assert all(tracker.rct.read(r) == tracker.tg for r in range(128))

    def test_shared_group_counting(self):
        """Rows of one group share the counter (aggregate tracking)."""
        tracker = make_tracker()
        for _ in range(tracker.tg // 2):
            tracker.on_activation(0)
            tracker.on_activation(1)
        assert tracker.gct.is_saturated(0)


class TestPerRowPath:
    def test_rcc_miss_then_hits(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        first = tracker.on_activation(0)  # RCC miss: fetch from RCT
        assert first is not None
        assert any(not a.is_write for a in first.meta_accesses)
        assert tracker.stats.rct_accesses == 1
        before = tracker.stats.rcc_hits
        assert tracker.on_activation(0) is None  # now cached
        assert tracker.stats.rcc_hits == before + 1

    def test_mitigation_at_th(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        mitigations = []
        for _ in range(tracker.th - tracker.tg):
            response = tracker.on_activation(0)
            if response and response.mitigate_rows:
                mitigations.append(response.mitigate_rows)
        # Counter starts at T_G, so mitigation after T_H - T_G more.
        assert mitigations == [(0,)]
        assert tracker.stats.mitigations == 1

    def test_counter_resets_after_mitigation(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        for _ in range(tracker.th - tracker.tg):
            tracker.on_activation(0)
        # Next mitigation needs a full T_H more activations.
        count = 0
        for _ in range(tracker.th):
            count += 1
            response = tracker.on_activation(0)
            if response and response.mitigate_rows:
                break
        assert count == tracker.th

    def test_eviction_writes_back_to_rct(self):
        tracker = make_tracker(rcc_entries=4, rcc_ways=1)
        saturate_group(tracker, 0)
        tracker.on_activation(0)  # row 0 resident, count T_G + 1
        # Row 4 maps to the same single-way set (4 sets): evicts row 0.
        response = tracker.on_activation(4)
        assert response is not None
        writes = [a for a in response.meta_accesses if a.is_write]
        assert writes, "dirty eviction must write back"
        assert tracker.rct.read(0) == tracker.tg + 1


class TestWindowReset:
    def test_gct_and_rcc_cleared(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        tracker.on_activation(0)
        tracker.on_window_reset()
        assert not tracker.gct.is_saturated(0)
        assert tracker.rcc.occupancy() == 0
        assert tracker.on_activation(0) is None  # back on the GCT path

    def test_rct_not_reset(self):
        """§4.6: RCT entries keep stale values after the reset."""
        tracker = make_tracker()
        saturate_group(tracker, 0)
        tracker.on_window_reset()
        assert tracker.rct.read(0) == tracker.tg

    def test_stale_rct_overwritten_on_next_saturation(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        for _ in range(5):
            tracker.on_activation(0)
        tracker.on_window_reset()
        saturate_group(tracker, 0)
        assert tracker.rct.read(0) == tracker.tg


class TestAblations:
    def test_nogct_goes_straight_to_per_row(self):
        tracker = make_tracker(enable_gct=False)
        response = tracker.on_activation(0)
        assert response is not None  # RCC miss -> RCT fetch
        assert tracker.stats.gct_only == 0
        assert tracker.name == "hydra-nogct"

    def test_nogct_resets_rct_each_window(self):
        tracker = make_tracker(enable_gct=False)
        for _ in range(10):
            tracker.on_activation(0)
        tracker.on_window_reset()
        assert tracker.rct.read(0) == 0

    def test_nogct_mitigates_at_th(self):
        tracker = make_tracker(enable_gct=False)
        responses = [
            tracker.on_activation(0) for _ in range(tracker.th)
        ]
        assert responses[-1].mitigate_rows == (0,)

    def test_norcc_does_rmw_per_activation(self):
        tracker = make_tracker(enable_rcc=False)
        saturate_group(tracker, 0)
        response = tracker.on_activation(0)
        kinds = [(a.is_write, a.n_lines) for a in response.meta_accesses]
        assert kinds == [(False, 1), (True, 1)]
        assert tracker.name == "hydra-norcc"

    def test_norcc_mitigates_at_th(self):
        tracker = make_tracker(enable_rcc=False)
        saturate_group(tracker, 0)
        mitigated = 0
        for _ in range(tracker.th - tracker.tg):
            response = tracker.on_activation(0)
            if response.mitigate_rows:
                mitigated += 1
        assert mitigated == 1


class TestRitActGuard:
    def test_meta_row_activations_guarded(self):
        """§5.2.2: hammering the RCT's own rows triggers mitigation."""
        tracker = make_tracker()
        meta_row = tracker.rct.meta_row_of(0)
        responses = [
            tracker.on_activation(meta_row) for _ in range(tracker.th)
        ]
        assert responses[-1].mitigate_rows == (meta_row,)
        assert tracker.stats.rit_act_activations == tracker.th

    def test_guard_resets_with_window(self):
        tracker = make_tracker()
        meta_row = tracker.rct.meta_row_of(0)
        for _ in range(tracker.th - 1):
            tracker.on_activation(meta_row)
        tracker.on_window_reset()
        assert tracker.on_activation(meta_row) is None


class TestStatsAndStorage:
    def test_distribution_sums_to_one(self):
        tracker = make_tracker()
        saturate_group(tracker, 0)
        for _ in range(10):
            tracker.on_activation(0)
        dist = tracker.stats.distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert make_tracker().stats.distribution() == {
            "gct_only": 0.0,
            "rcc_hit": 0.0,
            "rct_access": 0.0,
        }

    def test_sram_bytes_counts_enabled_structures(self):
        full = make_tracker().sram_bytes()
        nogct = make_tracker(enable_gct=False).sram_bytes()
        norcc = make_tracker(enable_rcc=False).sram_bytes()
        assert nogct < full
        assert norcc < full

    def test_dram_reserved_matches_rct(self):
        tracker = make_tracker()
        assert tracker.dram_reserved_bytes() == tracker.rct.dram_reserved_bytes()

    def test_mitigation_count_interface(self):
        tracker = make_tracker()
        assert tracker.mitigation_count() == 0
