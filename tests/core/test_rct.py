"""Tests for the DRAM-resident Row-Count Table."""

import pytest

from repro.core.rct import RowCountTable
from repro.dram.timing import PAPER_GEOMETRY, DramGeometry

SMALL = DramGeometry(
    channels=1,
    ranks_per_channel=1,
    banks_per_rank=2,
    rows_per_bank=1024,
    row_size_bytes=256,
)


class TestLayout:
    def test_paper_scale_reservation_is_4mb(self):
        """§4.4: 4M rows x 1 B = 4 MB of reserved DRAM, 512 rows."""
        rct = RowCountTable(PAPER_GEOMETRY, counter_bytes=1)
        assert rct.total_meta_rows == 512
        assert rct.dram_reserved_bytes() == 4 * 1024 * 1024

    def test_meta_rows_at_top_of_each_bank(self):
        rct = RowCountTable(SMALL, counter_bytes=1)
        # 1024 rows x 1 B / 256 B rows = 4 meta rows per bank.
        assert rct.meta_rows_per_bank == 4
        assert rct.meta_base_local == 1020
        assert rct.is_meta_row(1020)
        assert rct.is_meta_row(1023)
        assert not rct.is_meta_row(1019)
        # Same structure in the second bank.
        assert rct.is_meta_row(1024 + 1020)
        assert not rct.is_meta_row(1024)

    def test_meta_row_of_stays_in_same_bank(self):
        rct = RowCountTable(SMALL, counter_bytes=1)
        for row in (0, 255, 256, 1019, 1024, 2043):
            meta = rct.meta_row_of(row)
            assert meta // 1024 == row // 1024
            assert rct.is_meta_row(meta)

    def test_counters_fill_meta_rows_in_order(self):
        rct = RowCountTable(SMALL, counter_bytes=1)
        assert rct.meta_row_of(0) == 1020
        assert rct.meta_row_of(255) == 1020
        assert rct.meta_row_of(256) == 1021

    def test_wider_counters_need_more_meta_rows(self):
        narrow = RowCountTable(SMALL, counter_bytes=1)
        wide = RowCountTable(SMALL, counter_bytes=2)
        assert wide.meta_rows_per_bank == 2 * narrow.meta_rows_per_bank


class TestCounters:
    def test_read_write_roundtrip(self):
        rct = RowCountTable(SMALL)
        rct.write(5, 123)
        assert rct.read(5) == 123

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RowCountTable(SMALL).write(0, -1)

    def test_reset_all(self):
        rct = RowCountTable(SMALL)
        rct.write(5, 9)
        rct.reset_all()
        assert rct.read(5) == 0


class TestGroupInit:
    def test_sets_all_group_counters(self):
        rct = RowCountTable(SMALL)
        rct.init_group(0, 128, 200)
        assert all(rct.read(r) == 200 for r in range(128))
        assert rct.read(128) == 0

    def test_costs_two_reads_two_writes(self):
        """§4.4: a 128-row group (128 B of counters) spans two lines."""
        rct = RowCountTable(SMALL)
        accesses = rct.init_group(0, 128, 200)
        reads = [a for a in accesses if not a.is_write]
        writes = [a for a in accesses if a.is_write]
        assert len(reads) == len(writes) == 1
        assert reads[0].n_lines == writes[0].n_lines == 2

    def test_meta_traffic_targets_group_meta_row(self):
        rct = RowCountTable(SMALL)
        accesses = rct.init_group(256, 128, 200)
        assert all(a.row_id == rct.meta_row_of(256) for a in accesses)

    def test_overwrites_stale_counts(self):
        """§4.6: skipping the RCT reset is safe because init overwrites."""
        rct = RowCountTable(SMALL)
        rct.write(3, 77)  # stale from a previous window
        rct.init_group(0, 128, 200)
        assert rct.read(3) == 200

    def test_rejects_misaligned_group(self):
        with pytest.raises(ValueError):
            RowCountTable(SMALL).init_group(5, 128, 200)


class TestValidation:
    def test_rejects_bad_counter_size(self):
        with pytest.raises(ValueError):
            RowCountTable(SMALL, counter_bytes=0)

    def test_rejects_geometry_too_small(self):
        tiny = DramGeometry(
            channels=1,
            ranks_per_channel=1,
            banks_per_rank=1,
            rows_per_bank=1,
            row_size_bytes=64,
        )
        with pytest.raises(ValueError):
            RowCountTable(tiny, counter_bytes=64)
