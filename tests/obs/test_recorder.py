"""Window-series recorder: snapshot differencing into per-window deltas."""

import pytest

from repro.obs import (
    RunObservability,
    WindowSample,
    WindowSeries,
    WindowSeriesRecorder,
)


class FakeSource:
    """A cumulative counter the test scripts by hand."""

    def __init__(self, **counters):
        self.counters = dict(counters)

    def bump(self, **deltas):
        for name, delta in deltas.items():
            self.counters[name] = self.counters.get(name, 0.0) + delta

    def snapshot(self):
        return dict(self.counters)


class TestRecorder:
    def test_windows_hold_deltas_not_cumulatives(self):
        source = FakeSource(acts=0.0)
        recorder = WindowSeriesRecorder(period_ns=100.0)
        recorder.add_source(source.snapshot)
        recorder.prime()
        source.bump(acts=10)
        recorder.on_window_reset(100.0)
        source.bump(acts=7)
        recorder.on_window_reset(200.0)
        series = recorder.finalize(200.0)
        assert series.column("acts") == [10.0, 7.0]
        assert series.totals() == {"acts": 17.0}

    def test_trailing_partial_window(self):
        source = FakeSource(acts=0.0)
        recorder = WindowSeriesRecorder(period_ns=100.0)
        recorder.add_source(source.snapshot)
        recorder.prime()
        source.bump(acts=4)
        recorder.on_window_reset(100.0)
        source.bump(acts=2)
        series = recorder.finalize(130.0)
        assert len(series) == 2
        assert series[1].counters == {"acts": 2.0}
        assert series[1].start_ns == 100.0
        assert series[1].end_ns == 130.0
        assert series[1].duration_ns == pytest.approx(30.0)

    def test_no_trailing_window_when_nothing_changed(self):
        source = FakeSource(acts=0.0)
        recorder = WindowSeriesRecorder(period_ns=100.0)
        recorder.add_source(source.snapshot)
        recorder.prime()
        source.bump(acts=4)
        recorder.on_window_reset(100.0)
        series = recorder.finalize(100.0)
        assert len(series) == 1

    def test_short_run_still_produces_one_sample(self):
        source = FakeSource(acts=0.0)
        recorder = WindowSeriesRecorder(period_ns=1000.0)
        recorder.add_source(source.snapshot)
        recorder.prime()
        series = recorder.finalize(42.0)
        assert len(series) == 1
        assert series[0].counters == {"acts": 0.0}

    def test_multiple_sources_merge(self):
        a = FakeSource(acts=0.0)
        b = FakeSource(mitigations=0.0)
        recorder = WindowSeriesRecorder(period_ns=100.0)
        recorder.add_source(a.snapshot)
        recorder.add_source(b.snapshot)
        recorder.prime()
        a.bump(acts=3)
        b.bump(mitigations=1)
        series = recorder.finalize(100.0)
        assert series[0].counters == {"acts": 3.0, "mitigations": 1.0}

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="positive"):
            WindowSeriesRecorder(period_ns=0.0)

    def test_prime_baseline_excluded_from_first_window(self):
        source = FakeSource(acts=100.0)  # pre-run state
        recorder = WindowSeriesRecorder(period_ns=100.0)
        recorder.add_source(source.snapshot)
        recorder.prime()
        source.bump(acts=5)
        series = recorder.finalize(100.0)
        assert series.column("acts") == [5.0]


class TestWindowSeries:
    def _series(self):
        return WindowSeries(
            period_ns=100.0,
            samples=(
                WindowSample(0, 0.0, 100.0, {"hydra_gct_only": 90.0}),
                WindowSample(
                    1,
                    100.0,
                    200.0,
                    {"hydra_rcc_hits": 9.0, "hydra_rct_accesses": 1.0},
                ),
            ),
        )

    def test_hydra_distribution_from_totals(self):
        dist = self._series().hydra_distribution()
        assert dist == {
            "gct_only": 0.90,
            "rcc_hit": 0.09,
            "rct_access": 0.01,
        }

    def test_hydra_distribution_single_window(self):
        series = self._series()
        dist = series.hydra_distribution(series[0].counters)
        assert dist["gct_only"] == 1.0

    def test_hydra_distribution_empty_is_zeros(self):
        series = WindowSeries(period_ns=100.0)
        assert series.hydra_distribution() == {
            "gct_only": 0.0,
            "rcc_hit": 0.0,
            "rct_access": 0.0,
        }

    def test_dict_roundtrip(self):
        series = self._series()
        restored = WindowSeries.from_dict(series.to_dict())
        assert restored == series

    def test_observability_roundtrip(self):
        obs = RunObservability(
            series=self._series(),
            metrics={"acts": {"kind": "counter", "help": "", "value": 3}},
        )
        restored = RunObservability.from_dict(obs.to_dict())
        assert restored == obs
