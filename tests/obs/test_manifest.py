"""Run manifests: JSON-lines provenance records for sweep cells."""

import json

import pytest

from repro.obs import (
    MANIFEST_ENV_VAR,
    MANIFEST_SCHEMA_VERSION,
    OBS_ENV_VAR,
    ArenaOracleRecord,
    ManifestRecord,
    ManifestWriter,
    make_record,
    read_arena_records,
    read_manifest,
    resolve_manifest_path,
    summarize_manifest,
)


def record(**overrides) -> ManifestRecord:
    base = dict(
        cache_key="abc123",
        spec="hydra@trh=500",
        workload="xz",
        engine="fast",
        from_cache=False,
        wall_time_s=2.0,
        requests=1000,
        end_time_ns=5e6,
    )
    base.update(overrides)
    return make_record(**base)


class TestManifestRecord:
    def test_throughput_derived_for_simulated_cells(self):
        assert record().throughput_rps == pytest.approx(500.0)

    def test_cache_hits_report_zero_throughput(self):
        assert record(from_cache=True).throughput_rps == 0.0
        assert record(wall_time_s=0.0).throughput_rps == 0.0

    def test_dict_roundtrip(self):
        rec = record()
        assert ManifestRecord.from_dict(rec.to_dict()) == rec

    def test_from_dict_drops_unknown_keys(self):
        data = record().to_dict()
        data["added_by_a_newer_writer"] = "ignored"
        assert ManifestRecord.from_dict(data) == record()

    def test_schema_version_stamped(self):
        assert record().schema_version == MANIFEST_SCHEMA_VERSION
        assert record().to_dict()["schema_version"] == MANIFEST_SCHEMA_VERSION

    def test_old_record_without_version_loads(self):
        data = record().to_dict()
        del data["schema_version"]
        del data["throughput_rps"]
        loaded = ManifestRecord.from_dict(data)
        assert loaded.schema_version == MANIFEST_SCHEMA_VERSION
        assert loaded.throughput_rps == 0.0


class TestWriterAndReader:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        records = [record(), record(workload="mcf", from_cache=True)]
        assert ManifestWriter(path).append(records) == 2
        loaded, skipped = read_manifest(path)
        assert skipped == 0
        assert loaded == records

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        writer = ManifestWriter(path)
        writer.append([record()])
        writer.append([record(workload="mcf")])
        loaded, _ = read_manifest(path)
        assert [r.workload for r in loaded] == ["xz", "mcf"]

    def test_empty_append_writes_nothing(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        assert ManifestWriter(path).append([]) == 0
        assert not path.exists()

    def test_writer_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "manifest.jsonl"
        ManifestWriter(path).append([record()])
        assert path.exists()

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        good = json.dumps(record().to_dict())
        path.write_text(
            good + "\nnot json at all\n\n" + '{"spec": "orphan"}\n' + good + "\n"
        )
        loaded, skipped = read_manifest(path)
        assert len(loaded) == 2
        assert skipped == 2  # the garbage line and the key-less dict


def arena_record(**overrides) -> ArenaOracleRecord:
    base = dict(
        spec="comet",
        trh=1000,
        security_class="deterministic",
        sequence="single",
        secure=True,
        violations=0,
        max_unmitigated=499,
        mitigations=2,
        activations=1258,
        exercised=True,
    )
    base.update(overrides)
    return ArenaOracleRecord(**base)


class TestInterleavedStreams:
    """One manifest file carries grid cells AND arena-oracle lines."""

    def test_readers_split_the_streams(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        writer = ManifestWriter(path)
        writer.append([record()])
        writer.append([arena_record(), arena_record(sequence="many")])
        writer.append([record(workload="mcf")])
        cells, cell_skipped = read_manifest(path)
        arena, arena_skipped = read_arena_records(path)
        assert [r.workload for r in cells] == ["xz", "mcf"]
        assert cell_skipped == 0
        assert [r.sequence for r in arena] == ["single", "many"]
        assert arena_skipped == 0

    def test_arena_lines_are_not_corrupt_cells(self, tmp_path):
        """Foreign-kind lines must not count toward the skip total —
        they are a sibling stream, not damage."""
        path = tmp_path / "manifest.jsonl"
        ManifestWriter(path).append([arena_record()])
        cells, skipped = read_manifest(path)
        assert cells == []
        assert skipped == 0

    def test_arena_reader_ignores_cells_and_counts_garbage(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        ManifestWriter(path).append([record(), arena_record()])
        with path.open("a") as handle:
            handle.write("not json\n")
        arena, skipped = read_arena_records(path)
        assert len(arena) == 1
        assert skipped == 1

    def test_arena_record_roundtrip(self):
        rec = arena_record(secure=False, violations=3)
        loaded = ArenaOracleRecord.from_dict(rec.to_dict())
        assert loaded == rec
        assert loaded.kind == "arena-oracle"

    def test_arena_record_tolerates_newer_keys(self):
        data = arena_record().to_dict()
        data["future_field"] = 1
        assert ArenaOracleRecord.from_dict(data) == arena_record()

    def test_summarize_sees_only_cells(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        ManifestWriter(path).append([record(), arena_record()])
        cells, _ = read_manifest(path)
        assert summarize_manifest(cells)["cells"] == 1


class TestSummarize:
    def test_aggregates(self):
        records = [
            record(),
            record(workload="mcf", wall_time_s=3.0, requests=2000),
            record(workload="lbm", from_cache=True),
            record(spec="baseline", engine="queued", from_cache=True),
        ]
        summary = summarize_manifest(records)
        assert summary["cells"] == 4
        assert summary["cache_hits"] == 2
        assert summary["simulated"] == 2
        assert summary["simulated_wall_s"] == pytest.approx(5.0)
        assert summary["simulated_requests"] == 3000
        assert summary["requests_per_second"] == pytest.approx(600.0)
        assert summary["by_engine"] == {"fast": 3, "queued": 1}
        assert summary["by_spec"] == {"hydra@trh=500": 3, "baseline": 1}

    def test_empty_manifest(self):
        summary = summarize_manifest([])
        assert summary["cells"] == 0
        assert summary["requests_per_second"] == 0.0


class TestResolveManifestPath:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MANIFEST_ENV_VAR, str(tmp_path / "env.jsonl"))
        explicit = tmp_path / "explicit.jsonl"
        assert resolve_manifest_path(explicit, tmp_path) == explicit

    def test_env_var_next(self, tmp_path, monkeypatch):
        env_path = tmp_path / "env.jsonl"
        monkeypatch.setenv(MANIFEST_ENV_VAR, str(env_path))
        assert resolve_manifest_path(None, tmp_path) == env_path

    def test_obs_enabled_defaults_next_to_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv(MANIFEST_ENV_VAR, raising=False)
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        assert (
            resolve_manifest_path(None, tmp_path)
            == tmp_path / "manifest.jsonl"
        )

    def test_all_unset_means_no_manifest(self, tmp_path, monkeypatch):
        monkeypatch.delenv(MANIFEST_ENV_VAR, raising=False)
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        assert resolve_manifest_path(None, tmp_path) is None
