"""End-to-end observability: observed runs, parity, sweep manifests.

The layer's contract (DESIGN.md §10): observability changes what you
can *see*, never what the simulation *does* — an observed run's
``RunResult`` is equal (and serializes byte-identically) to the same
run unobserved, and the per-window series regenerates Figure 6 exactly.
"""

import numpy as np
import pytest

from repro.obs import OBS_ENV_VAR, obs_enabled, read_manifest
from repro.sim import ExperimentRunner, SystemConfig, simulate
from repro.workloads.trace import Trace

CONFIG = SystemConfig(scale=1 / 128, n_windows=1)


def make_trace(rows, gap=50.0, name="synthetic"):
    n = len(rows)
    return Trace(
        gaps_ns=np.full(n, gap),
        rows=np.asarray(rows),
        lines=np.ones(n, dtype=np.int32),
        writes=np.zeros(n, dtype=bool),
        name=name,
    )


def hammer_trace(n_pairs=20000, gap=30.0):
    """Sustained double-sided hammer long enough to span >= 2 windows."""
    return make_trace([7, 9] * n_pairs, gap=gap, name="hammer")


class TestObsEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        assert not obs_enabled()

    @pytest.mark.parametrize("value", ["0", "", "false", "no", "off"])
    def test_falsey_values(self, monkeypatch, value):
        monkeypatch.setenv(OBS_ENV_VAR, value)
        assert not obs_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(OBS_ENV_VAR, value)
        assert obs_enabled()


class TestObservedRunParity:
    """Observability must be invisible to the result itself."""

    @pytest.mark.parametrize("engine", ["fast", "queued"])
    def test_results_identical_with_and_without(self, engine):
        trace = hammer_trace(n_pairs=2000)
        plain = simulate(trace, CONFIG, "hydra", engine=engine, observe=False)
        observed = simulate(
            trace, CONFIG, "hydra", engine=engine, observe=True
        )
        assert plain.observability is None
        assert observed.observability is not None
        assert observed == plain
        assert observed.to_dict() == plain.to_dict()

    def test_env_var_enables_observation(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        result = simulate(hammer_trace(n_pairs=200), CONFIG, "baseline")
        assert result.observability is not None
        assert result.window_series is not None

    def test_explicit_observe_false_beats_env(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        result = simulate(
            hammer_trace(n_pairs=200), CONFIG, "baseline", observe=False
        )
        assert result.observability is None
        assert result.window_series is None


class TestWindowSeries:
    def test_attack_trace_series_sanity(self):
        trace = hammer_trace()
        result = simulate(trace, CONFIG, "hydra", observe=True)
        series = result.window_series
        assert len(series) >= 2  # the hammer spans multiple windows

        # Windows tile the run: contiguous, in order, full-length except
        # possibly the last.
        for i, sample in enumerate(series):
            assert sample.index == i
            assert sample.end_ns > sample.start_ns
            if i > 0:
                assert sample.start_ns == series[i - 1].end_ns
            if i < len(series) - 1:
                assert sample.duration_ns == pytest.approx(series.period_ns)

        # Per-window deltas sum back to the run's whole-run counters.
        totals = series.totals()
        assert totals["tracker_mitigations"] == result.mitigations
        assert totals["mc_victim_refreshes"] == result.victim_refreshes
        assert totals["mc_meta_accesses"] == result.meta_accesses

        # A sustained hammer triggers mitigations beyond the first window.
        mitigation_windows = [
            s for s in series if s.get("tracker_mitigations") > 0
        ]
        assert len(mitigation_windows) >= 2

    def test_fig6_regenerated_exactly(self):
        result = simulate(hammer_trace(), CONFIG, "hydra", observe=True)
        assert (
            result.window_series.hydra_distribution()
            == result.extra["distribution"]
            == result.hydra_distribution
        )

    def test_metrics_published(self):
        result = simulate(hammer_trace(n_pairs=2000), CONFIG, "hydra", observe=True)
        metrics = result.observability.metrics
        assert metrics["tracker_mitigations"]["value"] == result.mitigations
        assert metrics["mc_meta_accesses"]["value"] == result.meta_accesses
        assert metrics["hydra_rct_row_counts"]["kind"] == "histogram"
        assert metrics["feedback_chain_length"]["kind"] == "histogram"
        assert metrics["hydra_rcc_hit_rate"]["kind"] == "gauge"

    def test_cra_tracker_observable_too(self):
        result = simulate(
            hammer_trace(n_pairs=2000), CONFIG, "cra", observe=True
        )
        totals = result.window_series.totals()
        assert totals["tracker_mitigations"] == result.mitigations
        assert "cra_cache_misses" in totals


class TestSweepManifest:
    def test_run_grid_appends_manifest(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        runner = ExperimentRunner(
            CONFIG, cache_dir=tmp_path / "cache", manifest_path=manifest
        )
        runner.run_grid(["baseline", "hydra"], ["xz", "mcf"], progress=False)
        records, skipped = read_manifest(manifest)
        assert skipped == 0
        assert len(records) == 4
        assert all(not r.from_cache for r in records)
        assert all(r.engine == "fast" for r in records)
        assert {(r.spec, r.workload) for r in records} == {
            ("baseline", "xz"),
            ("baseline", "mcf"),
            ("hydra", "xz"),
            ("hydra", "mcf"),
        }
        assert all(r.throughput_rps > 0 for r in records)

        # A rerun appends cache-hit records for the same cells.
        rerun = ExperimentRunner(
            CONFIG, cache_dir=tmp_path / "cache", manifest_path=manifest
        )
        rerun.run_grid(["baseline", "hydra"], ["xz", "mcf"], progress=False)
        records, _ = read_manifest(manifest)
        assert len(records) == 8
        assert sum(r.from_cache for r in records) == 4

    def test_no_manifest_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_MANIFEST", raising=False)
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        runner = ExperimentRunner(CONFIG, cache_dir=tmp_path)
        assert runner.manifest_path is None
        runner.run_grid(["baseline"], ["xz"], progress=False)
        assert not (tmp_path / "manifest.jsonl").exists()
