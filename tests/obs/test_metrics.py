"""Metric primitives: counters, gauges, histograms, the registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, noop


class TestNoop:
    def test_accepts_anything_returns_none(self):
        assert noop() is None
        assert noop(1, 2, 3, key="value") is None


class TestCounter:
    def test_increments(self):
        counter = Counter("acts")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        counter = Counter("acts")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_describe(self):
        counter = Counter("acts", "activations")
        counter.inc(3)
        assert counter.describe() == {
            "kind": "counter",
            "help": "activations",
            "value": 3,
        }


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("occupancy")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25
        assert gauge.describe()["kind"] == "gauge"


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("chain", bounds=(1, 2, 4))
        for value in (0, 1, 2, 3, 4, 5, 100):
            hist.observe(value)
        assert hist.buckets() == {"<=1": 2, "<=2": 1, "<=4": 2, ">4": 2}
        assert hist.count == 7
        assert hist.total == pytest.approx(115.0)

    def test_observe_count(self):
        hist = Histogram("rows", bounds=(0, 1, 2))
        hist.observe_count(0.0, 10)
        hist.observe_count(2.0, 3)
        hist.observe_count(9.0, 2)
        hist.observe_count(1.0, 0)  # no-op
        assert hist.buckets() == {"<=0": 10, "<=1": 0, "<=2": 3, ">2": 2}
        assert hist.count == 15

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("empty", bounds=())
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("dup", bounds=(1, 1, 2))
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("desc", bounds=(2, 1))

    def test_describe_is_json_shaped(self):
        hist = Histogram("chain", bounds=(1, 2))
        hist.observe(1.5)
        described = hist.describe()
        assert described["kind"] == "histogram"
        assert described["count"] == 1
        assert described["buckets"] == {"<=1": 0, "<=2": 1, ">2": 0}


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("acts")
        second = registry.counter("acts")
        assert first is second
        assert len(registry) == 1
        assert "acts" in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("acts")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("acts")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("acts", bounds=(1,))

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("chain", bounds=(1, 2))
        assert registry.histogram("chain", bounds=(1, 2)) is not None
        with pytest.raises(ValueError, match="bounds"):
            registry.histogram("chain", bounds=(1, 2, 4))

    def test_collect_sorted_and_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.gauge("b_gauge").set(1.0)
        registry.counter("a_counter").inc(2)
        collected = registry.collect()
        assert list(collected) == ["a_counter", "b_gauge"]
        json.dumps(collected)  # must be JSON-clean

    def test_get_and_names(self):
        registry = MetricsRegistry()
        counter = registry.counter("acts")
        assert registry.get("acts") is counter
        assert registry.get("missing") is None
        assert list(registry.names()) == ["acts"]
