"""Reproduction of "Hydra: Enabling Low-Overhead Mitigation of
Row-Hammer at Ultra-Low Thresholds via Hybrid Tracking" (ISCA 2022).

Quick start::

    from repro import HydraConfig, HydraTracker

    tracker = HydraTracker(HydraConfig(trh=500))
    response = tracker.on_activation(row_id)      # None on the fast path
    if response and response.mitigate_rows:
        ...  # refresh the aggressor's neighbours

Full-system simulation::

    from repro.sim import SystemConfig, ExperimentRunner

    runner = ExperimentRunner(SystemConfig(scale=1 / 32))
    result = runner.run("hydra", "GUPS")
    comparisons = runner.compare("hydra", ["GUPS", "xz"])

Packages:

- ``repro.core``      — Hydra itself (GCT, RCC, RCT, RIT-ACT).
- ``repro.trackers``  — baselines: Graphene, CRA, OCPR, PARA, D-CBF.
- ``repro.dram``      — event-driven DDR4 substrate + power model.
- ``repro.memctrl``   — memory controller, mitigation engine.
- ``repro.cpu``       — LLC model, limited-MLP core model.
- ``repro.workloads`` — Table-3-calibrated traces, GUPS, attacks.
- ``repro.analysis``  — security verification, SRAM power, trends.
- ``repro.sim``       — experiment harness and sweeps.
"""

from repro.core import (
    GroupCountTable,
    HydraConfig,
    HydraStats,
    HydraTracker,
    RowCountCache,
    RowCountTable,
    hydra_storage,
)
from repro.interfaces import (
    ActivationTracker,
    MetaAccess,
    NullTracker,
    TrackerResponse,
)

__version__ = "1.0.0"

#: The blessed experiment surface (``repro.api``), re-exported lazily
#: (PEP 562) so ``import repro`` stays cheap: the simulation stack
#: behind these names loads only on first attribute access.
_API_EXPORTS = (
    "run",
    "sweep",
    "compare",
    "RunSpec",
    "GridSpec",
    "RunResult",
    "GridResult",
    "list_trackers",
    "list_attacks",
)

__all__ = [
    "ActivationTracker",
    "GroupCountTable",
    "HydraConfig",
    "HydraStats",
    "HydraTracker",
    "MetaAccess",
    "NullTracker",
    "RowCountCache",
    "RowCountTable",
    "TrackerResponse",
    "hydra_storage",
    "__version__",
    *_API_EXPORTS,
]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))
