"""CPU-side models: shared LLC and the core front-ends.

Two core models are provided: :class:`LimitedMlpCore` (fixed in-flight
window — the calibrated default for the paper sweeps) and
:class:`OooCore` (ROB-occupancy-derived window, Table 2's 160-entry
ROB / width-4 configuration).
"""

from repro.cpu.cache import CacheStats, LastLevelCache
from repro.cpu.core import CoreRunResult, LimitedMlpCore
from repro.cpu.ooo import OooCore, OooCoreParams

__all__ = [
    "CacheStats",
    "CoreRunResult",
    "LastLevelCache",
    "LimitedMlpCore",
    "OooCore",
    "OooCoreParams",
]
