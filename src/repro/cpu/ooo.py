"""Out-of-order core model with ROB-derived memory-level parallelism.

The :class:`~repro.cpu.core.LimitedMlpCore` uses a *fixed* in-flight
window. Real OoO cores (the paper's: 160-entry ROB, width 4) have a
window that depends on the workload: instructions between misses
occupy ROB entries, so a low-MPKI workload fits few misses in the ROB
(small effective MLP) while a miss-dense one exposes many.

This model keeps in-order dispatch/retirement semantics at the
granularity that matters for memory studies: request ``i`` may issue
once the request ``window_i`` positions earlier has completed, where
``window_i = clamp(rob_size / instructions_between_misses, 1, mshrs)``
— the number of misses that fit in the ROB at the local miss density.
Between misses, dispatch advances at the front-end rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreRunResult


@dataclass(frozen=True)
class OooCoreParams:
    """Table 2's core: 160-entry ROB, width 4, 3.2 GHz, 8 cores."""

    rob_size: int = 160
    width: int = 4
    frequency_ghz: float = 3.2
    cores: int = 8
    #: Miss-status registers: hard cap on outstanding misses.
    mshrs: int = 32

    def __post_init__(self) -> None:
        for name in ("rob_size", "width", "cores", "mshrs"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def dispatch_per_ns(self) -> float:
        """Aggregate instruction dispatch rate (instructions/ns)."""
        return self.cores * self.width * self.frequency_ghz


class OooCore:
    """ROB-occupancy-aware request replay."""

    def __init__(self, params: OooCoreParams = OooCoreParams()) -> None:
        self.params = params

    def window_for_gap(self, gap_instructions: float) -> int:
        """Effective MLP at a given miss spacing (in instructions)."""
        params = self.params
        per_core_gap = max(1.0, gap_instructions / params.cores)
        fit = int(params.rob_size // per_core_gap) * params.cores
        return max(1, min(params.mshrs, fit if fit > 0 else 1))

    def run(self, trace, controller) -> CoreRunResult:
        """Replay ``(gap_ns, row, n_lines, is_write)`` requests.

        Gaps are program-intent times; they are converted back to
        instruction counts at the front-end rate to size the ROB
        window locally.
        """
        params = self.params
        dispatch = params.dispatch_per_ns
        mshrs = params.mshrs
        window = [0.0] * mshrs
        issue = 0.0
        total_latency = 0.0
        count = 0
        access = controller.access
        for gap_ns, row_id, n_lines, is_write in trace:
            effective = self.window_for_gap(gap_ns * dispatch)
            earliest = issue + gap_ns
            # The request `effective` slots back must have completed
            # (its ROB entry reused); with a ring of mshrs slots, that
            # is the slot `count - effective`.
            blocker = window[(count - effective) % mshrs] if count >= effective else 0.0
            start = earliest if earliest > blocker else blocker
            issue = start
            done = access(start, row_id, n_lines, is_write)
            window[count % mshrs] = done
            total_latency += done - start
            count += 1
        end = max(window) if count else 0.0
        return CoreRunResult(
            end_time_ns=end, requests=count, total_latency_ns=total_latency
        )
