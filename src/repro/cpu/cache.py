"""Shared last-level cache model (Table 2: 8 MB, 16-way, 64 B lines).

Used by the workload tooling to turn address streams into memory-side
miss streams (the traces the memory simulator consumes), and directly
by examples that want an end-to-end core-to-DRAM path. Set-associative
with LRU replacement and write-back/write-allocate semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class LastLevelCache:
    """Set-associative LRU cache, write-back / write-allocate."""

    def __init__(
        self,
        capacity_bytes: int = 8 * 1024 * 1024,
        ways: int = 16,
        line_bytes: int = 64,
    ) -> None:
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        lines = capacity_bytes // line_bytes
        if lines < ways or lines % ways:
            raise ValueError("capacity must hold a whole number of sets")
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = lines // ways
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes

    def access(self, address: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access one byte address.

        Returns ``(hit, writeback_line_address)``: on a miss the line
        is allocated, and if a dirty victim was displaced its line
        address is returned so the caller can issue the writeback.
        """
        line_id = address // self.line_bytes
        cache_set = self._sets[line_id % self.sets]
        if line_id in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(line_id)
            if is_write:
                cache_set[line_id] = True
            return True, None
        self.stats.misses += 1
        writeback: Optional[int] = None
        if len(cache_set) >= self.ways:
            victim_line, dirty = cache_set.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
                writeback = victim_line * self.line_bytes
        cache_set[line_id] = is_write
        return False, writeback

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for d in cache_set.values() if d)
            cache_set.clear()
        return dirty
