"""Limited-MLP core model: converts memory behaviour into run time.

The paper's USIMM setup models 8 out-of-order cores (160-entry ROB,
width 4). What that machinery contributes to the *memory-system*
results is one property: the cores can only keep a bounded number of
memory requests in flight, so extra memory latency/bandwidth consumed
by tracker metadata shows up as end-to-end slowdown once the in-flight
window fills.

This model keeps exactly that property and nothing else: requests
issue in program order, each no earlier than its program-driven
arrival time (previous issue + its gap), and no earlier than the
completion of the request ``mlp`` positions earlier (the window slot
it reuses). Execution time is the completion of the last request.
Relative slowdowns from this model track the full-OoO results the
paper reports because tracking overhead is a bandwidth effect (§5.3).

The replay loop itself is :func:`repro.memctrl.base.drive_in_order` —
the same loop the fast engine's ``run_trace`` uses — so this class is
a thin front-end for driving any ``access()``-style controller
explicitly (e.g. alongside :class:`repro.cpu.ooo.OooCore`).
"""

from __future__ import annotations

from repro.memctrl.base import EngineRunOutcome, drive_in_order

#: Historical name of the run outcome; both core models and the
#: engines now share one shape.
CoreRunResult = EngineRunOutcome


class LimitedMlpCore:
    """Aggregate front-end for the 8-core system.

    ``mlp`` is the total number of outstanding memory requests the
    cores can sustain (ROB/MSHR limited). The paper's 8 cores with
    160-entry ROBs sustain on the order of a few misses each; the
    default of 24 reflects that and is held constant across all
    design points, so it cancels in normalized comparisons.
    """

    def __init__(self, mlp: int = 24) -> None:
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        self.mlp = mlp

    def run(self, trace, controller) -> EngineRunOutcome:
        """Replay ``trace`` (an iterable of request tuples).

        Each trace element is ``(gap_ns, row_id, n_lines, is_write)``;
        see :class:`repro.workloads.trace.Trace`. ``controller`` is
        anything with the fast engine's ``access`` method.
        """
        return drive_in_order(trace, controller.access, self.mlp)
