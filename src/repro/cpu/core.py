"""Limited-MLP core model: converts memory behaviour into run time.

The paper's USIMM setup models 8 out-of-order cores (160-entry ROB,
width 4). What that machinery contributes to the *memory-system*
results is one property: the cores can only keep a bounded number of
memory requests in flight, so extra memory latency/bandwidth consumed
by tracker metadata shows up as end-to-end slowdown once the in-flight
window fills.

This model keeps exactly that property and nothing else: requests
issue in program order, each no earlier than its program-driven
arrival time (previous issue + its gap), and no earlier than the
completion of the request ``mlp`` positions earlier (the window slot
it reuses). Execution time is the completion of the last request.
Relative slowdowns from this model track the full-OoO results the
paper reports because tracking overhead is a bandwidth effect (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memctrl.controller import MemoryController


@dataclass
class CoreRunResult:
    """Outcome of replaying one trace through the memory system."""

    end_time_ns: float
    requests: int
    total_latency_ns: float

    @property
    def average_latency_ns(self) -> float:
        return self.total_latency_ns / self.requests if self.requests else 0.0


class LimitedMlpCore:
    """Aggregate front-end for the 8-core system.

    ``mlp`` is the total number of outstanding memory requests the
    cores can sustain (ROB/MSHR limited). The paper's 8 cores with
    160-entry ROBs sustain on the order of a few misses each; the
    default of 24 reflects that and is held constant across all
    design points, so it cancels in normalized comparisons.
    """

    def __init__(self, mlp: int = 24) -> None:
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        self.mlp = mlp

    def run(self, trace, controller: MemoryController) -> CoreRunResult:
        """Replay ``trace`` (an iterable of request tuples).

        Each trace element is ``(gap_ns, row_id, n_lines, is_write)``;
        see :class:`repro.workloads.trace.Trace`.
        """
        mlp = self.mlp
        window = [0.0] * mlp
        issue = 0.0
        total_latency = 0.0
        count = 0
        access = controller.access
        for gap_ns, row_id, n_lines, is_write in trace:
            earliest = issue + gap_ns
            slot = count % mlp
            start = window[slot]
            if start < earliest:
                start = earliest
            issue = start
            done = access(start, row_id, n_lines, is_write)
            window[slot] = done
            total_latency += done - start
            count += 1
        end = max(window) if count else 0.0
        return CoreRunResult(
            end_time_ns=end, requests=count, total_latency_ns=total_latency
        )
