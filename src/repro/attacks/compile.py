"""Compiling resolved attack programs into activation streams.

A :class:`CompiledAttack` is the executable form both harnesses
consume:

- :meth:`CompiledAttack.rows` — the flat global-row activation
  sequence (bit-identical to what the legacy hand-written generators
  returned; golden tests pin this);
- :meth:`CompiledAttack.iter_rows` — the same sequence as a streaming
  iterator, never materializing unrolled loops;
- :meth:`CompiledAttack.iter_events` — the full event stream,
  interleaving ``(EVENT_ACT, row)`` with ``(EVENT_SYNC, 0)``
  window-boundary markers from ``sync_refresh`` ops. The security
  harness executes sync events as tracker + oracle window resets,
  which is how refresh-synchronized patterns become expressible.

Op counts (:attr:`CompiledAttack.activations` etc.) are computed
analytically from the loop structure, so inspecting a million-hammer
program costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.attacks.ops import Act, Loop, Nop, Op, Pre, SyncRefresh
from repro.attacks.resolve import ResolvedProgram

__all__ = [
    "EVENT_ACT",
    "EVENT_SYNC",
    "CompiledAttack",
    "compile_program",
    "exercised_within",
]

#: Event-stream discriminators (see :meth:`CompiledAttack.iter_events`).
EVENT_ACT = "act"
EVENT_SYNC = "sync"

Event = Tuple[str, int]


def _count_ops(ops: Tuple[Op, ...]) -> Tuple[int, int, int, int]:
    """(acts, pres, nops, syncs) for one op tuple, loops multiplied."""
    acts = pres = nops = syncs = 0
    for op in ops:
        if isinstance(op, Act):
            acts += 1
        elif isinstance(op, Pre):
            pres += 1
        elif isinstance(op, Nop):
            nops += int(op.count)
        elif isinstance(op, SyncRefresh):
            syncs += 1
        elif isinstance(op, Loop):
            a, p, n, s = _count_ops(op.body)
            count = int(op.count)
            acts += a * count
            pres += p * count
            nops += n * count
            syncs += s * count
    return acts, pres, nops, syncs


@dataclass
class CompiledAttack:
    """One executable attack: resolved program + derived statistics."""

    program: ResolvedProgram
    activations: int
    precharges: int
    nops: int
    syncs: int
    _rows: Optional[List[int]] = None

    @property
    def name(self) -> str:
        return self.program.name

    def iter_events(self) -> Iterator[Event]:
        """Stream ``(EVENT_ACT, row)`` / ``(EVENT_SYNC, 0)`` events.

        Loops are walked, not materialized: a ``loop 1000000`` costs
        iterator state, not memory.
        """

        def walk(ops: Tuple[Op, ...]) -> Iterator[Event]:
            for op in ops:
                if isinstance(op, Act):
                    yield (EVENT_ACT, op.row)  # type: ignore[misc]
                elif isinstance(op, SyncRefresh):
                    yield (EVENT_SYNC, 0)
                elif isinstance(op, Loop):
                    for _ in range(int(op.count)):
                        yield from walk(op.body)
                # Pre / Nop are structural: no activation, no event.

        return walk(self.program.ops)

    def iter_rows(self) -> Iterator[int]:
        """Stream the flat activation sequence (sync markers dropped)."""
        return (
            row for kind, row in self.iter_events() if kind == EVENT_ACT
        )

    def rows(self) -> List[int]:
        """The flat activation sequence, materialized and cached."""
        if self._rows is None:
            self._rows = list(self.iter_rows())
        return self._rows

    def __len__(self) -> int:
        return self.activations


def compile_program(resolved: ResolvedProgram) -> CompiledAttack:
    """Compile one resolved program (see module doc)."""
    acts, pres, nops, syncs = _count_ops(resolved.ops)
    return CompiledAttack(
        program=resolved,
        activations=acts,
        precharges=pres,
        nops=nops,
        syncs=syncs,
    )


def exercised_within(
    attack: Union[CompiledAttack, Iterable[int]],
    threshold: int,
    window_every: Optional[int],
) -> bool:
    """Can this attack drive some row past ``threshold`` in a window?

    Replays the activation stream against an exact counter, resetting
    at every ``sync_refresh`` event and every ``window_every`` demand
    activations — the same window discipline the security harness
    applies — and reports whether any single row's count ever exceeds
    the threshold. A "secure" oracle verdict on an attack that cannot
    exercise the threshold is vacuous; this flag keeps such cells
    honest (and gives the fuzzer its notion of a *real* probe).
    """
    if isinstance(attack, CompiledAttack):
        events: Iterable[Event] = attack.iter_events()
    else:
        events = ((EVENT_ACT, row) for row in attack)
    counts: Dict[int, int] = {}
    since_reset = 0
    for kind, row in events:
        if kind == EVENT_SYNC:
            counts.clear()
            since_reset = 0
            continue
        if window_every and since_reset and since_reset % window_every == 0:
            counts.clear()
            since_reset = 0
        count = counts.get(row, 0) + 1
        if count > threshold:
            return True
        counts[row] = count
        since_reset += 1
    return False
