"""Composable attack pipeline: program → harness → verdict.

A pipeline turns one compiled attack into a judged outcome through a
sequence of small stages, each a ``Stage`` — a callable mutating and
returning an :class:`AttackRun`:

- :func:`align_to_refresh` — prepend a window-boundary sync so the
  attack starts flush with a fresh tracking window (the strongest
  position for a window-reset-based tracker to be probed from);
- :func:`hammer` — drive a tracker with the attack under the §5
  security oracle (:class:`~repro.analysis.security.SecurityHarness`),
  recording the report and whether the attack could exercise the
  T_RH/2 threshold at all;
- :func:`verify` — interpret the report against the tracker's declared
  security class (the shared :mod:`~repro.analysis.verdicts` judge);
- :func:`annotate` — attach program statistics and free-form metadata.

The arena's oracle battery and the attack fuzzer are both expressible
as ``run_pipeline(attack, ctx, align_to_refresh(), hammer(spec),
verify(), annotate())`` per cell; the fuzzer uses exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from repro.analysis.security import SecurityReport, verify_tracker
from repro.analysis.verdicts import judge_verdict
from repro.attacks.compile import (
    CompiledAttack,
    compile_program,
    exercised_within,
)
from repro.attacks.ops import SyncRefresh
from repro.attacks.registry import AttackContext
from repro.attacks.resolve import ResolvedProgram
from repro.interfaces import ActivationTracker
from repro.trackers.registry import (
    TrackerContext,
    build_tracker,
    canonical_spec,
    parse_spec,
    tracker_info,
)

__all__ = [
    "AttackRun",
    "Stage",
    "align_to_refresh",
    "annotate",
    "hammer",
    "run_pipeline",
    "verify",
]


@dataclass
class AttackRun:
    """One attack's passage through a pipeline."""

    attack: CompiledAttack
    context: AttackContext
    tracker_spec: Optional[str] = None
    security_class: Optional[str] = None
    report: Optional[SecurityReport] = None
    exercised: Optional[bool] = None
    verdict: Optional[str] = None
    annotations: Dict[str, Any] = field(default_factory=dict)


Stage = Callable[[AttackRun], AttackRun]


def run_pipeline(
    attack: CompiledAttack, context: AttackContext, *stages: Stage
) -> AttackRun:
    """Thread one attack through ``stages`` in order."""
    run = AttackRun(attack=attack, context=context)
    for stage in stages:
        run = stage(run)
    return run


def tracker_context_for(context: AttackContext) -> TrackerContext:
    """The tracker context matching an attack context's system view
    (structure scaling follows the Figure-7 ``with_trh`` policy)."""
    return TrackerContext(
        geometry=context.geometry, timing=context.timing
    ).with_trh(context.trh)


def align_to_refresh() -> Stage:
    """Prepend a window-boundary sync to the attack program."""

    def stage(run: AttackRun) -> AttackRun:
        program = run.attack.program
        ops = program.ops
        if not (ops and isinstance(ops[0], SyncRefresh)):
            program = ResolvedProgram(
                name=program.name,
                ops=(SyncRefresh(),) + ops,
                geometry=program.geometry,
            )
        run.attack = compile_program(program)
        return run

    return stage


def hammer(
    tracker: Union[str, ActivationTracker],
    tracker_context: Optional[TrackerContext] = None,
    *,
    window_every: Optional[int] = None,
    blast_radius: int = 2,
    feed_mitigation_activations: bool = True,
    max_violations: int = 16,
    # Depth 2 keeps §5.2.1 feedback pressure on every tracker while
    # bounding cascade amplification (the arena's setting).
    max_feedback_depth: int = 2,
) -> Stage:
    """Drive ``tracker`` (an instance or a spec string) with the attack.

    ``window_every`` defaults to the context's ACT_max — the most
    demand activations one tracking window can hold. Records the
    security report, the tracker's declared class, and the exercised
    flag on the run.
    """

    def stage(run: AttackRun) -> AttackRun:
        every = window_every
        if every is None:
            every = run.context.act_max
        if isinstance(tracker, str):
            ctx = tracker_context or tracker_context_for(run.context)
            instance = build_tracker(tracker, ctx)
            run.tracker_spec = canonical_spec(tracker)
            run.security_class = tracker_info(
                parse_spec(tracker).name
            ).security_class
        else:
            instance = tracker
            run.tracker_spec = type(tracker).__name__
            run.security_class = getattr(
                tracker, "security_class", "deterministic"
            )
        run.exercised = exercised_within(
            run.attack, run.context.threshold, every
        )
        run.report = verify_tracker(
            instance,
            run.context.geometry,
            run.attack,
            threshold=run.context.threshold,
            window_every=every,
            blast_radius=blast_radius,
            feed_mitigation_activations=feed_mitigation_activations,
            max_violations=max_violations,
            max_feedback_depth=max_feedback_depth,
        )
        return run

    return stage


def verify() -> Stage:
    """Judge the hammer stage's report against the declared class."""

    def stage(run: AttackRun) -> AttackRun:
        if run.report is None or run.security_class is None:
            raise ValueError("verify() requires a hammer() stage first")
        run.verdict = judge_verdict(
            run.security_class,
            len(run.report.violations),
            bool(run.exercised),
        )
        return run

    return stage


def annotate(**extra: Any) -> Stage:
    """Attach program statistics plus ``extra`` to the run."""

    def stage(run: AttackRun) -> AttackRun:
        run.annotations.update(
            attack=run.attack.name,
            activations=run.attack.activations,
            precharges=run.attack.precharges,
            nops=run.attack.nops,
            syncs=run.attack.syncs,
        )
        run.annotations.update(extra)
        return run

    return stage
