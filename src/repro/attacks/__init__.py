"""Declarative attack programs: DSL, registry, pipeline, fuzzer.

The package replaces the hand-written attack zoo with attacks-as-data:

- :mod:`repro.attacks.ops` — the AST (``act``/``pre``/``nop``/
  ``loop``/``sync_refresh`` with late-bound placeholders);
- :mod:`repro.attacks.parse` — the text DSL and the
  :class:`ProgramBuilder` API;
- :mod:`repro.attacks.resolve` — placeholder binding + geometry
  bounds-checking;
- :mod:`repro.attacks.compile` — flat activation sequences / event
  streams both harnesses consume;
- :mod:`repro.attacks.registry` — named, spec-string-configurable
  attacks (``many_sided@aggs=18,rounds=4096``);
- :mod:`repro.attacks.programs` — the built-in zoo (imported lazily by
  the registry);
- :mod:`repro.attacks.pipeline` — composable program → verdict stages;
- :mod:`repro.attacks.fuzz` — seeded random-program tracker fuzzing
  (imported explicitly by its users; it pulls in the analysis layer).
"""

from repro.attacks.compile import (
    EVENT_ACT,
    EVENT_SYNC,
    CompiledAttack,
    compile_program,
    exercised_within,
)
from repro.attacks.ops import (
    Act,
    Loop,
    Nop,
    P,
    Placeholder,
    Pre,
    Program,
    SyncRefresh,
)
from repro.attacks.parse import ParseError, ProgramBuilder, parse_program
from repro.attacks.registry import (
    AttackContext,
    AttackInfo,
    AttackSpec,
    attack_info,
    available_attacks,
    build_attack,
    canonical_attack_spec,
    compile_attack,
    parse_attack_spec,
    register_attack,
)
from repro.attacks.resolve import (
    AttackBoundsError,
    ResolvedProgram,
    UnboundPlaceholderError,
    resolve,
)

__all__ = [
    "Act",
    "AttackBoundsError",
    "AttackContext",
    "AttackInfo",
    "AttackSpec",
    "CompiledAttack",
    "EVENT_ACT",
    "EVENT_SYNC",
    "Loop",
    "Nop",
    "P",
    "ParseError",
    "Placeholder",
    "Pre",
    "Program",
    "ProgramBuilder",
    "ResolvedProgram",
    "SyncRefresh",
    "UnboundPlaceholderError",
    "attack_info",
    "available_attacks",
    "build_attack",
    "canonical_attack_spec",
    "compile_attack",
    "compile_program",
    "exercised_within",
    "parse_attack_spec",
    "parse_program",
    "register_attack",
    "resolve",
]
