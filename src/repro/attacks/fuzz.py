"""Seeded attack-program fuzzing of the whole tracker registry.

The hand-built oracle battery probes trackers with the attack shapes
we already know about. The fuzzer probes them with shapes nobody wrote
down: from one corpus seed it generates a deterministic stream of
random hammer programs — random aggressor sets, round-robin
interleavings, refresh-aligned burst phases, decoy traffic, row sprays
— and drives every registered tracker through the §5 security oracle
with each of them, judging outcomes with the arena's class-aware
verdict logic (:mod:`repro.analysis.verdicts`). A ``deterministic``
tracker that violates on *any* generated program is a reproduction
bug; the fuzzer exists to find those before an adversary does.

Each judged (tracker, program) cell appends one
:class:`~repro.obs.manifest.FuzzOracleRecord` line to the run manifest
(``kind="fuzz-oracle"``), so fuzz campaigns accumulate next to grid
and arena provenance. Entry point: ``hydra-sim fuzz``.

Determinism: program ``i`` of a corpus is generated from
``corpus_seed + i`` alone (given the same context), so any flagged
program is reproducible from its recorded ``program_seed``.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.verdicts import VERDICT_INSECURE
from repro.attacks.compile import compile_program
from repro.attacks.ops import Program
from repro.attacks.parse import ProgramBuilder
from repro.attacks.pipeline import (
    align_to_refresh,
    annotate,
    hammer,
    run_pipeline,
    verify,
)
from repro.attacks.registry import AttackContext
from repro.attacks.resolve import resolve
from repro.obs.manifest import (
    FuzzOracleRecord,
    ManifestWriter,
    resolve_manifest_path,
)
from repro.sim.config import SystemConfig, default_cache_dir, resolve_jobs
from repro.trackers.registry import (
    available_trackers,
    canonical_spec,
    parse_spec,
    tracker_info,
)

__all__ = [
    "DEFAULT_CORPUS_SEED",
    "DEFAULT_ACT_BUDGET",
    "FuzzOutcome",
    "FuzzReport",
    "generate_program",
    "run_fuzz",
]

#: Default corpus seed (any value works; this one is the default so
#: two unconfigured campaigns exercise identical corpora).
DEFAULT_CORPUS_SEED = 0xF0552

#: Default per-program activation budget. Generated programs size
#: their phases against min(budget, a threshold multiple), so low
#: rungs stay cheap and high rungs stay bounded.
DEFAULT_ACT_BUDGET = 60_000

#: Phase strategies the generator draws from (weights inline).
_STRATEGIES = ("burst", "round_robin", "decoy", "spray")


def generate_program(
    seed: int,
    context: AttackContext,
    act_budget: int = DEFAULT_ACT_BUDGET,
) -> Program:
    """Generate one random hammer program, deterministically from
    ``seed`` (given the same context and budget).

    A program is 1–3 phases, each optionally opening with a
    ``sync_refresh`` (refresh-aligned attacks), drawn from:

    - **burst** — one aggressor hammered hard;
    - **round_robin** — a TRRespass-style sweep over a random
      aggressor set;
    - **decoy** — an aggressor interleaved with decoy-row sweeps that
      pressure eviction-based tables;
    - **spray** — uniform random traffic (exercises the no-attack
      path and dilutes the other phases' counts).

    Phase sizes are drawn against the context's T_RH/2 threshold and
    capped by ``act_budget``, so most programs can genuinely cross the
    threshold at the rung under test.
    """
    rng = random.Random(seed)
    threshold = context.threshold
    total_rows = context.geometry.total_rows
    builder = ProgramBuilder(f"fuzz-{seed:#x}")
    phases = rng.randint(1, 3)
    budget = max(32, min(act_budget, 6 * threshold + 64)) // phases
    strategies = [rng.choice(_STRATEGIES) for _ in range(phases)]
    if not any(s in ("burst", "round_robin") for s in strategies):
        # Guarantee at least one phase that can concentrate counts —
        # an all-spray corpus probes nothing (the exercised flag would
        # mark every cell vacuous).
        strategies[rng.randrange(phases)] = "burst"
    for strategy in strategies:
        if rng.random() < 0.5:
            builder.sync_refresh()
        if strategy == "burst":
            row = rng.randrange(total_rows)
            # At high rungs the budget sits below the threshold; the
            # lower bound must not cross the upper (the exercised flag
            # reports the resulting vacuity honestly).
            low = max(1, min(threshold // 2, budget))
            hammers = rng.randint(low, budget)
            with builder.loop(hammers):
                builder.act(row).pre()
        elif strategy == "round_robin":
            count = rng.randint(2, 12)
            aggressors = [rng.randrange(total_rows) for _ in range(count)]
            rounds = rng.randint(1, max(1, budget // count))
            with builder.loop(rounds):
                for row in aggressors:
                    builder.act(row).pre()
        elif strategy == "decoy":
            aggressor = rng.randrange(total_rows)
            decoys = [
                rng.randrange(total_rows)
                for _ in range(rng.randint(1, 24))
            ]
            interleave = rng.randint(1, 16)
            spent = 0
            i = 0
            while spent < budget:
                builder.act(aggressor).pre()
                spent += 1
                if i % interleave == 0:
                    for row in decoys:
                        builder.act(row).pre()
                    spent += len(decoys)
                i += 1
        else:  # spray
            for _ in range(rng.randint(1, budget)):
                builder.act(rng.randrange(total_rows)).pre()
        if rng.random() < 0.25:
            builder.nop(rng.randint(1, 64))
    return builder.build()


@dataclass(frozen=True)
class FuzzOutcome:
    """One judged (tracker, generated program) cell."""

    spec: str
    trh: int
    security_class: str
    program: str
    program_seed: int
    verdict: str
    secure: bool
    violations: int
    max_unmitigated: int
    mitigations: int
    activations: int
    exercised: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "trh": self.trh,
            "security_class": self.security_class,
            "program": self.program,
            "program_seed": self.program_seed,
            "verdict": self.verdict,
            "secure": self.secure,
            "violations": self.violations,
            "max_unmitigated": self.max_unmitigated,
            "mitigations": self.mitigations,
            "activations": self.activations,
            "exercised": self.exercised,
        }


@dataclass
class FuzzReport:
    """One fuzz campaign: corpus parameters plus every judged cell."""

    trh: int
    corpus_seed: int
    programs: int
    trackers: Sequence[str]
    outcomes: List[FuzzOutcome] = field(default_factory=list)

    @property
    def flagged(self) -> List[FuzzOutcome]:
        """Cells judged ``INSECURE`` — reproduction-level failures."""
        return [o for o in self.outcomes if o.verdict == VERDICT_INSECURE]

    def verdict_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tracker verdict histogram."""
        counts: Dict[str, Dict[str, int]] = {}
        for outcome in self.outcomes:
            per = counts.setdefault(outcome.spec, {})
            per[outcome.verdict] = per.get(outcome.verdict, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trh": self.trh,
            "corpus_seed": self.corpus_seed,
            "programs": self.programs,
            "trackers": list(self.trackers),
            "flagged": len(self.flagged),
            "verdicts": self.verdict_counts(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def _fuzz_cell(
    config: SystemConfig,
    spec: str,
    trh: int,
    program_seed: int,
    act_budget: int,
) -> Dict[str, Any]:
    """Pool-worker work unit: regenerate the program from its seed and
    judge one tracker with it (ships only picklable scalars)."""
    cfg = config.with_trh(trh)
    context = AttackContext.from_system(cfg)
    program = generate_program(program_seed, context, act_budget)
    compiled = compile_program(
        resolve(program, geometry=context.geometry)
    )
    run = run_pipeline(
        compiled,
        context,
        align_to_refresh(),
        hammer(spec, cfg.tracker_context()),
        verify(),
        annotate(program_seed=program_seed),
    )
    report = run.report
    assert report is not None and run.verdict is not None
    return {
        "spec": run.tracker_spec,
        "trh": trh,
        "security_class": run.security_class,
        "program": compiled.name,
        "program_seed": program_seed,
        "verdict": run.verdict,
        "secure": report.secure,
        "violations": len(report.violations),
        "max_unmitigated": report.max_unmitigated_count,
        "mitigations": report.mitigations,
        "activations": report.activations,
        "exercised": bool(run.exercised),
    }


def run_fuzz(
    config: SystemConfig,
    trackers: Optional[Sequence[str]] = None,
    programs: int = 8,
    corpus_seed: int = DEFAULT_CORPUS_SEED,
    act_budget: int = DEFAULT_ACT_BUDGET,
    jobs: Optional[int] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> FuzzReport:
    """Fuzz every tracker with a seeded random-program corpus.

    ``trackers`` defaults to the whole registry. Program ``i`` is
    generated from ``corpus_seed + i``; every (tracker, program) cell
    runs the pipeline (align → hammer → verify → annotate) and the
    judged outcome is appended to the manifest (same resolution rules
    as sweeps: explicit path, then ``$REPRO_MANIFEST``, then the cache
    directory when observability is on).
    """
    if programs < 1:
        raise ValueError("programs must be >= 1")
    specs = [canonical_spec(s) for s in (trackers or available_trackers())]
    seeds = [corpus_seed + i for i in range(programs)]
    cells = [(spec, seed) for spec in specs for seed in seeds]
    n_jobs = resolve_jobs(jobs)
    payloads: List[Dict[str, Any]] = []
    if n_jobs > 1 and len(cells) > 1:
        workers = min(n_jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _fuzz_cell, config, spec, config.trh, seed, act_budget
                )
                for spec, seed in cells
            ]
            for future in as_completed(futures):
                payloads.append(future.result())
    else:
        payloads = [
            _fuzz_cell(config, spec, config.trh, seed, act_budget)
            for spec, seed in cells
        ]
    # Pool completion order is nondeterministic; normalize.
    spec_order = {spec: i for i, spec in enumerate(specs)}
    payloads.sort(
        key=lambda p: (spec_order[p["spec"]], p["program_seed"])
    )
    report = FuzzReport(
        trh=config.trh,
        corpus_seed=corpus_seed,
        programs=programs,
        trackers=specs,
    )
    records: List[FuzzOracleRecord] = []
    for payload in payloads:
        outcome = FuzzOutcome(**payload)
        report.outcomes.append(outcome)
        records.append(FuzzOracleRecord(**payload))
    dest = resolve_manifest_path(manifest_path, default_cache_dir())
    if dest is not None and records:
        ManifestWriter(dest).append(records)
    return report
