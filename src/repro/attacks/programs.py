"""The attack-program zoo: every known adversary, as data.

Each pattern the repo previously hand-wrote as a Python generator in
:mod:`repro.workloads.attacks` exists here twice over:

- an **explicit-argument program builder** (``single_sided_program``
  …) producing a :class:`~repro.attacks.ops.Program` from the same
  arguments the legacy generator took — this is what the legacy shims
  compile, and what the golden-parity tests pin bit-identical to the
  old outputs;
- a **registry entry** (``@register_attack``) whose unset parameters
  are derived from the :class:`~repro.attacks.registry.AttackContext`
  (hammer counts scale with the T_RH/2 threshold), so spec strings
  like ``many_sided@aggs=18`` are runnable against any rung.

The regular patterns (single/double-sided, refresh-synchronized) are
defined in the text DSL itself and parsed at import — the parse →
resolve → compile path is the production path, not a test fixture.
Data-dependent patterns (Half-Double's interleave arithmetic, the RNG
shapes) are built imperatively with :class:`ProgramBuilder`; either
way the attack ends up as an inspectable op tree.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.attacks.ops import Program
from repro.attacks.parse import ProgramBuilder, parse_program
from repro.attacks.registry import AttackContext, register_attack
from repro.dram.timing import DramGeometry
from repro.trackers.registry import Param

__all__ = [
    "DEFAULT_MANY_AGGRESSORS",
    "MANY_ACT_CAP",
    "RANDOM_ACT_CAP",
    "RANDOM_SEED",
    "double_sided_program",
    "half_double_program",
    "many_sided_program",
    "random_noise_program",
    "rcc_thrash_program",
    "rct_region_program",
    "refresh_sync_program",
    "single_sided_program",
    "thrash_then_hammer_program",
]

#: Many-sided battery shape (shared with the arena): enough aggressors
#: to overflow small recent-row queues (MRLoc keeps 16), bounded in
#: total activations so high rungs stay tractable.
DEFAULT_MANY_AGGRESSORS = 18
MANY_ACT_CAP = 400_000
RANDOM_ACT_CAP = 120_000
RANDOM_SEED = 0xA12E5A


# ----------------------------------------------------------------------
# Text-DSL templates (parsed once at import)
# ----------------------------------------------------------------------

SINGLE_SIDED = parse_program(
    """
# program: single_sided
loop $hammers:
    act row=$aggressor
    pre
"""
)

DOUBLE_SIDED = parse_program(
    """
# program: double_sided
loop $hammers:
    act row=$victim-1
    pre
    act row=$victim+1
    pre
"""
)

REFRESH_SYNC = parse_program(
    """
# program: refresh_sync
loop $windows:
    sync_refresh
    loop $hammers:
        act row=$row
        pre
"""
)


# ----------------------------------------------------------------------
# Explicit-argument program builders (the legacy generators' shapes)
# ----------------------------------------------------------------------


def single_sided_program(aggressor: int, hammers: int) -> Program:
    """Hammer one row continuously."""
    if hammers < 0:
        raise ValueError("hammers must be non-negative")
    return replace(
        SINGLE_SIDED, defaults={"aggressor": aggressor, "hammers": hammers}
    )


def double_sided_program(victim: int, hammers_per_side: int) -> Program:
    """Alternate the two rows sandwiching ``victim``."""
    if victim < 1:
        raise ValueError("victim must have a row on each side")
    return replace(
        DOUBLE_SIDED, defaults={"victim": victim, "hammers": hammers_per_side}
    )


def many_sided_program(aggressors: Sequence[int], rounds: int) -> Program:
    """TRRespass-style: sweep many aggressors round-robin."""
    if not aggressors:
        raise ValueError("need at least one aggressor")
    b = ProgramBuilder("many_sided")
    with b.loop(rounds):
        for aggressor in aggressors:
            b.act(int(aggressor)).pre()
    return b.build()


def half_double_program(
    victim: int, far_hammers: int, near_ratio: int = 1000
) -> Program:
    """Half-Double: heavy distance-2 hammering plus rare near accesses."""
    if victim < 2:
        raise ValueError("victim needs distance-2 rows on both sides")
    b = ProgramBuilder("half_double")
    near = (victim - 1, victim + 1)
    far = (victim - 2, victim + 2)
    for i in range(far_hammers):
        b.act(far[i % 2]).pre()
        if near_ratio and i % near_ratio == near_ratio - 1:
            b.act(near[(i // near_ratio) % 2]).pre()
    return b.build()


def thrash_then_hammer_program(
    aggressor: int,
    decoy_rows: Sequence[int],
    hammers: int,
    interleave: int = 1,
) -> Program:
    """Interleave decoy-row sweeps with aggressor activations."""
    if interleave < 1:
        raise ValueError("interleave must be >= 1")
    b = ProgramBuilder("thrash")
    decoys = [int(row) for row in decoy_rows]
    for i in range(hammers):
        b.act(aggressor).pre()
        if decoys and i % interleave == 0:
            for decoy in decoys:
                b.act(decoy).pre()
    return b.build()


def rcc_thrash_program(
    geometry: DramGeometry,
    target_rows: int,
    rounds: int,
    seed: int = 11,
) -> Program:
    """Memory performance attack on Hydra's RCC (§5.3)."""
    rng = np.random.default_rng(seed)
    rows = rng.choice(geometry.total_rows // 2, size=target_rows, replace=False)
    b = ProgramBuilder("rcc_thrash")
    for _ in range(rounds):
        rng.shuffle(rows)
        for row in rows:
            b.act(int(row)).pre()
    return b.build()


def rct_region_program(
    geometry: DramGeometry, hammers: int, counter_bytes: int = 1
) -> Program:
    """Directly hammer the DRAM rows storing the RCT (§5.2.2)."""
    from repro.core.rct import RowCountTable

    table = RowCountTable(geometry, counter_bytes=counter_bytes)
    base = table.meta_base_local
    meta_rows = [
        bank * geometry.rows_per_bank + base + offset
        for bank in range(min(2, geometry.total_banks))
        for offset in range(table.meta_rows_per_bank)
    ]
    first_two = meta_rows[:2] if len(meta_rows) >= 2 else meta_rows
    b = ProgramBuilder("rct_region")
    targets = list(itertools.islice(itertools.cycle(first_two), 2))
    if not targets:
        return b.build()
    if len(set(targets)) == 1:
        with b.loop(hammers):
            b.act(targets[0]).pre()
        return b.build()
    with b.loop(hammers // 2):
        b.act(targets[0]).pre()
        b.act(targets[1]).pre()
    if hammers % 2:
        b.act(targets[0]).pre()
    return b.build()


def random_noise_program(length: int, span: int, seed: int) -> Program:
    """Uniform random row traffic (the oracle battery's sanity lane)."""
    if span < 1:
        raise ValueError("span must be positive")
    rng = random.Random(seed)
    b = ProgramBuilder("random")
    for _ in range(length):
        b.act(rng.randrange(span)).pre()
    return b.build()


def refresh_sync_program(
    row: int, windows: int, hammers_per_window: int
) -> Program:
    """Window-aligned hammering: sync, burst, repeat."""
    return replace(
        REFRESH_SYNC,
        defaults={
            "row": row,
            "windows": windows,
            "hammers": hammers_per_window,
        },
    )


# ----------------------------------------------------------------------
# Registry entries (context-derived defaults)
# ----------------------------------------------------------------------


def _default_hammers(ctx: AttackContext, factor: float = 2.5) -> int:
    """``factor`` crossings of the T_RH/2 threshold, plus slack."""
    return int(factor * ctx.threshold) + 8


def _center_row(ctx: AttackContext) -> int:
    return ctx.geometry.rows_per_bank // 2


@register_attack(
    "single_sided",
    summary="hammer one row continuously",
    params={
        "row": Param(int, 5, "aggressor row (global id)"),
        "hammers": Param(int, help="activations (default: 2.5*T_H + 8)"),
    },
)
def _single_sided(
    ctx: AttackContext, row: int = 5, hammers: Optional[int] = None
) -> Program:
    if hammers is None:
        hammers = _default_hammers(ctx)
    return single_sided_program(row, hammers)


@register_attack(
    "double_sided",
    summary="alternate the two rows sandwiching a victim",
    params={
        "victim": Param(int, help="victim row (default: mid-bank)"),
        "hammers": Param(
            int, help="hammers per side (default: 1.25*T_H + 8)"
        ),
    },
)
def _double_sided(
    ctx: AttackContext,
    victim: Optional[int] = None,
    hammers: Optional[int] = None,
) -> Program:
    if victim is None:
        victim = _center_row(ctx)
    if hammers is None:
        hammers = _default_hammers(ctx, factor=1.25)
    return double_sided_program(victim, hammers)


@register_attack(
    "many_sided",
    summary="TRRespass-style round-robin over many aggressors",
    params={
        "aggs": Param(int, DEFAULT_MANY_AGGRESSORS, "aggressor count"),
        "base": Param(int, 200, "first aggressor row"),
        "stride": Param(int, 1, "row stride between aggressors"),
        "rounds": Param(
            int,
            help="sweeps (default: 1.25*T_H + 8, capped at"
            f" {MANY_ACT_CAP} total activations)",
        ),
    },
)
def _many_sided(
    ctx: AttackContext,
    aggs: int = DEFAULT_MANY_AGGRESSORS,
    base: int = 200,
    stride: int = 1,
    rounds: Optional[int] = None,
) -> Program:
    if rounds is None:
        rounds = _default_hammers(ctx, factor=1.25)
        cap = MANY_ACT_CAP // max(1, aggs)
        if rounds > cap:
            # Capped below the threshold it can no longer exceed —
            # shrink to sanity size rather than burn the full cap.
            rounds = min(cap, 2048)
    aggressors = [base + i * stride for i in range(aggs)]
    return many_sided_program(aggressors, rounds)


@register_attack(
    "half_double",
    summary="distance-2 hammering with rare near accesses (Half-Double)",
    params={
        "victim": Param(int, help="victim row (default: mid-bank)"),
        "far_hammers": Param(
            int, help="distance-2 hammers (default: 2.5*T_H + 8)"
        ),
        "near_ratio": Param(int, 1000, "far hammers per near access"),
    },
)
def _half_double(
    ctx: AttackContext,
    victim: Optional[int] = None,
    far_hammers: Optional[int] = None,
    near_ratio: int = 1000,
) -> Program:
    if victim is None:
        victim = _center_row(ctx)
    if far_hammers is None:
        far_hammers = _default_hammers(ctx)
    return half_double_program(victim, far_hammers, near_ratio)


@register_attack(
    "thrash",
    summary="decoy-sweep interleaved hammering (tracker thrashing)",
    params={
        "aggressor": Param(int, 5, "aggressor row (global id)"),
        "decoys": Param(
            int, help="decoy row count (default: min(512, rows/4))"
        ),
        "decoy_base": Param(
            int, help="first decoy row (default: mid-memory)"
        ),
        "hammers": Param(
            int, help="aggressor activations (default: 4*T_H)"
        ),
        "interleave": Param(int, 8, "hammers per decoy sweep"),
    },
)
def _thrash(
    ctx: AttackContext,
    aggressor: int = 5,
    decoys: Optional[int] = None,
    decoy_base: Optional[int] = None,
    hammers: Optional[int] = None,
    interleave: int = 8,
) -> Program:
    total_rows = ctx.geometry.total_rows
    if decoys is None:
        decoys = min(512, max(1, total_rows // 4))
    if decoy_base is None:
        decoy_base = min(total_rows // 2, total_rows - decoys)
    if hammers is None:
        hammers = 4 * ctx.threshold
    decoy_rows = range(decoy_base, decoy_base + decoys)
    return thrash_then_hammer_program(
        aggressor, decoy_rows, hammers, interleave=interleave
    )


@register_attack(
    "rcc_thrash",
    summary="distinct-row churn forcing Hydra's RCT path (§5.3)",
    params={
        "target_rows": Param(
            int, help="distinct rows (default: min(1024, rows/2))"
        ),
        "rounds": Param(int, 4, "shuffled sweeps over the row set"),
        "seed": Param(int, 11, "RNG seed for row choice and order"),
    },
)
def _rcc_thrash(
    ctx: AttackContext,
    target_rows: Optional[int] = None,
    rounds: int = 4,
    seed: int = 11,
) -> Program:
    if target_rows is None:
        target_rows = min(1024, max(1, ctx.geometry.total_rows // 2))
    return rcc_thrash_program(
        ctx.geometry, target_rows, rounds, seed=seed
    )


@register_attack(
    "rct_region",
    summary="hammer the DRAM rows storing the RCT itself (§5.2.2)",
    params={
        "hammers": Param(int, help="activations (default: 2.5*T_H + 8)"),
        "counter_bytes": Param(int, 1, "RCT counter width"),
    },
)
def _rct_region(
    ctx: AttackContext,
    hammers: Optional[int] = None,
    counter_bytes: int = 1,
) -> Program:
    if hammers is None:
        hammers = _default_hammers(ctx)
    return rct_region_program(
        ctx.geometry, hammers, counter_bytes=counter_bytes
    )


@register_attack(
    "random",
    summary="uniform random row traffic (oracle sanity lane)",
    params={
        "length": Param(
            int,
            help=f"activations (default: min(4*T_H, {RANDOM_ACT_CAP}))",
        ),
        "span": Param(
            int, help="row span drawn from (default: min(4096, rows))"
        ),
        "seed": Param(int, RANDOM_SEED, "RNG seed"),
    },
)
def _random_noise(
    ctx: AttackContext,
    length: Optional[int] = None,
    span: Optional[int] = None,
    seed: int = RANDOM_SEED,
) -> Program:
    if span is None:
        span = max(1, min(4096, ctx.geometry.total_rows))
    if length is None:
        length = min(4 * ctx.threshold, RANDOM_ACT_CAP)
    return random_noise_program(length, span, seed)


@register_attack(
    "refresh_sync",
    summary="window-aligned burst hammering (sync, burst, repeat)",
    params={
        "row": Param(int, 5, "aggressor row (global id)"),
        "windows": Param(int, 4, "tracking windows attacked"),
        "hammers": Param(
            int, help="hammers per window (default: 1.25*T_H + 8)"
        ),
    },
)
def _refresh_sync(
    ctx: AttackContext,
    row: int = 5,
    windows: int = 4,
    hammers: Optional[int] = None,
) -> Program:
    if hammers is None:
        hammers = _default_hammers(ctx, factor=1.25)
    return refresh_sync_program(row, windows, hammers)
