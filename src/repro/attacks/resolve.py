"""Binding attack programs against a concrete system.

``resolve`` turns a placeholder-bearing :class:`Program` into a
:class:`ResolvedProgram` whose operands are all plain integers:

- placeholders are substituted from ``bindings`` (explicit values win
  over the program's defaults; a placeholder with neither raises
  :class:`UnboundPlaceholderError` naming it);
- ``act`` targets are normalized to **global row ids** — ``bank=``
  addressing is folded in via ``bank * rows_per_bank + row``;
- every target is validated against the
  :class:`~repro.dram.timing.DramGeometry`. Out-of-range rows are the
  classic silent attack-generator bug (``double_sided`` on the top row
  of a bank happily "hammers" a row that does not exist, and the
  tracker under test gets credit for surviving nothing), so the
  default policy is to **raise** :class:`AttackBoundsError`;
  ``bounds="clamp"`` clamps into range instead for callers that want
  edge patterns degraded rather than rejected;
- loop and nop counts must resolve to non-negative integers.

Resolving without a geometry skips the bounds check (the binding and
normalization steps still run) — that is the legacy generators'
historical behaviour, kept for shims called without a geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.attacks.ops import (
    Act,
    Expr,
    Loop,
    Nop,
    Op,
    Placeholder,
    Pre,
    Program,
    SyncRefresh,
)
from repro.dram.timing import DramGeometry

__all__ = [
    "AttackBoundsError",
    "UnboundPlaceholderError",
    "ResolvedProgram",
    "resolve",
]

#: Bounds policies accepted by :func:`resolve`.
BOUNDS_POLICIES = ("raise", "clamp")


class AttackBoundsError(ValueError):
    """An attack program targets a row outside the DRAM geometry."""


class UnboundPlaceholderError(ValueError):
    """A placeholder has neither an explicit binding nor a default."""


@dataclass(frozen=True)
class ResolvedProgram:
    """A fully bound program: every operand an int, rows global."""

    name: str
    ops: Tuple[Op, ...]
    #: The geometry the program was validated against (None = unchecked).
    geometry: Optional[DramGeometry] = None


def _bind(expr: Expr, bindings: Mapping[str, int]) -> int:
    if isinstance(expr, Placeholder):
        try:
            return int(bindings[expr.name]) + expr.offset
        except KeyError:
            raise UnboundPlaceholderError(
                f"placeholder ${expr.name} is unbound; bind it explicitly"
                " or give the program a default"
            ) from None
    return int(expr)


def _check_row(
    row: int, geometry: Optional[DramGeometry], bounds: str, what: str
) -> int:
    if geometry is None:
        return row
    limit = geometry.total_rows
    if 0 <= row < limit:
        return row
    if bounds == "clamp":
        return min(max(row, 0), limit - 1)
    raise AttackBoundsError(
        f"{what} {row} outside geometry (0..{limit - 1});"
        " pass bounds='clamp' to clamp instead"
    )


def resolve(
    program: Program,
    bindings: Optional[Mapping[str, int]] = None,
    geometry: Optional[DramGeometry] = None,
    bounds: str = "raise",
) -> ResolvedProgram:
    """Bind, normalize, and bounds-check one program. See module doc."""
    if bounds not in BOUNDS_POLICIES:
        raise ValueError(
            f"unknown bounds policy {bounds!r}; expected one of "
            + ", ".join(BOUNDS_POLICIES)
        )
    merged: Dict[str, int] = dict(program.defaults)
    if bindings:
        merged.update({k: int(v) for k, v in bindings.items()})

    def resolve_ops(ops: Tuple[Op, ...]) -> Tuple[Op, ...]:
        resolved = []
        for op in ops:
            if isinstance(op, Act):
                row = _bind(op.row, merged)
                if op.bank is not None:
                    bank = _bind(op.bank, merged)
                    if geometry is not None:
                        if not 0 <= bank < geometry.total_banks:
                            raise AttackBoundsError(
                                f"bank {bank} outside geometry"
                                f" (0..{geometry.total_banks - 1})"
                            )
                        if not 0 <= row < geometry.rows_per_bank:
                            if bounds == "clamp":
                                row = min(
                                    max(row, 0), geometry.rows_per_bank - 1
                                )
                            else:
                                raise AttackBoundsError(
                                    f"row {row} outside bank"
                                    f" (0..{geometry.rows_per_bank - 1})"
                                )
                        row = bank * geometry.rows_per_bank + row
                    else:
                        raise ValueError(
                            "bank-addressed act needs a geometry to"
                            " normalize against"
                        )
                else:
                    row = _check_row(row, geometry, bounds, "row")
                resolved.append(Act(row=row, bank=None))
            elif isinstance(op, Pre):
                resolved.append(op)
            elif isinstance(op, Nop):
                count = _bind(op.count, merged)
                if count < 0:
                    raise ValueError(f"nop count must be >= 0, got {count}")
                resolved.append(Nop(count=count))
            elif isinstance(op, SyncRefresh):
                resolved.append(op)
            elif isinstance(op, Loop):
                count = _bind(op.count, merged)
                if count < 0:
                    raise ValueError(f"loop count must be >= 0, got {count}")
                resolved.append(
                    Loop(count=count, body=resolve_ops(op.body))
                )
            else:  # pragma: no cover - the Op union is closed
                raise TypeError(f"unknown op {op!r}")
        return tuple(resolved)

    return ResolvedProgram(
        name=program.name, ops=resolve_ops(program.ops), geometry=geometry
    )
