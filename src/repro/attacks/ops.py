"""The attack-program AST: hammer payloads as data.

Modeled on the PyRAM shape (SNIPPETS.md snippet 2): an attack is a
small tree of DDR-command-level operations —

- :class:`Act` — activate a row (``bank=…, row=…`` or a global row id),
- :class:`Pre` — precharge (structural in this simulator: the
  activation-driven engines consume ACTs only, but keeping PRE in the
  program preserves the command-stream shape and its count),
- :class:`Nop` — idle slots (counted, not simulated),
- :class:`Loop` — repeat a body N times,
- :class:`SyncRefresh` — align to the next tracking-window / refresh
  boundary (compiles to a window-reset event the security harness
  executes),

with **late-bound placeholders** (:class:`Placeholder`) wherever a row,
bank, or count is not yet known. A program with placeholders is a
template; :mod:`repro.attacks.resolve` binds placeholders against
concrete values and a :class:`~repro.dram.timing.DramGeometry`, and
:mod:`repro.attacks.compile` unrolls the result into the flat
activation sequences both harnesses already consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union


@dataclass(frozen=True)
class Placeholder:
    """A late-bound integer: ``$name`` plus a constant offset.

    Supports the arithmetic attack programs actually need — a fixed
    offset from a bound value (``P("victim") - 1`` is the row above
    the victim). Anything fancier belongs in the program builder,
    which is ordinary Python.
    """

    name: str
    offset: int = 0

    def __add__(self, other: int) -> "Placeholder":
        return Placeholder(self.name, self.offset + int(other))

    def __sub__(self, other: int) -> "Placeholder":
        return Placeholder(self.name, self.offset - int(other))

    def render(self) -> str:
        if self.offset > 0:
            return f"${self.name}+{self.offset}"
        if self.offset < 0:
            return f"${self.name}{self.offset}"
        return f"${self.name}"


def P(name: str) -> Placeholder:
    """Shorthand placeholder constructor for the builder API."""
    return Placeholder(name)


#: An operand: a literal int or a placeholder to be bound at resolve
#: time.
Expr = Union[int, Placeholder]


@dataclass(frozen=True)
class Act:
    """Activate ``row`` (a global row id, or a per-bank row when
    ``bank`` is given)."""

    row: Expr
    bank: Optional[Expr] = None


@dataclass(frozen=True)
class Pre:
    """Precharge the open row (structural; counted, never simulated)."""


@dataclass(frozen=True)
class Nop:
    """``count`` idle slots (structural; counted, never simulated)."""

    count: Expr = 1


@dataclass(frozen=True)
class SyncRefresh:
    """Synchronize with the next tracking-window / refresh boundary."""


@dataclass(frozen=True)
class Loop:
    """Repeat ``body`` ``count`` times."""

    count: Expr
    body: Tuple["Op", ...]


Op = Union[Act, Pre, Nop, SyncRefresh, Loop]


@dataclass(frozen=True)
class Program:
    """One attack program: named op tree plus default bindings.

    ``defaults`` pre-bind placeholders so a program is runnable out of
    the box; explicit bindings at resolve time override them.
    """

    name: str
    ops: Tuple[Op, ...]
    defaults: Mapping[str, int] = field(default_factory=dict)

    def placeholders(self) -> Tuple[str, ...]:
        """Sorted names of every placeholder the program references."""
        names: Dict[str, None] = {}

        def walk(ops: Tuple[Op, ...]) -> None:
            for op in ops:
                if isinstance(op, Act):
                    for expr in (op.row, op.bank):
                        if isinstance(expr, Placeholder):
                            names[expr.name] = None
                elif isinstance(op, (Nop, Loop)):
                    if isinstance(op.count, Placeholder):
                        names[op.count.name] = None
                    if isinstance(op, Loop):
                        walk(op.body)

        walk(self.ops)
        return tuple(sorted(names))

    def unbound(self) -> Tuple[str, ...]:
        """Placeholders with no default binding (must be given)."""
        return tuple(
            name for name in self.placeholders() if name not in self.defaults
        )

    def walk(self) -> Iterator[Op]:
        """Every op in the tree, loops included, in source order."""
        stack = list(reversed(self.ops))
        while stack:
            op = stack.pop()
            yield op
            if isinstance(op, Loop):
                stack.extend(reversed(op.body))

    # ------------------------------------------------------------------
    # Text form (round-trips through repro.attacks.parse)
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The program's text-DSL form (see :mod:`repro.attacks.parse`)."""
        lines = [f"# program: {self.name}"]
        for key, value in sorted(dict(self.defaults).items()):
            lines.append(f"let {key} = {value}")
        lines.extend(_render_ops(self.ops, indent=0))
        return "\n".join(lines) + "\n"


def _render_expr(expr: Expr) -> str:
    if isinstance(expr, Placeholder):
        return expr.render()
    return str(expr)


def _render_ops(ops: Tuple[Op, ...], indent: int) -> list:
    pad = "    " * indent
    lines = []
    for op in ops:
        if isinstance(op, Act):
            if op.bank is None:
                lines.append(f"{pad}act row={_render_expr(op.row)}")
            else:
                lines.append(
                    f"{pad}act bank={_render_expr(op.bank)}"
                    f" row={_render_expr(op.row)}"
                )
        elif isinstance(op, Pre):
            lines.append(f"{pad}pre")
        elif isinstance(op, Nop):
            if op.count == 1:
                lines.append(f"{pad}nop")
            else:
                lines.append(f"{pad}nop {_render_expr(op.count)}")
        elif isinstance(op, SyncRefresh):
            lines.append(f"{pad}sync_refresh")
        elif isinstance(op, Loop):
            lines.append(f"{pad}loop {_render_expr(op.count)}:")
            lines.extend(_render_ops(op.body, indent + 1))
        else:  # pragma: no cover - the Op union is closed
            raise TypeError(f"unknown op {op!r}")
    return lines
