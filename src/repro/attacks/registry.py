"""Declarative attack registry and spec-string configuration.

The mirror image of :mod:`repro.trackers.registry`, for adversaries:
every attack program the simulator knows registers itself here with a
name and a typed parameter schema, and anywhere the stack accepts an
attack it accepts a **spec string** in the same grammar trackers use::

    single_sided
    many_sided@aggs=18,rounds=4096
    half_double@victim=4000,near_ratio=500
    rct_region@hammers=10000

Attack builders receive an :class:`AttackContext` — the slice of a
system an adversary can observe (geometry, timing, T_RH) — and return
a :class:`~repro.attacks.ops.Program`. Parameters left at their
defaults are derived from the context (e.g. hammer counts scale with
the mitigation threshold T_RH/2), so ``compile_attack("single_sided",
ctx)`` always yields a sequence sized to actually exercise the rung
under test.

``compile_attack`` is the one-call path the harnesses use:
spec → builder → resolve (bounds-checked against the context's
geometry) → :class:`~repro.attacks.compile.CompiledAttack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.attacks.compile import CompiledAttack, compile_program
from repro.attacks.ops import Program
from repro.attacks.resolve import resolve
from repro.dram.timing import (
    PAPER_GEOMETRY,
    PAPER_TIMING,
    DramGeometry,
    DramTiming,
)
from repro.trackers.registry import (
    Param,
    format_param_value,
    parse_param_items,
)

__all__ = [
    "AttackContext",
    "AttackInfo",
    "AttackSpec",
    "attack_info",
    "available_attacks",
    "build_attack",
    "canonical_attack_spec",
    "compile_attack",
    "parse_attack_spec",
    "register_attack",
]


@dataclass(frozen=True)
class AttackContext:
    """What an adversary is assumed to know about the system under
    attack: its geometry, timing, and the threshold being defended."""

    geometry: DramGeometry = PAPER_GEOMETRY
    timing: DramTiming = PAPER_TIMING
    trh: int = 500

    @property
    def threshold(self) -> int:
        """The T_RH/2 mitigation threshold attacks are sized against."""
        return max(1, self.trh // 2)

    @property
    def act_max(self) -> int:
        """ACT_max: the most activations one bank fits in a window."""
        return self.timing.max_activations_per_window()

    def with_trh(self, trh: int) -> "AttackContext":
        return replace(self, trh=trh)

    @classmethod
    def from_system(cls, config: Any) -> "AttackContext":
        """Context from anything geometry/timing/trh-shaped
        (:class:`~repro.sim.config.SystemConfig`, a tracker context)."""
        return cls(
            geometry=config.geometry, timing=config.timing, trh=config.trh
        )


@dataclass(frozen=True)
class AttackInfo:
    """One registered attack: its program builder and parameter schema."""

    name: str
    builder: Callable[..., Program]
    params: Mapping[str, Param] = field(default_factory=dict)
    summary: str = ""


_REGISTRY: Dict[str, AttackInfo] = {}


def register_attack(
    name: str,
    *,
    params: Optional[Mapping[str, Param]] = None,
    summary: str = "",
) -> Callable[[Callable[..., Program]], Callable[..., Program]]:
    """Decorator adding one attack-program builder to the registry.

    The decorated callable receives an :class:`AttackContext` plus any
    spec parameters (coerced to their declared types) as keyword
    arguments, and returns a :class:`Program`.
    """

    def decorate(builder: Callable[..., Program]) -> Callable[..., Program]:
        if name in _REGISTRY:
            raise ValueError(f"attack {name!r} registered twice")
        _REGISTRY[name] = AttackInfo(
            name=name,
            builder=builder,
            params=dict(params or {}),
            summary=summary,
        )
        return builder

    return decorate


def _ensure_registered() -> None:
    # The built-in zoo lives in repro.attacks.programs; importing it
    # populates the registry. Lazy so this module stays a leaf.
    import repro.attacks.programs  # noqa: F401


def available_attacks() -> List[str]:
    """Sorted names of every registered attack program."""
    _ensure_registered()
    return sorted(_REGISTRY)


def attack_info(name: str) -> AttackInfo:
    """Registry entry for ``name`` (a bare name, not a spec)."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown attack {name!r}; available: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


@dataclass(frozen=True)
class AttackSpec:
    """A parsed ``name@key=value,...`` spec (params coerced + sorted)."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def canonical(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={format_param_value(value)}"
            for key, value in self.params
        )
        return f"{self.name}@{rendered}"


def parse_attack_spec(spec: Union[str, AttackSpec]) -> AttackSpec:
    """Parse and validate an attack spec against the registry."""
    if isinstance(spec, AttackSpec):
        return spec
    name, _, rest = spec.partition("@")
    name = name.strip()
    info = attack_info(name)
    if not rest.strip():
        if "@" in spec:
            raise ValueError(f"empty parameter list in spec {spec!r}")
        return AttackSpec(name=name)
    params = parse_param_items(spec, f"attack {name}", rest, info.params)
    return AttackSpec(name=name, params=tuple(sorted(params.items())))


def canonical_attack_spec(spec: Union[str, AttackSpec]) -> str:
    """Normalized string form (stable across spacing/ordering)."""
    return parse_attack_spec(spec).canonical()


def build_attack(
    spec: Union[str, AttackSpec], context: AttackContext
) -> Program:
    """Construct the (possibly placeholder-bearing) program a spec
    describes, with defaults derived from the context."""
    parsed = parse_attack_spec(spec)
    info = attack_info(parsed.name)
    return info.builder(context, **dict(parsed.params))


def compile_attack(
    spec: Union[str, AttackSpec],
    context: AttackContext,
    bindings: Optional[Mapping[str, int]] = None,
    bounds: str = "raise",
) -> CompiledAttack:
    """Spec → program → resolve against the context → compiled attack."""
    program = build_attack(spec, context)
    resolved = resolve(
        program,
        bindings=bindings,
        geometry=context.geometry,
        bounds=bounds,
    )
    return compile_program(resolved)
