"""Streaming trace substrate: chunked sources in bounded memory.

A :class:`~repro.workloads.trace.Trace` holds a whole trace in RAM —
the right trade for the 36-workload figure sweeps, but a hard cap on
the long-duration campaigns ultra-low T_RH tracking is *for* (billions
of activations across thousands of 64 ms windows). This module grows
the substrate from "one big array" to "a stream of bounded chunks":

- :class:`TraceSource` — the protocol every trace-consuming layer
  (both memory-controller engines, ``simulate``, the characterization
  tools) actually relies on. ``Trace`` satisfies it unchanged.
- :class:`TraceChunk` — one bounded slice of a trace as parallel numpy
  arrays; the unit of streaming I/O.
- :class:`ChunkedTrace` — a trace stored as memory-mapped ``.npy``
  segments on disk plus a JSON manifest. Iteration materializes one
  chunk at a time (including the per-chunk resolved-topology columns
  the fast engine consumes), so peak memory is bounded by the chunk
  size, not the trace length.
- :class:`ExternalTraceReader` / :func:`write_external_trace` — a
  DRAMSim/USIMM-style line-oriented text format (grammar in
  DESIGN.md §13) so real recorded traces replay through the simulator
  without conversion, also chunk-at-a-time.
- :func:`characterize_chunks` — the Table-3 statistics computed in one
  streaming pass, bit-identical to ``characterize`` on the
  materialized concatenation.

The chunk-boundary invariant all of this rests on: a chunked stream
yields exactly the tuples the materialized trace would, in the same
order, computed with the same arithmetic — so both engines produce
bit-identical ``RunResult``s from either representation (pinned by
``tests/sim/test_stream_parity.py``).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import (
    IO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.workloads.trace import Trace, TraceStatistics

try:  # pragma: no cover - exercised only on Python < 3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


#: Default requests per chunk when a caller streams without choosing:
#: ~64K requests keep the per-chunk Python-list columns in the tens of
#: megabytes while amortizing per-chunk numpy/parse overhead.
DEFAULT_STREAM_CHUNK = 1 << 16

#: Manifest schema identifier of a chunked-trace directory.
CHUNKED_FORMAT = "repro-chunked-trace"
CHUNKED_VERSION = 1

#: File suffixes treated as the external text format (anything that is
#: neither ``.npz`` nor a directory is parsed as text too).
TEXT_SUFFIXES = (".trc", ".txt", ".trace")


@runtime_checkable
class TraceSource(Protocol):
    """What every trace-consuming layer requires of a trace.

    Both engines duck-type exactly this surface: the queued engine
    iterates 4-tuples, the fast engine asks for ``resolved_stream``;
    ``simulate`` reads ``name``; the characterization and conversion
    tools walk ``chunks()``. ``Trace`` (whole-in-RAM),
    :class:`ChunkedTrace` (mmapped segments), and
    :class:`ExternalTraceReader` (text files) all satisfy it — only
    the memory profile differs.
    """

    name: str

    def __iter__(self) -> Iterator[Tuple[float, int, int, bool]]:
        """Yield ``(gap_ns, row_id, n_lines, is_write)`` per request."""
        ...

    def resolved_stream(
        self, rows_per_bank: int, banks_per_channel: int
    ) -> Iterator[Tuple[float, int, int, int, int, int, bool]]:
        """Yield requests with bank/channel topology pre-resolved."""
        ...

    def chunks(self) -> Iterator["TraceChunk"]:
        """Yield the trace as bounded :class:`TraceChunk` slices."""
        ...


@dataclass(frozen=True)
class TraceChunk:
    """One bounded slice of a trace, as parallel numpy arrays.

    The dtypes match :class:`~repro.workloads.trace.Trace` exactly
    (float64 / int64 / int32 / bool), so chunked round-trips preserve
    every bit.
    """

    gaps_ns: np.ndarray
    rows: np.ndarray
    lines: np.ndarray
    writes: np.ndarray

    def __len__(self) -> int:
        return len(self.rows)

    @staticmethod
    def of(trace: Trace) -> "TraceChunk":
        """View one whole ``Trace`` as a single chunk (no copy)."""
        return TraceChunk(trace.gaps_ns, trace.rows, trace.lines, trace.writes)

    def slice(self, start: int, stop: int) -> "TraceChunk":
        return TraceChunk(
            self.gaps_ns[start:stop],
            self.rows[start:stop],
            self.lines[start:stop],
            self.writes[start:stop],
        )


def _chunk_tuple_stream(
    chunks: Iterable[TraceChunk],
) -> Iterator[Tuple[float, int, int, bool]]:
    """The generic 4-tuple stream, one chunk of lists at a time."""
    for chunk in chunks:
        yield from zip(
            np.asarray(chunk.gaps_ns, dtype=np.float64).tolist(),
            np.asarray(chunk.rows, dtype=np.int64).tolist(),
            np.asarray(chunk.lines, dtype=np.int32).tolist(),
            np.asarray(chunk.writes, dtype=bool).tolist(),
        )


def _resolved_chunk_stream(
    chunks: Iterable[TraceChunk], rows_per_bank: int, banks_per_channel: int
) -> Iterator[Tuple[float, int, int, int, int, int, bool]]:
    """Per-chunk resolved-topology stream (the fast engine's diet).

    Identical arithmetic to ``Trace.resolved_stream`` — vectorized
    int64 floor division/modulo on non-negative row ids — applied one
    chunk at a time, so only one chunk's columns are ever resident.
    """
    if rows_per_bank <= 0 or banks_per_channel <= 0:
        raise ValueError("topology divisors must be positive")
    for chunk in chunks:
        rows = np.asarray(chunk.rows, dtype=np.int64)
        bank_index = rows // rows_per_bank
        yield from zip(
            np.asarray(chunk.gaps_ns, dtype=np.float64).tolist(),
            rows.tolist(),
            (rows % rows_per_bank).tolist(),
            bank_index.tolist(),
            (bank_index // banks_per_channel).tolist(),
            np.asarray(chunk.lines, dtype=np.int32).tolist(),
            np.asarray(chunk.writes, dtype=bool).tolist(),
        )


class _StreamingSourceBase:
    """Shared ``TraceSource`` plumbing for chunk-backed sources."""

    name: str = "trace"

    def chunks(self) -> Iterator[TraceChunk]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tuple[float, int, int, bool]]:
        return _chunk_tuple_stream(self.chunks())

    def resolved_stream(
        self, rows_per_bank: int, banks_per_channel: int
    ) -> Iterator[Tuple[float, int, int, int, int, int, bool]]:
        return _resolved_chunk_stream(
            self.chunks(), rows_per_bank, banks_per_channel
        )

    def materialize(self) -> Trace:
        """Concatenate every chunk into one in-RAM ``Trace``.

        For tools and tests; defeats the bounded-memory point, so the
        simulation path never calls it implicitly.
        """
        return materialize(self)


# ----------------------------------------------------------------------
# Chunked on-disk traces (memory-mapped npy segments)
# ----------------------------------------------------------------------

_SEGMENT_COLUMNS = ("gaps", "rows", "lines", "writes")
_SEGMENT_DTYPES = {
    "gaps": np.float64,
    "rows": np.int64,
    "lines": np.int32,
    "writes": np.bool_,
}


class ChunkedTrace(_StreamingSourceBase):
    """A trace stored as mmapped ``.npy`` segments plus a manifest.

    Directory layout::

        <dir>/manifest.json             name, request/segment counts
        <dir>/seg-00000.gaps.npy        float64 inter-arrival gaps
        <dir>/seg-00000.rows.npy        int64 global row ids
        <dir>/seg-00000.lines.npy       int32 burst lengths
        <dir>/seg-00000.writes.npy      bool write flags
        <dir>/seg-00001.gaps.npy        ...

    ``chunks()`` opens one segment at a time with
    ``np.load(mmap_mode="r")``; downstream streams materialize at most
    one segment's columns, so replay memory is bounded by
    ``chunk_requests`` regardless of trace length.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise ValueError(
                f"{self.directory} is not a chunked trace (no manifest.json)"
            ) from None
        if manifest.get("format") != CHUNKED_FORMAT:
            raise ValueError(
                f"{manifest_path} is not a {CHUNKED_FORMAT} manifest"
            )
        self.name: str = str(manifest.get("name", self.directory.name))
        self.chunk_requests: int = int(
            manifest.get("chunk_requests", DEFAULT_STREAM_CHUNK)
        )
        self._segments: List[Dict[str, Union[str, int]]] = list(
            manifest.get("segments", [])
        )
        self.n_requests: int = int(
            manifest.get(
                "n_requests", sum(int(s["requests"]) for s in self._segments)
            )
        )

    def __len__(self) -> int:
        return self.n_requests

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    def segment_paths(self, index: int) -> Dict[str, Path]:
        stem = str(self._segments[index]["stem"])
        return {
            column: self.directory / f"{stem}.{column}.npy"
            for column in _SEGMENT_COLUMNS
        }

    def chunks(self) -> Iterator[TraceChunk]:
        for index in range(len(self._segments)):
            paths = self.segment_paths(index)
            yield TraceChunk(
                gaps_ns=np.load(paths["gaps"], mmap_mode="r"),
                rows=np.load(paths["rows"], mmap_mode="r"),
                lines=np.load(paths["lines"], mmap_mode="r"),
                writes=np.load(paths["writes"], mmap_mode="r"),
            )

    def delete(self) -> None:
        """Remove the backing directory (spooled-segment cleanup)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def write(
        cls,
        chunks: Iterable[TraceChunk],
        directory: Union[str, Path],
        name: str = "trace",
        chunk_requests: int = DEFAULT_STREAM_CHUNK,
    ) -> "ChunkedTrace":
        """Spool a chunk stream into on-disk segments and open it.

        Incoming chunks are re-chunked into segments of exactly
        ``chunk_requests`` requests (last one partial), so the writer's
        peak memory is one input chunk plus one segment buffer — a long
        trace never exists whole in RAM on the way to disk.
        """
        if chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        writer = _SegmentWriter(directory, chunk_requests)
        for chunk in chunks:
            writer.feed(chunk)
        segments, n_requests = writer.finish()
        manifest = {
            "format": CHUNKED_FORMAT,
            "version": CHUNKED_VERSION,
            "name": name,
            "chunk_requests": chunk_requests,
            "n_requests": n_requests,
            "segments": segments,
        }
        (directory / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        return cls(directory)

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        directory: Union[str, Path],
        chunk_requests: int = DEFAULT_STREAM_CHUNK,
    ) -> "ChunkedTrace":
        """Spool one in-RAM trace (tests, conversion tooling)."""
        return cls.write(
            [TraceChunk.of(trace)],
            directory,
            name=trace.name,
            chunk_requests=chunk_requests,
        )


class _SegmentWriter:
    """Accumulates chunks and flushes fixed-size npy segments."""

    def __init__(self, directory: Path, chunk_requests: int) -> None:
        self.directory = directory
        self.chunk_requests = chunk_requests
        self._pending: List[TraceChunk] = []
        self._pending_len = 0
        self._segments: List[Dict[str, Union[str, int]]] = []
        self._total = 0

    def feed(self, chunk: TraceChunk) -> None:
        if len(chunk) == 0:
            return
        self._pending.append(chunk)
        self._pending_len += len(chunk)
        while self._pending_len >= self.chunk_requests:
            self._flush(self.chunk_requests)

    def finish(self) -> Tuple[List[Dict[str, Union[str, int]]], int]:
        if self._pending_len:
            self._flush(self._pending_len)
        return self._segments, self._total

    def _flush(self, count: int) -> None:
        taken: List[TraceChunk] = []
        need = count
        while need > 0:
            head = self._pending[0]
            if len(head) <= need:
                taken.append(self._pending.pop(0))
                need -= len(head)
            else:
                taken.append(head.slice(0, need))
                self._pending[0] = head.slice(need, len(head))
                need = 0
        self._pending_len -= count
        stem = f"seg-{len(self._segments):05d}"
        columns = {
            "gaps": np.concatenate(
                [np.asarray(c.gaps_ns, dtype=np.float64) for c in taken]
            ),
            "rows": np.concatenate(
                [np.asarray(c.rows, dtype=np.int64) for c in taken]
            ),
            "lines": np.concatenate(
                [np.asarray(c.lines, dtype=np.int32) for c in taken]
            ),
            "writes": np.concatenate(
                [np.asarray(c.writes, dtype=bool) for c in taken]
            ),
        }
        for column, data in columns.items():
            np.save(self.directory / f"{stem}.{column}.npy", data)
        self._segments.append({"stem": stem, "requests": count})
        self._total += count


# ----------------------------------------------------------------------
# External text traces (DRAMSim/USIMM-style)
# ----------------------------------------------------------------------


class ExternalTraceReader(_StreamingSourceBase):
    """Stream a recorded text trace file without loading it whole.

    Format (full grammar in DESIGN.md §13): one request per line,
    whitespace-separated ::

        <gap_ns> <R|W> <row_id> [<n_lines>]

    ``gap_ns`` is the inter-arrival gap (float, nanoseconds),
    ``row_id`` the global row, ``n_lines`` the burst length in 64 B
    lines (default 1). ``#`` starts a comment; blank lines are
    ignored. This is the USIMM trace shape (inter-arrival gap +
    read/write + address) with the address already row-resolved.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        chunk_requests: int = DEFAULT_STREAM_CHUNK,
    ) -> None:
        if chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        self.path = Path(path)
        if not self.path.is_file():
            raise FileNotFoundError(f"no trace file at {self.path}")
        self.name = name if name is not None else self.path.stem
        self.chunk_requests = chunk_requests

    def chunks(self) -> Iterator[TraceChunk]:
        gaps: List[float] = []
        rows: List[int] = []
        lines: List[int] = []
        writes: List[bool] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                text = raw.split("#", 1)[0].strip()
                if not text:
                    continue
                fields = text.split()
                if len(fields) not in (3, 4):
                    raise ValueError(
                        f"{self.path}:{lineno}: expected"
                        " '<gap_ns> <R|W> <row_id> [n_lines]',"
                        f" got {raw.strip()!r}"
                    )
                try:
                    gap = float(fields[0])
                    row = int(fields[2], 0)
                    n_lines = int(fields[3]) if len(fields) == 4 else 1
                except ValueError:
                    raise ValueError(
                        f"{self.path}:{lineno}: malformed numeric field"
                        f" in {raw.strip()!r}"
                    ) from None
                kind = fields[1].upper()
                if kind not in ("R", "W"):
                    raise ValueError(
                        f"{self.path}:{lineno}: access type must be R or"
                        f" W, got {fields[1]!r}"
                    )
                if row < 0 or n_lines < 1:
                    raise ValueError(
                        f"{self.path}:{lineno}: row_id must be >= 0 and"
                        f" n_lines >= 1 in {raw.strip()!r}"
                    )
                gaps.append(gap)
                rows.append(row)
                lines.append(n_lines)
                writes.append(kind == "W")
                if len(rows) >= self.chunk_requests:
                    yield _chunk_from_lists(gaps, rows, lines, writes)
                    gaps, rows, lines, writes = [], [], [], []
        if rows:
            yield _chunk_from_lists(gaps, rows, lines, writes)


def _chunk_from_lists(gaps, rows, lines, writes) -> TraceChunk:
    return TraceChunk(
        gaps_ns=np.array(gaps, dtype=np.float64),
        rows=np.array(rows, dtype=np.int64),
        lines=np.array(lines, dtype=np.int32),
        writes=np.array(writes, dtype=bool),
    )


def write_external_trace(
    source: TraceSource, destination: Union[str, Path, IO[str]]
) -> int:
    """Write any trace source as the external text format; returns the
    request count. Streams chunk-at-a-time, so converting a long
    chunked trace never materializes it."""
    total = 0

    def _emit(handle: IO[str]) -> None:
        nonlocal total
        handle.write(f"# repro external trace: {source.name}\n")
        handle.write("# <gap_ns> <R|W> <row_id> <n_lines>\n")
        for gap, row, n_lines, is_write in _chunk_tuple_stream(source.chunks()):
            kind = "W" if is_write else "R"
            handle.write(f"{gap!r} {kind} {row} {n_lines}\n")
            total += 1

    if hasattr(destination, "write"):
        _emit(destination)  # type: ignore[arg-type]
    else:
        with Path(destination).open("w", encoding="utf-8") as handle:
            _emit(handle)
    return total


def read_external_trace(
    path: Union[str, Path], name: Optional[str] = None
) -> Trace:
    """Materialize an external text trace into one in-RAM ``Trace``."""
    reader = ExternalTraceReader(path, name=name)
    return materialize(reader)


# ----------------------------------------------------------------------
# Opening, materializing, characterizing
# ----------------------------------------------------------------------


def open_trace_source(
    path: Union[str, Path],
    chunk_requests: int = 0,
    name: Optional[str] = None,
) -> TraceSource:
    """Open a trace file/directory as the right kind of source.

    - a directory → :class:`ChunkedTrace` (always streamed);
    - ``*.npz`` → a materialized ``Trace`` (the npz payload is
      compressed, so it must be decompressed whole anyway);
    - anything else → the external text format:
      :class:`ExternalTraceReader` when ``chunk_requests > 0``, else a
      materialized ``Trace``.

    ``chunk_requests`` is the streaming chunk size; ``0`` asks for the
    materialized fast path where the format permits.
    """
    path = Path(path)
    if path.is_dir():
        return ChunkedTrace(path)
    if path.suffix == ".npz":
        trace = Trace.load(str(path))
        if name is not None:
            trace.name = name  # type: ignore[misc]
        return trace
    if chunk_requests > 0:
        return ExternalTraceReader(path, name=name, chunk_requests=chunk_requests)
    return read_external_trace(path, name=name)


def materialize(source: TraceSource) -> Trace:
    """Any trace source as one in-RAM ``Trace`` (tools, attack mixes).

    A ``Trace`` passes through untouched; chunked sources are
    concatenated — deliberately explicit, because it trades the
    bounded-memory property away.
    """
    if isinstance(source, Trace):
        return source
    parts = [
        (
            np.asarray(c.gaps_ns, dtype=np.float64),
            np.asarray(c.rows, dtype=np.int64),
            np.asarray(c.lines, dtype=np.int32),
            np.asarray(c.writes, dtype=bool),
        )
        for c in source.chunks()
    ]
    if not parts:
        return Trace(
            np.empty(0), np.empty(0, np.int64), np.empty(0, np.int32),
            np.empty(0, bool), name=getattr(source, "name", "trace"),
        )
    return Trace(
        gaps_ns=np.concatenate([p[0] for p in parts]),
        rows=np.concatenate([p[1] for p in parts]),
        lines=np.concatenate([p[2] for p in parts]),
        writes=np.concatenate([p[3] for p in parts]),
        name=getattr(source, "name", "trace"),
    )


def characterize_chunks(
    source: TraceSource, hot_threshold: int = 250
) -> TraceStatistics:
    """Table-3 statistics in one streaming pass over a source.

    Matches :func:`repro.workloads.trace.characterize` exactly —
    including the first-chunk coalescing rule *across* chunk
    boundaries: a chunk starting with the row the previous chunk ended
    on is the same activation, just as it would be in the concatenated
    array. Memory is bounded by one chunk plus the per-row activation
    count map (the unique-row footprint, which Table 3 itself bounds).
    """
    counts: Dict[int, int] = {}
    activations = 0
    line_transfers = 0
    previous_last_row: Optional[int] = None
    for chunk in source.chunks():
        rows = np.asarray(chunk.rows, dtype=np.int64)
        if len(rows) == 0:
            continue
        new_act = np.ones(len(rows), dtype=bool)
        new_act[1:] = rows[1:] != rows[:-1]
        if previous_last_row is not None and rows[0] == previous_last_row:
            new_act[0] = False
        act_rows = rows[new_act]
        unique, per_row = np.unique(act_rows, return_counts=True)
        for row, count in zip(unique.tolist(), per_row.tolist()):
            counts[row] = counts.get(row, 0) + count
        activations += int(len(act_rows))
        line_transfers += int(np.asarray(chunk.lines).sum())
        previous_last_row = int(rows[-1])
    if not counts:
        return TraceStatistics(0, 0, 0, 0.0, 0)
    hot = sum(1 for count in counts.values() if count > hot_threshold)
    return TraceStatistics(
        activations=activations,
        unique_rows=len(counts),
        act250_rows=hot,
        acts_per_row=activations / len(counts),
        line_transfers=line_transfers,
    )


def source_duration_ns(source: TraceSource) -> float:
    """Sum of inter-arrival gaps, streamed (program-intent duration)."""
    total = 0.0
    for chunk in source.chunks():
        total += float(np.asarray(chunk.gaps_ns, dtype=np.float64).sum())
    return total


def source_request_count(source: TraceSource) -> int:
    """Number of requests in a source, without materializing it."""
    length = getattr(source, "__len__", None)
    if length is not None:
        return len(source)  # type: ignore[arg-type]
    return sum(len(chunk) for chunk in source.chunks())
