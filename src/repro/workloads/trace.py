"""Memory-request traces and their row-activation statistics.

A :class:`Trace` is the unit of work the simulator consumes: a
sequence of row-level demand requests, each with a program-driven
inter-arrival gap, a global row id, and a burst length in 64 B lines.
Traces are stored as parallel numpy arrays for compactness and can be
saved/loaded (npz) so expensive generations are reusable.

:func:`characterize` reproduces Table 3's statistics from a trace —
the round-trip check that our synthetic generator actually matches the
paper's workload descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TraceStatistics:
    """Row-activation statistics of one trace window (Table 3 shape)."""

    activations: int
    unique_rows: int
    act250_rows: int
    acts_per_row: float
    line_transfers: int


class Trace:
    """Immutable sequence of (gap_ns, row_id, n_lines, is_write)."""

    __slots__ = ("gaps_ns", "rows", "lines", "writes", "name", "_columns", "_resolved")

    def __init__(
        self,
        gaps_ns: np.ndarray,
        rows: np.ndarray,
        lines: np.ndarray,
        writes: np.ndarray,
        name: str = "trace",
    ) -> None:
        n = len(rows)
        if not (len(gaps_ns) == len(lines) == len(writes) == n):
            raise ValueError("trace arrays must have equal length")
        self.gaps_ns = np.asarray(gaps_ns, dtype=np.float64)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.lines = np.asarray(lines, dtype=np.int32)
        self.writes = np.asarray(writes, dtype=bool)
        self.name = name
        #: Lazily materialized Python-scalar columns. Traces are
        #: immutable by contract, and memoized traces are replayed many
        #: times (once per tracker column of a sweep grid), so the
        #: ``tolist`` conversions are paid once, not per replay.
        self._columns: Optional[Tuple[list, list, list, list]] = None
        #: Lazily resolved per-request topology columns, keyed by
        #: ``(rows_per_bank, banks_per_channel)`` (one geometry per
        #: simulated system, but attack mixes reuse traces across
        #: scaled geometries).
        self._resolved: Dict[Tuple[int, int], tuple] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def _column_lists(self) -> Tuple[list, list, list, list]:
        columns = self._columns
        if columns is None:
            columns = (
                self.gaps_ns.tolist(),
                self.rows.tolist(),
                self.lines.tolist(),
                self.writes.tolist(),
            )
            self._columns = columns
        return columns

    def __iter__(self) -> Iterator[Tuple[float, int, int, bool]]:
        """Iterate as plain Python tuples (fast path for the core loop)."""
        return zip(*self._column_lists())

    def resolved_stream(
        self, rows_per_bank: int, banks_per_channel: int
    ) -> Iterator[Tuple[float, int, int, int, int, int, bool]]:
        """Iterate with bank/channel topology pre-resolved per request.

        Yields ``(gap_ns, row_id, local_row, bank_index, channel,
        n_lines, is_write)``. The integer divisions a controller would
        otherwise re-derive per request (``row // rows_per_bank`` etc.)
        are computed vectorized in numpy, once per (trace, geometry)
        pair, and cached. Values are bit-identical to the per-request
        scalar arithmetic: row ids are non-negative, so numpy int64
        floor division and modulo match Python's exactly.
        """
        if rows_per_bank <= 0 or banks_per_channel <= 0:
            raise ValueError("topology divisors must be positive")
        key = (rows_per_bank, banks_per_channel)
        resolved = self._resolved.get(key)
        if resolved is None:
            bank_index = self.rows // rows_per_bank
            resolved = (
                (self.rows % rows_per_bank).tolist(),
                bank_index.tolist(),
                (bank_index // banks_per_channel).tolist(),
            )
            self._resolved[key] = resolved
        gaps, rows, lines, writes = self._column_lists()
        local_rows, bank_indices, channels = resolved
        return zip(gaps, rows, local_rows, bank_indices, channels, lines, writes)

    def chunks(self):
        """This trace as a single-chunk stream (TraceSource surface).

        Lets every chunk-walking tool (streaming characterization,
        format conversion, spooling) treat a whole-in-RAM trace and a
        :class:`~repro.workloads.streaming.ChunkedTrace` uniformly.
        The yielded chunk is a zero-copy view.
        """
        from repro.workloads.streaming import TraceChunk

        yield TraceChunk.of(self)

    @property
    def total_lines(self) -> int:
        return int(self.lines.sum())

    @property
    def duration_hint_ns(self) -> float:
        """Program-intent duration (sum of inter-arrival gaps)."""
        return float(self.gaps_ns.sum())

    @staticmethod
    def from_rows(
        rows: Sequence[int],
        gap_ns: float = 50.0,
        n_lines: int = 1,
        name: str = "trace",
    ) -> "Trace":
        """Build a uniform-gap trace from a row-id sequence (tests/attacks)."""
        n = len(rows)
        return Trace(
            gaps_ns=np.full(n, float(gap_ns)),
            rows=np.asarray(rows, dtype=np.int64),
            lines=np.full(n, int(n_lines), dtype=np.int32),
            writes=np.zeros(n, dtype=bool),
            name=name,
        )

    @staticmethod
    def concatenate(traces: Sequence["Trace"], name: str = "trace") -> "Trace":
        """Concatenate traces back-to-back into one new trace.

        The inputs' lazily-built ``_columns``/``_resolved`` caches are
        *not* carried over — the result starts with cold caches and
        rebuilds them on first iteration. This is deliberate: the
        caches are plain derivations of the array data (``tolist`` and
        integer div/mod), so rebuilding cannot change any value — the
        concatenated trace resolves topology identically to its parts
        (pinned by ``tests/workloads/test_trace.py``). The same holds
        for the merged traces :mod:`repro.workloads.mixes` builds.
        """
        if not traces:
            raise ValueError("need at least one trace")
        return Trace(
            gaps_ns=np.concatenate([t.gaps_ns for t in traces]),
            rows=np.concatenate([t.rows for t in traces]),
            lines=np.concatenate([t.lines for t in traces]),
            writes=np.concatenate([t.writes for t in traces]),
            name=name,
        )

    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            gaps_ns=self.gaps_ns,
            rows=self.rows,
            lines=self.lines,
            writes=self.writes,
            name=np.array(self.name),
        )

    @staticmethod
    def load(path: str) -> "Trace":
        data = np.load(path, allow_pickle=False)
        return Trace(
            gaps_ns=data["gaps_ns"],
            rows=data["rows"],
            lines=data["lines"],
            writes=data["writes"],
            name=str(data["name"]),
        )


def characterize(trace: Trace, hot_threshold: int = 250) -> TraceStatistics:
    """Compute Table 3-style statistics for one trace.

    Counts *first-chunk* activations: consecutive same-row requests
    (the generator's burst chunks) count as a single activation, the
    same way the DRAM row buffer would coalesce them.
    """
    rows = trace.rows
    if len(rows) == 0:
        return TraceStatistics(0, 0, 0, 0.0, 0)
    new_act = np.ones(len(rows), dtype=bool)
    new_act[1:] = rows[1:] != rows[:-1]
    act_rows = rows[new_act]
    unique, counts = np.unique(act_rows, return_counts=True)
    return TraceStatistics(
        activations=int(len(act_rows)),
        unique_rows=int(len(unique)),
        act250_rows=int((counts > hot_threshold).sum()),
        acts_per_row=float(len(act_rows) / len(unique)),
        line_transfers=trace.total_lines,
    )


def statistics_by_window(
    trace: Trace, window_ns: float, hot_threshold: int = 250
) -> Dict[int, TraceStatistics]:
    """Per-window statistics, splitting by cumulative program time.

    One vectorized pass over the window ids: requests are grouped by
    window (stable, so in-window order is preserved), activations are
    coalesced with the dedup restarting at each window boundary —
    exactly as if each window were characterized as its own trace —
    and the per-window slices are read off searchsorted boundaries.
    The old implementation materialized a full sub-``Trace`` per
    window (O(windows x N) masking and copying); this allocates O(N)
    once, regardless of the window count.
    """
    if window_ns <= 0:
        raise ValueError("window_ns must be positive")
    n = len(trace)
    if n == 0:
        return {}
    arrival = np.cumsum(trace.gaps_ns)
    window_ids = (arrival // window_ns).astype(np.int64)
    order = np.argsort(window_ids, kind="stable")
    win = window_ids[order]
    rows = trace.rows[order]
    lines = trace.lines[order]
    # First-chunk activation coalescing, restarted per window: a
    # request is a new activation unless it repeats the previous row
    # *within the same window* (each window characterizes as its own
    # trace, so a row continuing across the boundary re-activates).
    new_act = np.ones(n, dtype=bool)
    new_act[1:] = (rows[1:] != rows[:-1]) | (win[1:] != win[:-1])
    act_win = win[new_act]
    act_rows = rows[new_act]
    windows = np.unique(win)
    starts = np.searchsorted(win, windows, side="left")
    ends = np.searchsorted(win, windows, side="right")
    act_starts = np.searchsorted(act_win, windows, side="left")
    act_ends = np.searchsorted(act_win, windows, side="right")
    result: Dict[int, TraceStatistics] = {}
    for index, window in enumerate(windows.tolist()):
        a0, a1 = int(act_starts[index]), int(act_ends[index])
        unique, counts = np.unique(act_rows[a0:a1], return_counts=True)
        activations = a1 - a0
        result[int(window)] = TraceStatistics(
            activations=activations,
            unique_rows=int(len(unique)),
            act250_rows=int((counts > hot_threshold).sum()),
            acts_per_row=float(activations / len(unique)),
            line_transfers=int(lines[starts[index] : ends[index]].sum()),
        )
    return result
