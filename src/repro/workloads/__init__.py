"""Workloads: Table 3 characteristics, trace generation, attacks."""

from repro.workloads.characteristics import (
    BY_NAME,
    SUITES,
    TABLE3,
    WorkloadCharacteristics,
    all_names,
    workload,
)
from repro.workloads.address_stream import (
    gups_address_stream,
    trace_from_addresses,
)
from repro.workloads.gups import generate_gups
from repro.workloads.mixes import attack_alongside, merge_traces
from repro.workloads.synthetic import (
    GeneratorConfig,
    SyntheticWorkloadGenerator,
    usable_rows,
)
from repro.workloads.streaming import (
    DEFAULT_STREAM_CHUNK,
    ChunkedTrace,
    ExternalTraceReader,
    TraceChunk,
    TraceSource,
    characterize_chunks,
    materialize,
    open_trace_source,
    read_external_trace,
    write_external_trace,
)
from repro.workloads.trace import (
    Trace,
    TraceStatistics,
    characterize,
    statistics_by_window,
)
from repro.workloads import attacks

__all__ = [
    "BY_NAME",
    "ChunkedTrace",
    "DEFAULT_STREAM_CHUNK",
    "ExternalTraceReader",
    "GeneratorConfig",
    "SUITES",
    "SyntheticWorkloadGenerator",
    "TABLE3",
    "Trace",
    "TraceChunk",
    "TraceSource",
    "TraceStatistics",
    "WorkloadCharacteristics",
    "all_names",
    "attack_alongside",
    "attacks",
    "merge_traces",
    "characterize",
    "characterize_chunks",
    "generate_gups",
    "gups_address_stream",
    "materialize",
    "open_trace_source",
    "read_external_trace",
    "statistics_by_window",
    "trace_from_addresses",
    "usable_rows",
    "workload",
    "write_external_trace",
]
