"""RowHammer attack pattern generators (§2.3, §5).

Each generator returns a sequence of global row ids — the activation
order an attacker induces. The security harness feeds these to a
tracker alongside a ground-truth oracle; the performance harness wraps
them into :class:`~repro.workloads.trace.Trace` objects to measure the
cost of attacks as workloads (memory performance attacks, §5.3).

Patterns covered: single-sided, double-sided, many-sided
(TRRespass-style), Half-Double, tracker-thrashing (defeats
under-provisioned SRAM tables), RCC-thrashing (forces Hydra's per-row
path to DRAM), and direct hammering of the DRAM rows that store the
RCT (§5.2.2).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

import numpy as np

from repro.core.rct import RowCountTable
from repro.dram.timing import DramGeometry


def single_sided(aggressor: int, hammers: int) -> List[int]:
    """Hammer one row continuously."""
    if hammers < 0:
        raise ValueError("hammers must be non-negative")
    return [aggressor] * hammers


def double_sided(victim: int, hammers_per_side: int) -> List[int]:
    """Alternate the two rows sandwiching ``victim``."""
    if victim < 1:
        raise ValueError("victim must have a row on each side")
    pattern = [victim - 1, victim + 1]
    return pattern * hammers_per_side


def many_sided(aggressors: Sequence[int], rounds: int) -> List[int]:
    """TRRespass-style: sweep many aggressors round-robin.

    Defeats trackers that only remember a handful of recent rows
    (in-DRAM TRR); every aggressor accumulates ``rounds`` activations.
    """
    if not aggressors:
        raise ValueError("need at least one aggressor")
    return list(itertools.chain.from_iterable([list(aggressors)] * rounds))


def half_double(victim: int, far_hammers: int, near_ratio: int = 1000) -> List[int]:
    """Half-Double: heavy distance-2 hammering plus rare near accesses.

    Bit-flips at ``victim`` arise from massive activation of the
    distance-2 rows combined with the victim-refresh activity this
    induces on the distance-1 rows (§5.2.1). One near access is mixed
    in per ``near_ratio`` far hammers.
    """
    if victim < 2:
        raise ValueError("victim needs distance-2 rows on both sides")
    sequence: List[int] = []
    near = [victim - 1, victim + 1]
    far = [victim - 2, victim + 2]
    for i in range(far_hammers):
        sequence.append(far[i % 2])
        if near_ratio and i % near_ratio == near_ratio - 1:
            sequence.append(near[(i // near_ratio) % 2])
    return sequence


def thrash_then_hammer(
    aggressor: int,
    decoy_rows: Sequence[int],
    hammers: int,
    interleave: int = 1,
) -> List[int]:
    """Interleave decoy-row sweeps with aggressor activations.

    Against an under-provisioned frequent-row table the decoys evict
    the aggressor's entry before it accumulates count (the TRRespass
    observation); against Hydra the decoys merely burn GCT counters —
    the per-row RCT backstop still sees every aggressor activation.
    """
    if interleave < 1:
        raise ValueError("interleave must be >= 1")
    sequence: List[int] = []
    decoys = list(decoy_rows)
    for i in range(hammers):
        sequence.append(aggressor)
        if decoys and i % interleave == 0:
            sequence.extend(decoys)
    return sequence


def rcc_thrash(
    geometry: DramGeometry,
    target_rows: int,
    rounds: int,
    seed: int = 11,
) -> List[int]:
    """Memory performance attack on Hydra's RCC (§5.3).

    Rapidly activates many distinct rows so their groups saturate and
    the per-row working set exceeds the RCC, forcing RCT
    read-modify-writes. Bounded by design to 2x extra activations per
    demand activation — the worst case the paper derives.
    """
    rng = np.random.default_rng(seed)
    rows = rng.choice(geometry.total_rows // 2, size=target_rows, replace=False)
    sequence: List[int] = []
    for _ in range(rounds):
        rng.shuffle(rows)
        sequence.extend(int(r) for r in rows)
    return sequence


def rct_region_attack(
    geometry: DramGeometry, hammers: int, counter_bytes: int = 1
) -> List[int]:
    """Directly hammer the DRAM rows storing the RCT (§5.2.2).

    Hydra guards these with the dedicated RIT-ACT SRAM counters; this
    pattern exists to verify that the guard mitigates within T_H.
    """
    table = RowCountTable(geometry, counter_bytes=counter_bytes)
    base = table.meta_base_local
    meta_rows = [
        bank * geometry.rows_per_bank + base + offset
        for bank in range(min(2, geometry.total_banks))
        for offset in range(table.meta_rows_per_bank)
    ]
    first_two = meta_rows[:2] if len(meta_rows) >= 2 else meta_rows
    return list(itertools.islice(itertools.cycle(first_two), hammers))
