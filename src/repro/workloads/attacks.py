"""RowHammer attack pattern generators (§2.3, §5) — legacy facade.

These functions predate the attack DSL and are kept as thin shims over
:mod:`repro.attacks.programs`: each builds the corresponding attack
program, resolves it, and returns the flat global-row activation
sequence. Golden tests pin every shim bit-identical to the original
hand-written generators. New code should prefer the program/registry
API (``repro.attacks.compile_attack("many_sided@aggs=18", ctx)``) —
programs are inspectable, bounds-checked, and spec-configurable.

Each shim accepts an optional ``geometry``; when given, the resolved
program is validated against it (the historical generators silently
emitted out-of-range rows — ``double_sided`` on a bank's top row
"hammers" a row that does not exist). ``bounds`` selects the policy:
``"raise"`` (default) raises :class:`~repro.attacks.resolve.
AttackBoundsError`, ``"clamp"`` clamps into range. The two generators
that always took a geometry (``rcc_thrash``, ``rct_region_attack``)
now validate unconditionally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attacks.compile import compile_program
from repro.attacks.programs import (
    double_sided_program,
    half_double_program,
    many_sided_program,
    rcc_thrash_program,
    rct_region_program,
    single_sided_program,
    thrash_then_hammer_program,
)
from repro.attacks.resolve import resolve
from repro.dram.timing import DramGeometry


def _rows(
    program, geometry: Optional[DramGeometry], bounds: str
) -> List[int]:
    resolved = resolve(program, geometry=geometry, bounds=bounds)
    return compile_program(resolved).rows()


def single_sided(
    aggressor: int,
    hammers: int,
    geometry: Optional[DramGeometry] = None,
    bounds: str = "raise",
) -> List[int]:
    """Hammer one row continuously."""
    return _rows(single_sided_program(aggressor, hammers), geometry, bounds)


def double_sided(
    victim: int,
    hammers_per_side: int,
    geometry: Optional[DramGeometry] = None,
    bounds: str = "raise",
) -> List[int]:
    """Alternate the two rows sandwiching ``victim``."""
    return _rows(
        double_sided_program(victim, hammers_per_side), geometry, bounds
    )


def many_sided(
    aggressors: Sequence[int],
    rounds: int,
    geometry: Optional[DramGeometry] = None,
    bounds: str = "raise",
) -> List[int]:
    """TRRespass-style: sweep many aggressors round-robin.

    Defeats trackers that only remember a handful of recent rows
    (in-DRAM TRR); every aggressor accumulates ``rounds`` activations.
    """
    return _rows(many_sided_program(aggressors, rounds), geometry, bounds)


def half_double(
    victim: int,
    far_hammers: int,
    near_ratio: int = 1000,
    geometry: Optional[DramGeometry] = None,
    bounds: str = "raise",
) -> List[int]:
    """Half-Double: heavy distance-2 hammering plus rare near accesses.

    Bit-flips at ``victim`` arise from massive activation of the
    distance-2 rows combined with the victim-refresh activity this
    induces on the distance-1 rows (§5.2.1). One near access is mixed
    in per ``near_ratio`` far hammers.
    """
    return _rows(
        half_double_program(victim, far_hammers, near_ratio),
        geometry,
        bounds,
    )


def thrash_then_hammer(
    aggressor: int,
    decoy_rows: Sequence[int],
    hammers: int,
    interleave: int = 1,
    geometry: Optional[DramGeometry] = None,
    bounds: str = "raise",
) -> List[int]:
    """Interleave decoy-row sweeps with aggressor activations.

    Against an under-provisioned frequent-row table the decoys evict
    the aggressor's entry before it accumulates count (the TRRespass
    observation); against Hydra the decoys merely burn GCT counters —
    the per-row RCT backstop still sees every aggressor activation.
    """
    return _rows(
        thrash_then_hammer_program(
            aggressor, decoy_rows, hammers, interleave=interleave
        ),
        geometry,
        bounds,
    )


def rcc_thrash(
    geometry: DramGeometry,
    target_rows: int,
    rounds: int,
    seed: int = 11,
    bounds: str = "raise",
) -> List[int]:
    """Memory performance attack on Hydra's RCC (§5.3).

    Rapidly activates many distinct rows so their groups saturate and
    the per-row working set exceeds the RCC, forcing RCT
    read-modify-writes. Bounded by design to 2x extra activations per
    demand activation — the worst case the paper derives.
    """
    return _rows(
        rcc_thrash_program(geometry, target_rows, rounds, seed=seed),
        geometry,
        bounds,
    )


def rct_region_attack(
    geometry: DramGeometry,
    hammers: int,
    counter_bytes: int = 1,
    bounds: str = "raise",
) -> List[int]:
    """Directly hammer the DRAM rows storing the RCT (§5.2.2).

    Hydra guards these with the dedicated RIT-ACT SRAM counters; this
    pattern exists to verify that the guard mitigates within T_H.
    """
    return _rows(
        rct_region_program(geometry, hammers, counter_bytes=counter_bytes),
        geometry,
        bounds,
    )
