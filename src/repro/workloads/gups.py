"""GUPS (Giga Updates Per Second) kernel trace generator.

GUPS performs read-modify-write updates at uniformly random locations
of a large table — the classic memory-system stress test the paper
includes precisely because it defeats locality-based filtering.
Unlike the Table 3-calibrated generator, this one models the kernel
directly: every update is an independent uniform draw over the working
set, so per-row counts are Binomial rather than fitted.
"""

from __future__ import annotations

import numpy as np

from repro.dram.timing import DramGeometry, DramTiming
from repro.workloads.synthetic import _map_usable_indices, usable_rows
from repro.workloads.trace import Trace


def generate_gups(
    geometry: DramGeometry,
    timing: DramTiming,
    working_set_rows: int,
    updates: int,
    lines_per_update: int = 3,
    update_rate_per_ns: float = 0.035,
    seed: int = 7,
    name: str = "gups-kernel",
) -> Trace:
    """Uniform random-update stream over ``working_set_rows`` rows.

    ``update_rate_per_ns`` is the program-intent issue rate; the
    default approximates GUPS' Table 3 activation rate (~2.17M ACTs
    per 64 ms window).
    """
    if working_set_rows <= 0 or updates <= 0:
        raise ValueError("working set and update count must be positive")
    total_usable = usable_rows(geometry)
    working_set_rows = min(working_set_rows, total_usable)
    rng = np.random.default_rng(seed)
    base = int(rng.integers(0, total_usable - working_set_rows + 1))
    table_rows = _map_usable_indices(
        base + np.arange(working_set_rows), geometry
    )
    picks = rng.integers(0, working_set_rows, size=updates)
    rows = table_rows[picks]
    gap = 1.0 / update_rate_per_ns
    return Trace(
        gaps_ns=np.full(updates, gap),
        rows=rows,
        lines=np.full(updates, lines_per_update, dtype=np.int32),
        writes=np.zeros(updates, dtype=bool),
        name=name,
    )
