"""Heterogeneous workload mixes.

The paper runs homogeneous rate-mode (8 copies of one benchmark). Real
consolidated systems mix programs — and mixes matter for Hydra because
one hot-row-heavy tenant (a parest) can saturate GCT groups whose rows
a neighbouring tenant then pays per-row costs for. This module merges
single-workload traces into a time-ordered mix so such interactions
can be studied (see ``tests/workloads/test_mixes.py`` and the
attack-alongside-victim example).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.workloads.trace import Trace


def merge_traces(traces: Sequence[Trace], name: str = "mix") -> Trace:
    """Merge traces by program-intent arrival time.

    Each input keeps its own arrival schedule (cumulative gaps); the
    merged trace interleaves all requests in global arrival order and
    re-derives inter-arrival gaps. Memory pressure adds up, exactly as
    co-running programs' demands do.

    The inputs' lazily-built ``_columns``/``_resolved`` caches are not
    reused (they describe pre-merge element order); the merged trace
    rebuilds its own from the merged arrays, which yields bit-identical
    per-request topology — see ``Trace.concatenate``.
    """
    if not traces:
        raise ValueError("need at least one trace")
    arrivals = [np.cumsum(trace.gaps_ns) for trace in traces]
    all_arrivals = np.concatenate(arrivals)
    order = np.argsort(all_arrivals, kind="stable")
    rows = np.concatenate([t.rows for t in traces])[order]
    lines = np.concatenate([t.lines for t in traces])[order]
    writes = np.concatenate([t.writes for t in traces])[order]
    sorted_arrivals = all_arrivals[order]
    gaps = np.empty_like(sorted_arrivals)
    gaps[0] = sorted_arrivals[0]
    gaps[1:] = np.diff(sorted_arrivals)
    return Trace(gaps_ns=gaps, rows=rows, lines=lines, writes=writes, name=name)


def attack_alongside(
    victim_trace: Trace,
    attack_rows: Sequence[int],
    attack_rate_per_ns: float,
    name: str = "mixed-attack",
) -> Trace:
    """Inject an attack stream into a benign workload.

    ``attack_rows`` is cycled at ``attack_rate_per_ns`` for the
    duration of the victim trace — the co-located-attacker threat
    model (§2.3: an unprivileged process sharing the memory system).

    Like :func:`merge_traces` (and ``Trace.concatenate``), the result
    is a fresh ``Trace`` whose lazy ``_columns``/``_resolved`` caches
    start cold — the inputs' caches are derivations of their arrays
    and are simply rebuilt from the merged arrays on first iteration,
    so the mix resolves topology identically to its parts.
    """
    if attack_rate_per_ns <= 0:
        raise ValueError("attack_rate_per_ns must be positive")
    if not attack_rows:
        raise ValueError("need at least one attack row")
    duration = victim_trace.duration_hint_ns
    n_attacks = max(1, int(duration * attack_rate_per_ns))
    gap = 1.0 / attack_rate_per_ns
    pattern = np.array(attack_rows, dtype=np.int64)
    rows = np.tile(pattern, -(-n_attacks // len(pattern)))[:n_attacks]
    attack = Trace(
        gaps_ns=np.full(n_attacks, gap),
        rows=rows,
        lines=np.ones(n_attacks, dtype=np.int32),
        writes=np.zeros(n_attacks, dtype=bool),
        name="attacker",
    )
    return merge_traces([victim_trace, attack], name=name)
