"""Workload characteristics from Table 3 of the paper.

These per-workload statistics — LLC misses per kilo-instruction, the
number of unique rows touched per 64 ms window, the number of rows
receiving more than 250 activations, and the mean activations per
touched row — fully describe the row-activation distribution each
workload presents to a RowHammer tracker. The synthetic trace
generator (:mod:`repro.workloads.synthetic`) is calibrated to them,
which is what makes this reproduction's tracker-facing behaviour match
the paper's trace-driven USIMM runs (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

SUITE_SPEC = "SPEC-2017"
SUITE_PARSEC = "PARSEC"
SUITE_GAP = "GAP"
SUITE_KERNEL = "KERNEL"


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """One row of Table 3 (full-scale, per-64ms-window statistics)."""

    name: str
    suite: str
    mpki_llc: float
    unique_rows: int
    act250_rows: int
    acts_per_row: float

    def __post_init__(self) -> None:
        if self.unique_rows <= 0:
            raise ValueError("unique_rows must be positive")
        if self.act250_rows < 0 or self.act250_rows > self.unique_rows:
            raise ValueError("act250_rows out of range")
        if self.acts_per_row <= 0:
            raise ValueError("acts_per_row must be positive")

    @property
    def total_activations(self) -> int:
        """Approximate ACTs per window (unique rows x ACTs/row)."""
        return int(self.unique_rows * self.acts_per_row)


def _w(name: str, suite: str, mpki: float, rows: float, hot: int, apr: float):
    return WorkloadCharacteristics(
        name=name,
        suite=suite,
        mpki_llc=mpki,
        unique_rows=int(rows * 1000),
        act250_rows=hot,
        acts_per_row=apr,
    )


#: The 36 workloads of Table 3, in the paper's order.
TABLE3: Tuple[WorkloadCharacteristics, ...] = (
    _w("bwaves", SUITE_SPEC, 39.6, 77.9, 0, 38.6),
    _w("parest", SUITE_SPEC, 27.6, 13.8, 5882, 237.0),
    _w("fotonik3d", SUITE_SPEC, 25.9, 212.0, 0, 17.5),
    _w("lbm", SUITE_SPEC, 25.6, 41.8, 0, 82.1),
    _w("mcf", SUITE_SPEC, 20.8, 112.0, 0, 28.8),
    _w("omnetpp", SUITE_SPEC, 9.75, 312.0, 195, 10.7),
    _w("roms", SUITE_SPEC, 9.15, 115.0, 1169, 22.9),
    _w("xz", SUITE_SPEC, 5.87, 102.0, 1755, 26.4),
    _w("cam4", SUITE_SPEC, 3.23, 45.5, 5, 54.1),
    _w("cactuBSSN", SUITE_SPEC, 3.20, 24.6, 4609, 107.0),
    _w("xalancbmk", SUITE_SPEC, 1.61, 60.8, 0, 49.8),
    _w("blender", SUITE_SPEC, 1.52, 52.4, 2288, 58.7),
    _w("gcc", SUITE_SPEC, 0.65, 144.0, 159, 18.0),
    _w("nab", SUITE_SPEC, 0.61, 61.9, 0, 31.9),
    _w("deepsjeng", SUITE_SPEC, 0.29, 802.0, 0, 1.78),
    _w("x264", SUITE_SPEC, 0.28, 25.0, 0, 34.0),
    _w("wrf", SUITE_SPEC, 0.27, 19.3, 18, 20.9),
    _w("namd", SUITE_SPEC, 0.26, 24.7, 0, 34.9),
    _w("imagick", SUITE_SPEC, 0.16, 10.7, 0, 19.1),
    _w("perlbench", SUITE_SPEC, 0.09, 25.6, 0, 5.88),
    _w("leela", SUITE_SPEC, 0.03, 0.72, 0, 2.68),
    _w("povray", SUITE_SPEC, 0.03, 0.50, 0, 2.28),
    _w("face", SUITE_PARSEC, 13.2, 49.3, 171, 42.5),
    _w("ferret", SUITE_PARSEC, 4.93, 48.6, 1206, 47.6),
    _w("stream", SUITE_PARSEC, 4.51, 43.3, 997, 36.8),
    _w("swapt", SUITE_PARSEC, 4.14, 43.2, 1023, 38.4),
    _w("black", SUITE_PARSEC, 4.12, 48.8, 937, 36.2),
    _w("freq", SUITE_PARSEC, 3.65, 56.5, 1213, 34.9),
    _w("fluid", SUITE_PARSEC, 2.41, 90.8, 858, 26.0),
    _w("bc_t", SUITE_GAP, 84.6, 231.0, 9, 13.9),
    _w("bc_w", SUITE_GAP, 58.3, 129.0, 0, 18.2),
    _w("cc_t", SUITE_GAP, 43.5, 192.0, 0, 16.7),
    _w("pr_t", SUITE_GAP, 30.0, 113.0, 0, 18.2),
    _w("pr_w", SUITE_GAP, 28.6, 98.7, 0, 19.5),
    _w("cc_w", SUITE_GAP, 16.9, 93.2, 0, 16.6),
    _w("GUPS", SUITE_KERNEL, 3.85, 69.1, 0, 31.4),
)

BY_NAME: Dict[str, WorkloadCharacteristics] = {w.name: w for w in TABLE3}

#: Suite membership in the paper's geomean groupings.
SUITES: Dict[str, List[str]] = {
    "SPEC(22)": [w.name for w in TABLE3 if w.suite == SUITE_SPEC],
    "PARSEC(7)": [w.name for w in TABLE3 if w.suite == SUITE_PARSEC],
    "GAP(6)": [w.name for w in TABLE3 if w.suite == SUITE_GAP],
    "GUPS(1)": ["GUPS"],
    "ALL(36)": [w.name for w in TABLE3],
}


def workload(name: str) -> WorkloadCharacteristics:
    """Look up one Table 3 workload by name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(BY_NAME)}"
        ) from None


def all_names() -> List[str]:
    return [w.name for w in TABLE3]
