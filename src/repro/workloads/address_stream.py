"""Address-level streams: CPU loads/stores -> LLC -> memory trace.

The Table-3 generator synthesizes memory-side traces directly. This
module provides the other path — the one the paper's pintool flow
used: a byte-address access stream filtered through the shared LLC
(Table 2: 8 MB, 16-way), with misses and dirty writebacks becoming the
DRAM requests. Useful for writing *program-shaped* workloads (the GUPS
kernel over a real table, streaming loops) whose DRAM behaviour then
emerges from cache dynamics instead of being prescribed.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.cpu.cache import LastLevelCache
from repro.dram.address import AddressMapper
from repro.dram.timing import DramGeometry
from repro.workloads.trace import Trace

#: One access: (byte_address, is_write).
AddressAccess = Tuple[int, bool]


def trace_from_addresses(
    accesses: Iterable[AddressAccess],
    geometry: DramGeometry,
    llc: LastLevelCache = None,
    ns_per_access: float = 1.0,
    name: str = "address-stream",
) -> Trace:
    """Filter an address stream through the LLC into a DRAM trace.

    ``ns_per_access`` is the program-intent time per *CPU access*
    (hit or miss); the returned trace's gaps reflect the time that
    passed since the previous miss, so cache-friendly phases become
    long gaps.
    """
    if ns_per_access <= 0:
        raise ValueError("ns_per_access must be positive")
    if llc is None:
        llc = LastLevelCache()
    mapper = AddressMapper(geometry)
    gaps: List[float] = []
    rows: List[int] = []
    writes: List[bool] = []
    pending_gap = 0.0
    for address, is_write in accesses:
        pending_gap += ns_per_access
        hit, writeback = llc.access(address, is_write)
        if hit:
            continue
        gaps.append(pending_gap)
        rows.append(mapper.row_of_address(address))
        writes.append(False)  # the fill is a read
        pending_gap = 0.0
        if writeback is not None:
            gaps.append(0.0)
            rows.append(mapper.row_of_address(writeback))
            writes.append(True)
    return Trace(
        gaps_ns=np.asarray(gaps),
        rows=np.asarray(rows, dtype=np.int64),
        lines=np.ones(len(rows), dtype=np.int32),
        writes=np.asarray(writes, dtype=bool),
        name=name,
    )


def gups_address_stream(
    table_bytes: int,
    updates: int,
    base_address: int = 0,
    seed: int = 17,
) -> List[AddressAccess]:
    """The GUPS kernel as raw addresses: random 8 B read-modify-writes.

    Each update reads then writes one random 64-bit word of the table,
    so through a cache it produces read-for-ownership misses and dirty
    writebacks — the kernel the paper includes because it defeats
    every locality assumption.
    """
    if table_bytes <= 8 or updates <= 0:
        raise ValueError("need a non-trivial table and update count")
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, table_bytes // 8, size=updates) * 8
    stream: List[AddressAccess] = []
    for offset in offsets:
        address = base_address + int(offset)
        stream.append((address, False))
        stream.append((address, True))
    return stream
