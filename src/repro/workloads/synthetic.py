"""Synthetic trace generation calibrated to Table 3.

The paper drives USIMM with pintool traces of SPEC2017/PARSEC/GAP.
Those traces are proprietary-infrastructure artifacts; what the
RowHammer results actually depend on is the per-window row-activation
distribution each workload presents, which the paper itself publishes
as Table 3. This generator reproduces that distribution:

- ``unique_rows`` distinct rows, scattered uniformly over the memory
  (multi-programmed rate-mode address spaces land row-granular
  footprints all over physical memory);
- ``act250_rows`` of them "hot" (more than 250 activations within the
  window) with exponentially-tailed counts;
- the remaining rows with exponential counts clipped at 250, scaled so
  the total activation count matches ``unique_rows x acts_per_row``;
- per-activation burst lengths derived from MPKI (total LLC-miss line
  transfers divided by activations), split into row-buffer-friendly
  chunks so that metadata traffic injected between chunks causes
  realistic row-buffer interference;
- activations uniformly spread across the window (rate-mode execution
  keeps memory pressure steady).

Scaling (DESIGN.md §3): at ``scale = 1/32`` the geometry, window, and
per-workload row counts all shrink together, so rows-per-GCT-entry,
hot-rows-vs-RCC-capacity, per-bank activation rates, and ACTs-per-row
are all preserved, and so is every tracker-facing ratio the paper's
figures depend on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dram.timing import DramGeometry, DramTiming
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic trace generator."""

    geometry: DramGeometry
    timing: DramTiming
    #: Fraction of the full-scale system being simulated.
    scale: float = 1.0
    #: Number of tracking windows of trace to generate.
    n_windows: int = 2
    #: Maximum lines per request event (row-burst chunking).
    chunk_lines: int = 16
    #: Cores and clock of the paper's system (Table 2), for MPKI math.
    cores: int = 8
    core_ghz: float = 3.2
    #: Achieved IPC assumed when converting MPKI into per-window miss
    #: volume (memory-heavy rate-mode mixes land near 1.0).
    ipc_per_core: float = 1.0
    #: No-stall IPC used for request *arrival* pacing: the rate the
    #: cores would issue misses at if memory were instantaneous. The
    #: gap between this and the achieved rate is the slack memory
    #: latency/bandwidth eats — which is where tracker overhead shows
    #: up as slowdown.
    nostall_ipc_per_core: float = 2.0
    #: Optional footprint clustering: span = unique_rows * cluster_span
    #: (None scatters over all of memory, the default).
    cluster_span: Optional[float] = None
    seed: int = 2022

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        if self.chunk_lines < 1:
            raise ValueError("chunk_lines must be >= 1")

    @property
    def instructions_per_window(self) -> float:
        window_s = self.timing.refresh_window * 1e-9
        return self.cores * self.core_ghz * 1e9 * self.ipc_per_core * window_s


def usable_rows(geometry: DramGeometry) -> int:
    """Rows available to workloads (excludes the metadata reservation).

    Reserves enough rows per bank for 2-byte-per-row counter tables,
    covering every tracker configuration in the study.
    """
    return geometry.total_banks * _usable_per_bank(geometry)


def _usable_per_bank(geometry: DramGeometry) -> int:
    counters_per_row = geometry.row_size_bytes // 2
    reserved = -(-geometry.rows_per_bank // counters_per_row)
    return geometry.rows_per_bank - reserved


def _map_usable_indices(indices: np.ndarray, geometry: DramGeometry) -> np.ndarray:
    """Map dense usable-row indices to global row ids (skip meta rows)."""
    per_bank = _usable_per_bank(geometry)
    banks = indices // per_bank
    locals_ = indices % per_bank
    return banks * geometry.rows_per_bank + locals_


def _stable_seed(*parts) -> int:
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode())


class SyntheticWorkloadGenerator:
    """Generates Table 3-calibrated traces for one system configuration."""

    #: Mean of the exponential tail added above 250 for hot rows.
    HOT_TAIL_MEAN = 110.0
    #: Hot/cold boundary of Table 3's "ACT-250+" statistic.
    HOT_THRESHOLD = 250

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self._usable_total = usable_rows(config.geometry)
        if self._usable_total <= 0:
            raise ValueError("geometry has no usable rows")

    def generate(self, workload: WorkloadCharacteristics) -> Trace:
        """Build the multi-window trace for one workload."""
        windows: List[Trace] = list(self.iter_windows(workload))
        return Trace.concatenate(windows, name=workload.name)

    def iter_windows(self, workload: WorkloadCharacteristics):
        """Yield the trace one tracking window at a time.

        The streaming substrate's generation path: each window is an
        independent seeded draw (``_stable_seed(seed, name, index)``),
        so yielding them lazily and spooling to disk produces exactly
        the arrays :meth:`generate` would concatenate — with peak
        memory bounded by one window instead of ``n_windows``.
        """
        for window_index in range(self.config.n_windows):
            yield self._generate_window(workload, window_index)

    # ------------------------------------------------------------------

    def _generate_window(
        self, workload: WorkloadCharacteristics, window_index: int
    ) -> Trace:
        config = self.config
        rng = np.random.default_rng(
            _stable_seed(config.seed, workload.name, window_index)
        )
        unique = max(1, int(round(workload.unique_rows * config.scale)))
        unique = min(unique, self._usable_total)
        hot = min(unique, int(round(workload.act250_rows * config.scale)))
        target_acts = max(unique, int(round(unique * workload.acts_per_row)))

        rows = self._sample_rows(rng, unique)
        counts = self._assign_counts(rng, unique, hot, target_acts)

        acts = np.repeat(rows, counts)
        rng.shuffle(acts)
        return self._chunk_into_events(workload, acts)

    def _sample_rows(self, rng: np.random.Generator, unique: int) -> np.ndarray:
        config = self.config
        if config.cluster_span is None:
            indices = rng.choice(self._usable_total, size=unique, replace=False)
        else:
            span = min(
                self._usable_total, max(unique, int(unique * config.cluster_span))
            )
            base = int(rng.integers(0, self._usable_total - span + 1))
            indices = base + rng.choice(span, size=unique, replace=False)
        return _map_usable_indices(np.sort(indices), config.geometry)

    def _assign_counts(
        self,
        rng: np.random.Generator,
        unique: int,
        hot: int,
        target_acts: int,
    ) -> np.ndarray:
        """Per-row activation counts matching the Table 3 statistics."""
        cap = self.HOT_THRESHOLD
        cold = unique - hot
        counts = np.empty(unique, dtype=np.int64)
        # Hot rows first in the array (the row ids are already shuffled
        # by uniform sampling, so position carries no bias).
        if hot:
            counts[:hot] = cap + 1 + rng.exponential(
                self.HOT_TAIL_MEAN, size=hot
            ).astype(np.int64)
        if cold:
            hot_total = int(counts[:hot].sum()) if hot else 0
            cold_budget = max(cold, target_acts - hot_total)
            mean = cold_budget / cold
            draw = rng.exponential(mean, size=cold).astype(np.int64) + 1
            counts[hot:] = np.minimum(draw, cap)
        # One correction pass toward the exact activation total.
        deficit = target_acts - int(counts.sum())
        if deficit > 0:
            if hot:
                counts[:hot] += deficit // hot
            else:
                room = cap - counts
                order = np.argsort(-room)
                add = np.zeros(unique, dtype=np.int64)
                per_row = max(1, deficit // max(1, int((room > 0).sum()) or 1))
                add[order] = np.minimum(room[order], per_row)
                overshoot = int(add.sum()) - deficit
                if overshoot > 0:
                    add[order[-1]] = max(0, add[order[-1]] - overshoot)
                counts += add
        elif deficit < 0:
            scalefactor = target_acts / max(1, int(counts.sum()))
            counts = np.maximum(1, (counts * scalefactor).astype(np.int64))
        return counts

    def _chunk_into_events(
        self, workload: WorkloadCharacteristics, acts: np.ndarray
    ) -> Trace:
        config = self.config
        # instructions_per_window already reflects the (scaled) window,
        # so this access count is directly comparable to len(acts).
        accesses = workload.mpki_llc / 1000.0 * config.instructions_per_window
        lines_per_act = int(np.clip(round(accesses / max(1, len(acts))), 1, 64))
        chunk = config.chunk_lines
        n_chunks = -(-lines_per_act // chunk)
        if n_chunks == 1:
            rows_ev = acts
            lines_ev = np.full(len(acts), lines_per_act, dtype=np.int32)
        else:
            remainder = lines_per_act - chunk * (n_chunks - 1)
            pattern = np.array([chunk] * (n_chunks - 1) + [remainder], dtype=np.int32)
            rows_ev = np.repeat(acts, n_chunks)
            lines_ev = np.tile(pattern, len(acts))
        # Arrival pacing: the no-stall miss rate of the cores. Each
        # event's gap is proportional to the lines (program work) it
        # represents. Compute-bound workloads (low MPKI) get long gaps
        # and absorb tracker overhead; memory-bound ones do not.
        ns_per_line = 1000.0 / (
            workload.mpki_llc
            * config.cores
            * config.nostall_ipc_per_core
            * config.core_ghz
        )
        gaps = lines_ev.astype(np.float64) * ns_per_line
        return Trace(
            gaps_ns=gaps,
            rows=rows_ev,
            lines=lines_ev,
            writes=np.zeros(len(rows_ev), dtype=bool),
            name=workload.name,
        )
