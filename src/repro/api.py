"""The blessed programmatic surface of the reproduction.

Every front-end — the ``hydra-sim`` CLI, the sweep service's HTTP
endpoints, ``repro.analysis.experiments`` figure scripts — routes
through these few typed entry points; everything else in the package
is implementation detail that may move between releases:

- :func:`run` — one (tracker, workload) simulation → ``RunResult``.
- :func:`sweep` — a :class:`~repro.sim.grid.GridSpec` of simulations →
  a :class:`~repro.service.jobs.JobHandle`, running either in-process
  (a private broker) or on a remote ``hydra-sim serve`` instance.
- :func:`compare` — tracked column vs the no-tracking baseline →
  ``ComparisonResult``.
- :func:`list_trackers` / :func:`list_attacks` — the registry names a
  spec string may start with.

The value objects of the surface (``RunSpec``, ``GridSpec``,
``RunResult``, ``GridResult``) re-export from here so callers can
``from repro.api import ...`` alone.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.sim.config import SystemConfig
from repro.sim.grid import GridSpec
from repro.sim.results import ComparisonResult, GridResult, RunResult
from repro.sim.simulator import simulate_workload
from repro.sim.spec import RunSpec
from repro.sim.sweep import ExperimentRunner
from repro.service.jobs import JobHandle

__all__ = [
    "ComparisonResult",
    "GridResult",
    "GridSpec",
    "JobHandle",
    "RunResult",
    "RunSpec",
    "SystemConfig",
    "compare",
    "list_attacks",
    "list_trackers",
    "run",
    "sweep",
]


def run(
    spec: Union[None, str, RunSpec] = None,
    workload: str = "GUPS",
    config: Optional[SystemConfig] = None,
    observe: Optional[bool] = None,
) -> RunResult:
    """Simulate one (tracker, workload) cell.

    ``spec`` is a tracker spec string (``"hydra@trh=1000"``), a
    :class:`RunSpec`, or ``None`` for the default tracker. The result
    is byte-identical to calling :func:`repro.sim.simulate` on the
    workload's trace — this is a naming/typing facade, not a second
    code path.
    """
    resolved = RunSpec.coerce(spec=spec)
    return simulate_workload(
        config if config is not None else SystemConfig(),
        resolved,
        workload,
        observe=observe,
    )


def sweep(
    grid: Union[GridSpec, Sequence[str]],
    workloads: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
    service: Optional[str] = None,
    pool: str = "process",
    workers: Optional[int] = None,
    state_dir: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
) -> JobHandle:
    """Submit a grid of simulations; returns a :class:`JobHandle`.

    ``grid`` is the blessed :class:`GridSpec` (or the tracker-list
    shorthand, coerced to one). The grid's config wins; an explicit
    ``config`` argument fills one in when the spec carries none, and
    plain ``SystemConfig()`` is the last resort.

    With ``service="host:port"`` the grid is submitted over HTTP to a
    running ``hydra-sim serve`` instance and the returned handle is
    remote. Otherwise a private :class:`~repro.service.broker
    .SweepBroker` runs it in-process (``pool``/``workers`` as in the
    broker; the handle keeps the broker alive). Either way the
    handle's surface is identical: ``status()`` / ``events()`` /
    ``result()`` / ``cancel()``.
    """
    if not isinstance(grid, GridSpec):
        grid = GridSpec.coerce(grid, workloads, config=config)
    elif workloads is not None:
        raise ValueError(
            "pass a GridSpec alone, not together with workloads"
        )
    if grid.config is None:
        grid = grid.with_config(
            config if config is not None else SystemConfig()
        )
    elif config is not None and grid.config != config:
        raise ValueError(
            "GridSpec.config disagrees with the config= argument;"
            " drop one of them"
        )

    if service is not None:
        from repro.service.client import ServiceClient

        host, _, port = service.rpartition(":")
        client = ServiceClient(host or "127.0.0.1", int(port))
        return client.submit(grid)

    from repro.service.broker import SweepBroker

    broker = SweepBroker(
        state_dir=state_dir,
        cache_dir=cache_dir,
        pool=pool,
        workers=workers,
    )
    return broker.handle(broker.submit(grid))


def compare(
    tracker: Union[str, GridSpec] = "hydra",
    workloads: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
    baseline: str = "baseline",
    jobs: Optional[int] = None,
    progress: Optional[bool] = None,
    cache_dir: Optional[Path] = None,
    manifest_path: Optional[Path] = None,
) -> ComparisonResult:
    """Tracked column vs the no-tracking baseline, per workload.

    ``tracker`` may be a spec string or a single-tracker
    :class:`GridSpec` (whose workload axis and config are then used).
    Both columns run through the shared result cache.
    """
    if isinstance(tracker, GridSpec) and tracker.config is not None:
        if config is not None and tracker.config != config:
            raise ValueError(
                "GridSpec.config disagrees with the config= argument;"
                " drop one of them"
            )
        config = tracker.config
        tracker = GridSpec(
            trackers=tracker.trackers, workloads=tracker.workloads
        )
    runner = ExperimentRunner(
        config if config is not None else SystemConfig(),
        cache_dir=cache_dir,
        jobs=jobs,
        manifest_path=manifest_path,
    )
    return runner.compare(
        tracker,
        workloads,
        baseline_name=baseline,
        progress=progress,
    )


def list_trackers() -> Sequence[str]:
    """Registry names a tracker spec string may start with."""
    from repro.trackers.registry import available_trackers

    return available_trackers()


def list_attacks() -> Sequence[str]:
    """Registry names an attack spec string may start with."""
    from repro.attacks import available_attacks

    return available_attacks()
