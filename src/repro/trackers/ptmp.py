"""PTMP: probabilistic tracker management (Jaleel et al., arXiv
2404.16256).

The PrIDE design point from "Probabilistic Tracker Management Policies
for Low-Cost and Scalable Rowhammer Mitigation": instead of sizing a
tracker table to *guarantee* capturing every aggressor (Graphene's
CAM) or keeping no state at all (PARA), keep a **tiny per-bank FIFO**
(~5 entries) and manage it probabilistically:

- on each activation, the row is **inserted** into its bank's FIFO
  with probability ``p`` (default 1/8), evicting the oldest entry when
  full — Bernoulli insertion decouples the table's capture behaviour
  from deterministic thrashing patterns (an adversary cannot reliably
  evict a hot row by sweeping decoys, because decoys only enter the
  table with probability ``p`` themselves);
- once per tREFI-equivalent interval (``W = tREFI / tRC`` activation
  slots, the MINT clock idiom — this simulator is activation-driven),
  the bank **drains** one entry from the FIFO head and issues a
  mitigation for it, modeling mitigations scheduled into periodic
  refresh slots rather than on demand.

Security is **probabilistic**: an aggressor row's chance of escaping
insertion across ``n`` activations is ``(1-p)^n``, which at T_RH
activations is negligible for sane ``p`` — but individual oracle runs
at ultra-low thresholds can still show violations without
contradicting the design (the same caveat as PARA/MINT). Storage is
``entries`` row ids per bank — orders of magnitude below Graphene at
ultra-low thresholds, the paper's headline.
"""

from __future__ import annotations

import random
from typing import Deque, List, Optional

from collections import deque

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.mint import mint_interval_slots
from repro.trackers.registry import Param, TrackerContext, register_tracker

#: PrIDE's headline configuration: 5-entry FIFOs, 1/8 insertion.
DEFAULT_PTMP_ENTRIES = 5
DEFAULT_PTMP_PROBABILITY = 0.125


class _PtmpBank:
    """One bank's FIFO and mitigation-slot clock."""

    __slots__ = ("fifo", "slot")

    def __init__(self) -> None:
        self.fifo: Deque[int] = deque()
        #: 1-based position of the next activation within the interval.
        self.slot = 0


class PtmpTracker(ActivationTracker):
    """Per-bank probabilistic-insertion FIFO with refresh-slot drains."""

    name = "ptmp"

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming = DramTiming(),
        entries: int = DEFAULT_PTMP_ENTRIES,
        probability: float = DEFAULT_PTMP_PROBABILITY,
        interval_slots: Optional[int] = None,
        seed: int = 0x50544D50,  # "PTMP"
    ) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.geometry = geometry
        self.entries = entries
        self.probability = probability
        self.interval_slots = (
            interval_slots
            if interval_slots is not None
            else mint_interval_slots(timing)
        )
        if self.interval_slots <= 0:
            raise ValueError("interval_slots must be positive")
        self._rows_per_bank = geometry.rows_per_bank
        self._rng = random.Random(seed)
        self._banks: List[_PtmpBank] = [
            _PtmpBank() for _ in range(geometry.total_banks)
        ]
        self.mitigations = 0
        self.insertions = 0
        self.evictions = 0
        self.empty_drains = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        bank = self._banks[row_id // self._rows_per_bank]
        if self._rng.random() < self.probability:
            self.insertions += 1
            if len(bank.fifo) >= self.entries:
                bank.fifo.popleft()
                self.evictions += 1
            bank.fifo.append(row_id)
        bank.slot += 1
        if bank.slot < self.interval_slots:
            return None
        # Interval complete: this bank's refresh slot drains one entry.
        bank.slot = 0
        if not bank.fifo:
            self.empty_drains += 1
            return None
        self.mitigations += 1
        return TrackerResponse(mitigate_rows=(bank.fifo.popleft(),))

    def on_window_reset(self) -> None:
        for bank in self._banks:
            bank.fifo.clear()
            bank.slot = 0

    def sram_bytes(self) -> int:
        """``entries`` row ids plus one slot counter per bank."""
        row_bits = max(1, (self._rows_per_bank - 1).bit_length())
        slot_bits = max(1, (self.interval_slots - 1).bit_length())
        per_bank_bits = self.entries * row_bits + slot_bits
        total_bits = per_bank_bits * self.geometry.total_banks
        return (total_bits + 7) // 8

    def extra_stats(self):
        return {
            "entries": self.entries,
            "probability": self.probability,
            "interval_slots": self.interval_slots,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "empty_drains": self.empty_drains,
        }


@register_tracker(
    "ptmp",
    summary="per-bank probabilistic-insertion FIFO (PrIDE/PTMP)",
    security_class="probabilistic",
    params={
        "entries": Param(
            int, DEFAULT_PTMP_ENTRIES, "FIFO entries per bank"
        ),
        "probability": Param(
            float,
            DEFAULT_PTMP_PROBABILITY,
            "per-ACT insertion probability",
        ),
        "interval_slots": Param(
            int,
            help="activation slots per mitigation drain (default: W ="
            " tREFI/tRC)",
        ),
        "seed": Param(int, 0x50544D50, "PRNG seed for insertion draws"),
    },
)
def _ptmp_from_context(
    ctx: TrackerContext,
    entries: int = DEFAULT_PTMP_ENTRIES,
    probability: float = DEFAULT_PTMP_PROBABILITY,
    interval_slots: Optional[int] = None,
    seed: int = 0x50544D50,
) -> PtmpTracker:
    return PtmpTracker(
        ctx.geometry,
        timing=ctx.timing,
        entries=entries,
        probability=probability,
        interval_slots=interval_slots,
        seed=seed,
    )
