"""D-CBF: Dual Counting Bloom Filter tracking (BlockHammer, HPCA 2021).

Two time-shifted counting Bloom filters (three hashes each) identify
rapidly-activated rows. Filters take turns: each lives for one window,
offset by half a window, and the *elder* filter answers queries, so
history is never lost at a reset. Once a row's minimum counter crosses
the blacklist threshold the row stays blacklisted until that filter
retires — the property that forces D-CBF to use rate-control (delay)
mitigation instead of victim refresh, and to be provisioned for very
low false-positive rates (§7.1 "Comparison with D-CBF").

The delay applied to a blacklisted activation paces the row so it
cannot reach T_RH within the window: ``delay = window / (T_RH/2)``,
the denial-of-service arithmetic of footnote 6.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dram.timing import DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker

#: Large odd multipliers for the three hash functions (Knuth-style).
_HASH_MULTIPLIERS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)
_HASH_BITS = 64


class CountingBloomFilter:
    """Counting Bloom filter with k multiplicative hashes."""

    __slots__ = ("size", "_counts", "inserted")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._counts = [0] * size
        self.inserted = 0

    def _indexes(self, key: int) -> Tuple[int, ...]:
        return tuple(
            ((key * mult) >> (_HASH_BITS - 32)) % self.size
            for mult in _HASH_MULTIPLIERS
        )

    def insert(self, key: int) -> int:
        """Insert and return the new minimum counter estimate."""
        self.inserted += 1
        minimum = None
        for index in self._indexes(key):
            self._counts[index] += 1
            value = self._counts[index]
            if minimum is None or value < minimum:
                minimum = value
        return minimum if minimum is not None else 0

    def estimate(self, key: int) -> int:
        return min(self._counts[index] for index in self._indexes(key))

    def clear(self) -> None:
        self._counts = [0] * self.size
        self.inserted = 0


class DcbfTracker(ActivationTracker):
    """Dual CBF blacklisting with delay-based mitigation.

    Window rotation is driven by :meth:`on_window_reset`, which the
    memory controller calls every *half* tracking window for this
    tracker (``reset_divisor = 2``).
    """

    name = "dcbf"
    #: The controller resets this tracker every window/2 (filter swap).
    reset_divisor = 2

    def __init__(
        self,
        trh: int = 500,
        counters_per_filter: int = 1 << 16,
        timing: DramTiming = DramTiming(),
    ) -> None:
        self.trh = trh
        self.threshold = trh // 2
        self.filters: List[CountingBloomFilter] = [
            CountingBloomFilter(counters_per_filter),
            CountingBloomFilter(counters_per_filter),
        ]
        #: Index of the elder filter (the one answering queries).
        self._elder = 0
        self.delay_ns = timing.refresh_window / max(1, self.threshold)
        self.mitigations = 0
        self.blacklisted_activations = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        for cbf in self.filters:
            cbf.insert(row_id)
        if self.filters[self._elder].estimate(row_id) >= self.threshold:
            self.blacklisted_activations += 1
            self.mitigations += 1
            return TrackerResponse(delay_ns=self.delay_ns)
        return None

    def is_blacklisted(self, row_id: int) -> bool:
        return self.filters[self._elder].estimate(row_id) >= self.threshold

    def on_window_reset(self) -> None:
        """Retire the elder filter; the younger becomes the elder."""
        self.filters[self._elder].clear()
        self._elder ^= 1

    def sram_bytes(self) -> int:
        counter_bits = max(1, (self.threshold).bit_length())
        total_bits = 2 * self.filters[0].size * counter_bits
        return (total_bits + 7) // 8


@register_tracker(
    "dcbf",
    summary="dual counting Bloom filters with delay-based mitigation",
    security_class="rate-control",
    params={
        "counters_per_filter": Param(
            int, help="CBF width (default: 2^18 scaled with the system)"
        ),
    },
)
def _dcbf_from_context(
    ctx: TrackerContext, counters_per_filter: Optional[int] = None
) -> DcbfTracker:
    if counters_per_filter is None:
        counters_per_filter = max(1024, int((1 << 18) * ctx.scale))
    return DcbfTracker(
        trh=ctx.trh,
        counters_per_filter=counters_per_filter,
        timing=ctx.timing,
    )
