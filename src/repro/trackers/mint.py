"""MINT: minimalist in-DRAM tracking (Qureshi et al., arXiv 2407.16038).

The opposite end of the design space from Graphene's CAM: **one**
tracking entry per bank. MINT divides time into tREFI-sized intervals;
an interval fits ``W = tREFI / tRC`` activations (173 slots with this
repo's DDR4 timing). At the start of each interval the bank draws a
uniformly random slot number in ``[1, W]``; the row activated at that
slot becomes the interval's *selected* row and is mitigated at the
interval-ending REF. Every activation slot across the window is thus
sampled with equal probability 1/W, which the paper shows matches the
best attainable in-DRAM tracker within 2.1x (its minimum tolerable
T_RH ~ 1400 on DDR5 versus ~ 700 for an ideal tracker).

Security is **probabilistic**: an aggressor dodges mitigation for a
whole window only if every one of its activations falls on unselected
slots — a probability that decays geometrically in the activation
count, but is not zero, so individual oracle runs at ultra-low
thresholds can show violations without contradicting the design.

The simulator is activation-driven, not clocked, so intervals advance
by activation count: ``W`` activations of a bank complete one of its
intervals. Under a saturating attack (the security-relevant regime)
that is exactly the paper's timing; under light load it makes MINT
*more* attentive than real hardware, never less.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


def mint_interval_slots(timing: DramTiming) -> int:
    """Activation slots per tREFI interval (the paper's ``W``)."""
    return max(1, int(timing.t_refi // timing.t_rc))


class _MintBank:
    """One bank's single-entry tracker state."""

    __slots__ = ("slot", "selected_slot", "selected_row")

    def __init__(self) -> None:
        #: 1-based position of the next activation within the interval.
        self.slot = 0
        self.selected_slot = 0
        self.selected_row: Optional[int] = None


class MintTracker(ActivationTracker):
    """Single-entry-per-bank random-slot sampling tracker."""

    name = "mint"

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming = DramTiming(),
        interval_slots: Optional[int] = None,
        seed: int = 0x4D494E54,  # "MINT"
    ) -> None:
        self.geometry = geometry
        self.interval_slots = (
            interval_slots
            if interval_slots is not None
            else mint_interval_slots(timing)
        )
        if self.interval_slots <= 0:
            raise ValueError("interval_slots must be positive")
        self._rows_per_bank = geometry.rows_per_bank
        self._rng = random.Random(seed)
        self._banks: List[_MintBank] = [
            _MintBank() for _ in range(geometry.total_banks)
        ]
        for bank in self._banks:
            self._start_interval(bank)
        self.mitigations = 0
        self.intervals = 0
        self.empty_intervals = 0

    def _start_interval(self, bank: _MintBank) -> None:
        bank.slot = 0
        bank.selected_slot = self._rng.randint(1, self.interval_slots)
        bank.selected_row = None

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        bank = self._banks[row_id // self._rows_per_bank]
        bank.slot += 1
        if bank.slot == bank.selected_slot:
            bank.selected_row = row_id
        if bank.slot < self.interval_slots:
            return None
        # Interval complete: the REF slot mitigates the selected row.
        selected = bank.selected_row
        self.intervals += 1
        self._start_interval(bank)
        if selected is None:
            self.empty_intervals += 1
            return None
        self.mitigations += 1
        return TrackerResponse(mitigate_rows=(selected,))

    def on_window_reset(self) -> None:
        for bank in self._banks:
            self._start_interval(bank)

    def sram_bytes(self) -> int:
        """Two slot registers plus one row id per bank — the point."""
        slot_bits = max(1, (self.interval_slots - 1).bit_length())
        row_bits = max(1, (self._rows_per_bank - 1).bit_length())
        per_bank_bits = 2 * slot_bits + row_bits
        total_bits = per_bank_bits * self.geometry.total_banks
        return (total_bits + 7) // 8

    def extra_stats(self):
        return {
            "interval_slots": self.interval_slots,
            "intervals": self.intervals,
            "empty_intervals": self.empty_intervals,
        }


@register_tracker(
    "mint",
    summary="single-entry-per-bank random-slot in-DRAM sampler (MINT)",
    security_class="probabilistic",
    params={
        "interval_slots": Param(
            int, help="activation slots per tREFI interval (default: W)"
        ),
        "seed": Param(int, 0x4D494E54, "PRNG seed for slot selection"),
    },
)
def _mint_from_context(
    ctx: TrackerContext,
    interval_slots: Optional[int] = None,
    seed: int = 0x4D494E54,
) -> MintTracker:
    return MintTracker(
        ctx.geometry,
        timing=ctx.timing,
        interval_slots=interval_slots,
        seed=seed,
    )
