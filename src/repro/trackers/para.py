"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

The stateless defense (§7.3): every activation triggers a victim
refresh with probability ``p``. Security is probabilistic — the chance
an aggressor performs T_RH activations with *no* mitigation is
``(1-p)^T_RH`` — so ``p`` must grow as T_RH shrinks, which is exactly
why PARA becomes expensive at ultra-low thresholds.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


def para_probability(trh: int, failure_exponent: int = 40) -> float:
    """Smallest p with P(T_RH unmitigated ACTs) <= 2^-failure_exponent.

    Solves (1-p)^trh = 2^-k  =>  p = 1 - 2^(-k/trh).
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    if failure_exponent <= 0:
        raise ValueError("failure_exponent must be positive")
    return 1.0 - 2.0 ** (-failure_exponent / trh)


class ParaTracker(ActivationTracker):
    """Stateless probabilistic mitigation."""

    name = "para"

    def __init__(
        self,
        trh: int = 500,
        failure_exponent: int = 40,
        seed: int = 0xFADE,
        probability: Optional[float] = None,
    ) -> None:
        self.trh = trh
        self.probability = (
            probability
            if probability is not None
            else para_probability(trh, failure_exponent)
        )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self._rng = random.Random(seed)
        self.mitigations = 0
        self.activations = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        self.activations += 1
        if self._rng.random() < self.probability:
            self.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        return None

    def on_window_reset(self) -> None:
        return None  # stateless

    def sram_bytes(self) -> int:
        return 0  # a PRNG, effectively free

    def expected_mitigations(self, activations: int) -> float:
        return activations * self.probability

    def failure_probability(self, activations: int) -> float:
        """P(a specific row receives ``activations`` ACTs unmitigated)."""
        return math.pow(1.0 - self.probability, activations)


@register_tracker(
    "para",
    summary="stateless probabilistic mitigation (PARA)",
    security_class="probabilistic",
    params={
        "probability": Param(
            float, help="per-ACT mitigation probability (default: from trh)"
        ),
        "failure_exponent": Param(
            int, 40, "target failure probability 2^-N per window"
        ),
        "seed": Param(int, 0xFADE, "PRNG seed"),
    },
)
def _para_from_context(
    ctx: TrackerContext,
    probability: Optional[float] = None,
    failure_exponent: int = 40,
    seed: int = 0xFADE,
) -> ParaTracker:
    return ParaTracker(
        trh=ctx.trh,
        failure_exponent=failure_exponent,
        seed=seed,
        probability=probability,
    )
