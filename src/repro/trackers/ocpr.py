"""OCPR: One-Counter-Per-Row, the naive exact tracker (Table 1).

A dedicated SRAM counter for every DRAM row. Functionally it is the
*ideal* tracker — exact counts, zero metadata traffic, mitigation
exactly at threshold — but its storage (one counter x millions of
rows) is megabytes per rank, which is why it only serves as the upper
bound in the paper's storage analysis. It doubles in this reproduction
as the ground-truth oracle for security tests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dram.timing import DramGeometry
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import TrackerContext, register_tracker


class OcprTracker(ActivationTracker):
    """Exact per-row SRAM counters."""

    name = "ocpr"

    def __init__(self, geometry: DramGeometry, trh: int = 500) -> None:
        self.geometry = geometry
        self.trh = trh
        self.threshold = trh // 2
        self._counts: List[int] = [0] * geometry.total_rows
        self.mitigations = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        count = self._counts[row_id] + 1
        if count >= self.threshold:
            self._counts[row_id] = 0
            self.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        self._counts[row_id] = count
        return None

    def count_of(self, row_id: int) -> int:
        """Exact activation count since last mitigation/reset."""
        return self._counts[row_id]

    def on_window_reset(self) -> None:
        self._counts = [0] * len(self._counts)

    def sram_bytes(self) -> int:
        """R rows x log2(T_RH) bits (Table 1's OCPR column)."""
        bits = max(1, (self.trh - 1).bit_length())
        return (self.geometry.total_rows * bits + 7) // 8


@register_tracker(
    "ocpr", summary="exact per-row SRAM counters (the idealized tracker)"
)
def _ocpr_from_context(ctx: TrackerContext) -> OcprTracker:
    return OcprTracker(ctx.geometry, trh=ctx.trh)
