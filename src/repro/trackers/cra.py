"""CRA: Counter-based Row Activation tracking (Kim et al., CAL 2014).

The DRAM-based baseline: one counter per row lives in a reserved
region of memory, read and written by the memory controller with
regular 64 B line accesses, fronted by a *conventional* metadata
cache — 64 B-line granularity, address-tagged, set-associative LRU
(this line granularity, relying on spatial locality that row-level
access streams do not have, is exactly why CRA's cache misses so much;
Hydra's RCC caches single counters instead).

On every activation the controller needs the row's counter:

- metadata-cache hit: increment in place (no DRAM traffic);
- miss: read the counter line from DRAM, install it, and write back
  the evicted line if dirty.

Mitigation (victim refresh) triggers at T_RH/2 (window-reset halving)
and resets the counter.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.core.rct import RowCountTable
from repro.dram.timing import DramGeometry
from repro.trackers.base import ActivationTracker, MetaAccess, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


class LineMetadataCache:
    """Set-associative LRU cache of 64 B metadata lines."""

    __slots__ = ("sets", "ways", "_sets", "hits", "misses", "evictions")

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, ways: int = 16) -> None:
        lines = capacity_bytes // line_bytes
        if lines < ways or lines % ways:
            raise ValueError("capacity must hold a whole number of sets")
        self.sets = lines // ways
        self.ways = ways
        # line_id -> dirty flag, in LRU order (oldest first).
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity_lines(self) -> int:
        return self.sets * self.ways

    def access(self, line_id: int, make_dirty: bool) -> Tuple[bool, Optional[int]]:
        """Touch a line (installing it on a miss).

        Returns ``(hit, dirty_victim_line)``: ``hit`` is False when the
        line had to be installed, and ``dirty_victim_line`` names an
        evicted dirty line that must be written back (clean evictions
        are free and reported as None).
        """
        cache_set = self._sets[line_id % self.sets]
        if line_id in cache_set:
            self.hits += 1
            cache_set.move_to_end(line_id)
            if make_dirty:
                cache_set[line_id] = True
            return True, None
        self.misses += 1
        victim: Optional[int] = None
        if len(cache_set) >= self.ways:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            self.evictions += 1
            if victim_dirty:
                victim = victim_line
        cache_set[line_id] = make_dirty
        return False, victim

    def contains(self, line_id: int) -> bool:
        return line_id in self._sets[line_id % self.sets]

    def reset(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()


class CraTracker(ActivationTracker):
    """Per-row DRAM counters + conventional metadata cache."""

    name = "cra"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        cache_bytes: int = 64 * 1024,
        cache_ways: int = 16,
    ) -> None:
        self.geometry = geometry
        self.trh = trh
        self.threshold = trh // 2
        counter_bytes = max(1, (self.threshold.bit_length() + 7) // 8)
        self.table = RowCountTable(geometry, counter_bytes=counter_bytes)
        self.cache = LineMetadataCache(cache_bytes, ways=cache_ways)
        self._counters_per_line = (
            geometry.line_size_bytes // counter_bytes
        )
        self.cache_bytes = cache_bytes
        self.mitigations = 0
        self.extra_read_lines = 0
        self.extra_write_lines = 0

    def _line_of(self, row_id: int) -> int:
        return row_id // self._counters_per_line

    def _meta_row_of_line(self, line_id: int) -> int:
        return self.table.meta_row_of(line_id * self._counters_per_line)

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        if self.table.is_meta_row(row_id):
            # CRA as published does not guard its own counter rows
            # (Hydra's §5.2.2 RIT-ACT has no CRA equivalent); counter-
            # row activations are simply not tracked.
            return None
        count = self.table.read(row_id) + 1
        mitigate: Tuple[int, ...] = ()
        if count >= self.threshold:
            self.mitigations += 1
            self.table.write(row_id, 0)
            mitigate = (row_id,)
        else:
            self.table.write(row_id, count)
        hit, dirty_victim = self.cache.access(self._line_of(row_id), make_dirty=True)
        if hit and not mitigate:
            return None
        meta: List[MetaAccess] = []
        if not hit:
            self.extra_read_lines += 1
            meta.append(
                MetaAccess(self._meta_row_of_line(self._line_of(row_id)), 1, False)
            )
            if dirty_victim is not None:
                self.extra_write_lines += 1
                meta.append(
                    MetaAccess(self._meta_row_of_line(dirty_victim), 1, True)
                )
        if not meta and not mitigate:
            return None
        return TrackerResponse(mitigate_rows=mitigate, meta_accesses=tuple(meta))

    def on_window_reset(self) -> None:
        self.table.reset_all()
        self.cache.reset()

    def extra_stats(self) -> dict:
        """Metadata-cache behaviour (drives the Figure 2 analysis)."""
        total = self.cache.hits + self.cache.misses
        return {
            "cache_miss_rate": self.cache.misses / total if total else 0.0,
        }

    def obs_snapshot(self) -> dict:
        """Cumulative counters for the per-window series recorder.

        The metadata cache's hit/miss/eviction counters survive window
        resets (``LineMetadataCache.reset`` clears entries, not
        accounting), so the per-window cache miss rate — the Figure 2
        story — falls out of the deltas.
        """
        return {
            "tracker_mitigations": float(self.mitigations),
            "cra_cache_hits": float(self.cache.hits),
            "cra_cache_misses": float(self.cache.misses),
            "cra_cache_evictions": float(self.cache.evictions),
            "cra_extra_read_lines": float(self.extra_read_lines),
            "cra_extra_write_lines": float(self.extra_write_lines),
        }

    def publish_metrics(self, registry) -> None:
        super().publish_metrics(registry)
        for name, value in self.obs_snapshot().items():
            if name == "tracker_mitigations":
                continue
            registry.counter(name, f"CraTracker {name}").inc(int(value))
        total = self.cache.hits + self.cache.misses
        registry.gauge(
            "cra_cache_miss_rate", "whole-run metadata-cache miss rate"
        ).set(self.cache.misses / total if total else 0.0)

    def sram_bytes(self) -> int:
        """Metadata cache data + ~25% tag/valid/LRU overhead."""
        return int(self.cache_bytes * 1.25)

    def dram_reserved_bytes(self) -> int:
        return self.table.dram_reserved_bytes()


@register_tracker(
    "cra",
    summary="per-row DRAM counters behind a line-granularity cache",
    params={
        "cache_kb": Param(
            int,
            help="full-scale metadata cache size in KB (default 64,"
            " scaled with the system)",
        ),
        "cache_ways": Param(int, 16, "metadata cache associativity"),
    },
)
def _cra_from_context(
    ctx: TrackerContext,
    cache_kb: Optional[int] = None,
    cache_ways: int = 16,
) -> CraTracker:
    full_bytes = cache_kb * 1024 if cache_kb is not None else None
    return CraTracker(
        ctx.geometry,
        trh=ctx.trh,
        cache_bytes=ctx.cra_cache_bytes(full_bytes),
        cache_ways=cache_ways,
    )
