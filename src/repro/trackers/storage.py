"""Storage-overhead models for prior RowHammer trackers (Tables 1 & 5).

Each function returns the SRAM/CAM bytes one *rank* of the paper's
16 GB configuration (16 banks, 8 KB rows, 2M rows) needs at a given
RowHammer threshold. Where the original papers give exact sizing
arithmetic (OCPR, Graphene) we implement it; for TWiCE, CAT and D-CBF
the paper reports point values without reproducible formulas, so we
use inverse-threshold fits *calibrated to Table 1's published points*
(each fit documented at its definition, with the calibration anchor).

Table 5 totals are these per-rank numbers times two ranks; per-bank
structures (Graphene, TWiCE, CAT) double again for DDR5's 32 banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.dram.timing import DramGeometry, DramTiming

#: A 16 GB rank: 16 banks x 128K rows x 8 KB (Table 1's configuration).
RANK_GEOMETRY = DramGeometry(
    channels=1, ranks_per_channel=1, banks_per_rank=16, rows_per_bank=131072
)

KIB = 1024
MIB = 1024 * 1024


def act_max_per_window(timing: DramTiming = DramTiming()) -> int:
    """Max ACTs one bank can see in a refresh window (~1.36M, §2.1)."""
    return timing.max_activations_per_window()


def ocpr_bytes_per_rank(
    trh: int, geometry: DramGeometry = RANK_GEOMETRY
) -> int:
    """One log2(T_RH)-bit counter per row (Table 1 upper bound)."""
    bits = max(1, (trh - 1).bit_length())
    rows = geometry.banks_per_rank * geometry.rows_per_bank
    return (rows * bits + 7) // 8


def graphene_bytes_per_rank(
    trh: int,
    geometry: DramGeometry = RANK_GEOMETRY,
    timing: DramTiming = DramTiming(),
) -> int:
    """Misra-Gries CAM: ceil(ACT_max/(T_RH/2)) + 1 entries/bank, 4 B each.

    Reproduces Table 1 exactly: 340 KB at T_RH=500, 679 KB at 250,
    170 KB at 1000, ~5 KB at 32K.
    """
    entries_per_bank = -(-act_max_per_window(timing) // (trh // 2)) + 1
    return entries_per_bank * geometry.banks_per_rank * 4


def twice_bytes_per_rank(trh: int, **_: object) -> int:
    """TWiCE table storage, inverse-threshold fit.

    Calibrated to Table 1's anchor of 1.2 MB/rank at T_RH = 1000 (and
    consistent with 2.3 MB at 500 and 37 KB at 32K). At ultra-low
    thresholds TWiCE degenerates toward per-row tracking, which is the
    paper's point ("almost as much storage as OCPR").
    """
    return int(1.2 * MIB * 1000 / trh)


def cat_bytes_per_rank(trh: int, **_: object) -> int:
    """Counter-Adaptive-Tree storage, inverse-threshold fit.

    Calibrated to Table 1's anchor of 1.5 MB/rank at T_RH = 500 (and
    consistent with 784 KB at 1000 and 25 KB at 32K).
    """
    return int(1.5 * MIB * 500 / trh)


def dcbf_bytes_per_rank(trh: int, **_: object) -> int:
    """Dual-CBF storage: inverse-threshold fit with an FP-rate floor.

    Calibrated to 768 KB/rank at T_RH = 500 (also matching 1.5 MB at
    250 and 384 KB at 1000). The 53 KB floor reflects the minimum
    filter population needed for a usable false-positive rate
    regardless of threshold (Table 1's T_RH = 32K row).
    """
    return max(int(768 * KIB * 500 / trh), 53 * KIB)


def hydra_bytes_total(trh: int = 500) -> int:
    """Hydra SRAM for the whole 32 GB system (both ranks), Table 4/5.

    Structures scale inversely with T_RH below the 500 design point
    (Figure 7 scales them 2x at 250 and 4x at 125).
    """
    from repro.core.config import HydraConfig
    from repro.core.storage import hydra_storage

    scale = max(1, 500 // trh)
    config = HydraConfig().with_threshold(trh, structure_scale=scale)
    return hydra_storage(config).sram_total_bytes


SCHEME_MODELS: Dict[str, Callable[..., int]] = {
    "Graphene": graphene_bytes_per_rank,
    "TWiCE": twice_bytes_per_rank,
    "CAT": cat_bytes_per_rank,
    "D-CBF": dcbf_bytes_per_rank,
    "OCPR": ocpr_bytes_per_rank,
}

#: Schemes whose structures are per-bank and thus double on DDR5.
PER_BANK_SCHEMES = ("Graphene", "TWiCE", "CAT")


@dataclass(frozen=True)
class StorageRow:
    """One threshold's worth of Table 1."""

    trh: int
    bytes_by_scheme: Dict[str, int]

    def kib(self, scheme: str) -> float:
        return self.bytes_by_scheme[scheme] / KIB


def storage_table(
    thresholds: Sequence[int] = (250, 500, 1000, 32000),
) -> List[StorageRow]:
    """Regenerate Table 1: per-rank storage of each scheme."""
    rows = []
    for trh in thresholds:
        rows.append(
            StorageRow(
                trh=trh,
                bytes_by_scheme={
                    name: model(trh) for name, model in SCHEME_MODELS.items()
                },
            )
        )
    return rows


def total_sram_table(trh: int = 500, ranks: int = 2) -> Dict[str, Dict[str, int]]:
    """Regenerate Table 5: whole-system SRAM, DDR4 vs DDR5.

    DDR5 doubles per-bank structures (32 banks/rank); D-CBF and Hydra
    are threshold/row-count structures and do not double.
    """
    table: Dict[str, Dict[str, int]] = {}
    for name, model in SCHEME_MODELS.items():
        if name == "OCPR":
            continue
        ddr4 = model(trh) * ranks
        ddr5 = ddr4 * 2 if name in PER_BANK_SCHEMES else ddr4
        table[name] = {"ddr4": ddr4, "ddr5": ddr5}
    hydra = hydra_bytes_total(trh)
    table["Hydra"] = {"ddr4": hydra, "ddr5": hydra}
    return table
