"""MRLOC and ProHIT: probabilistic trackers the paper deems insecure.

§7.3: "MRLOC [32] and ProHIT [29] also use probabilistic decisions,
however, they are not secure." This module implements faithful
simplifications of both so that claim can be *demonstrated*: the
security harness (Theorem-1 oracle) finds activation sequences that
exceed the RowHammer threshold without ever drawing a mitigation —
something impossible for Hydra, Graphene, CRA, OCPR, CAT or TWiCE.

- **MRLOC** (Memory Row-hammering LOCality, DAC 2019) keeps a small
  queue of recently mitigated/suspected aggressors and scales its
  mitigation probability with how recently the activated row was
  seen: rows re-activated while still in the queue are likelier to
  get a victim refresh. An attacker who paces aggressors so they age
  out of the queue keeps the per-activation probability at the
  floor, and the binomial tail does the rest.

- **ProHIT** (DAC 2017) maintains a two-level hot/cold table managed
  probabilistically: on a miss, the activated row enters the cold
  table with probability 1/p_insert (displacing a random cold entry);
  cold entries promote toward the hot table on hits; the top hot
  entry is mitigated when refresh opportunities arise. Tables sized
  for common-case behaviour can simply *never sample* one of many
  parallel aggressors.

Both are effective *on average* — their published evaluations show
strong protection for benign-ish workloads — which the statistics
tests verify; the security tests verify the worst case fails.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


class MrlocTracker(ActivationTracker):
    """Locality-adaptive probabilistic victim refresh."""

    name = "mrloc"

    def __init__(
        self,
        queue_entries: int = 16,
        base_probability: float = 0.002,
        locality_boost: float = 8.0,
        seed: int = 0x4D524C,
    ) -> None:
        if queue_entries <= 0:
            raise ValueError("queue_entries must be positive")
        if not 0.0 < base_probability < 1.0:
            raise ValueError("base_probability must be in (0, 1)")
        if locality_boost < 1.0:
            raise ValueError("locality_boost must be >= 1")
        self.queue_entries = queue_entries
        self.base_probability = base_probability
        self.locality_boost = locality_boost
        self._queue: Deque[int] = deque(maxlen=queue_entries)
        self._rng = random.Random(seed)
        self.mitigations = 0
        self.activations = 0

    def probability_for(self, row_id: int) -> float:
        """Mitigation probability: boosted while the row is queued."""
        if row_id in self._queue:
            return min(1.0, self.base_probability * self.locality_boost)
        return self.base_probability

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        self.activations += 1
        probability = self.probability_for(row_id)
        if self._rng.random() < probability:
            self._queue.append(row_id)
            self.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        return None

    def on_window_reset(self) -> None:
        self._queue.clear()

    def sram_bytes(self) -> int:
        return 4 * self.queue_entries  # row-address queue


class ProhitTracker(ActivationTracker):
    """Probabilistic hot/cold table with opportunistic mitigation."""

    name = "prohit"

    def __init__(
        self,
        hot_entries: int = 4,
        cold_entries: int = 8,
        insert_probability: float = 0.01,
        mitigation_interval: int = 512,
        seed: int = 0x50524F,
    ) -> None:
        if hot_entries <= 0 or cold_entries <= 0:
            raise ValueError("table sizes must be positive")
        if not 0.0 < insert_probability <= 1.0:
            raise ValueError("insert_probability must be in (0, 1]")
        if mitigation_interval <= 0:
            raise ValueError("mitigation_interval must be positive")
        self.hot_entries = hot_entries
        self.cold_entries = cold_entries
        self.insert_probability = insert_probability
        self.mitigation_interval = mitigation_interval
        self._hot: Dict[int, int] = {}
        self._cold: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self.mitigations = 0
        self.activations = 0

    def _promote(self, row_id: int) -> None:
        count = self._cold.pop(row_id)
        if len(self._hot) >= self.hot_entries:
            coolest = min(self._hot, key=self._hot.__getitem__)
            if self._hot[coolest] >= count:
                self._cold[row_id] = count
                return
            demoted = self._hot.pop(coolest)
            if len(self._cold) < self.cold_entries:
                self._cold[coolest] = demoted
        self._hot[row_id] = count

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        self.activations += 1
        if row_id in self._hot:
            self._hot[row_id] += 1
        elif row_id in self._cold:
            self._cold[row_id] += 1
            self._promote(row_id)
        elif self._rng.random() < self.insert_probability:
            if len(self._cold) >= self.cold_entries:
                # Displace a random cold entry (probabilistic victim).
                victim = self._rng.choice(list(self._cold))
                del self._cold[victim]
            self._cold[row_id] = 1
        # Opportunistic mitigation of the hottest tabled row.
        if self._hot and self.activations % self.mitigation_interval == 0:
            hottest = max(self._hot, key=self._hot.__getitem__)
            self._hot[hottest] = 0
            self.mitigations += 1
            return TrackerResponse(mitigate_rows=(hottest,))
        return None

    def tabled_rows(self) -> List[int]:
        return list(self._hot) + list(self._cold)

    def on_window_reset(self) -> None:
        self._hot.clear()
        self._cold.clear()

    def sram_bytes(self) -> int:
        return 6 * (self.hot_entries + self.cold_entries)


@register_tracker(
    "mrloc",
    summary="locality-adaptive probabilistic refresh (known-bypassable)",
    security_class="insecure",
    params={
        "queue_entries": Param(int, 16, "recent-victim queue length"),
        "base_probability": Param(float, 0.002, "baseline refresh probability"),
        "locality_boost": Param(float, 8.0, "probability boost while queued"),
        "seed": Param(int, 0x4D524C, "PRNG seed"),
    },
)
def _mrloc_from_context(
    ctx: TrackerContext,
    queue_entries: int = 16,
    base_probability: float = 0.002,
    locality_boost: float = 8.0,
    seed: int = 0x4D524C,
) -> MrlocTracker:
    return MrlocTracker(
        queue_entries=queue_entries,
        base_probability=base_probability,
        locality_boost=locality_boost,
        seed=seed,
    )


@register_tracker(
    "prohit",
    summary="probabilistic hot/cold tables (known-bypassable)",
    security_class="insecure",
    params={
        "hot_entries": Param(int, 4, "hot-table entries"),
        "cold_entries": Param(int, 8, "cold-table entries"),
        "insert_probability": Param(float, 0.01, "cold-insert probability"),
        "mitigation_interval": Param(
            int, 512, "activations between opportunistic mitigations"
        ),
        "seed": Param(int, 0x50524F, "PRNG seed"),
    },
)
def _prohit_from_context(
    ctx: TrackerContext,
    hot_entries: int = 4,
    cold_entries: int = 8,
    insert_probability: float = 0.01,
    mitigation_interval: int = 512,
    seed: int = 0x50524F,
) -> ProhitTracker:
    return ProhitTracker(
        hot_entries=hot_entries,
        cold_entries=cold_entries,
        insert_probability=insert_probability,
        mitigation_interval=mitigation_interval,
        seed=seed,
    )
