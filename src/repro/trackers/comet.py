"""CoMeT: Count-Min-Sketch row tracking (Bostancı et al., HPCA 2024).

A post-Hydra successor tracker (arXiv 2402.18769). Each bank tracks
activation counts in a **Count-Min Sketch** — ``k`` hash functions,
each indexing its own counter array — instead of per-row tags: a row's
estimate is the *minimum* of its ``k`` counters, which (counters only
ever increase, and every activation of a row increments all ``k`` of
its counters) dominates the row's true count. Mitigating when the
minimum reaches the threshold is therefore sound by the same
overestimate argument as Graphene, at a fraction of the storage —
counters are shared by hash collision rather than tagged per row.

The catch: sketch counters are never decremented mid-window, so after
one mitigation a hot row's estimate stays at the threshold and every
further activation would re-mitigate. CoMeT's fix is the **Recent
Aggressor Table (RAT)**: a small per-bank table of recently mitigated
rows with *exact* dedicated counters starting from zero. RAT hits
bypass the sketch; a RAT eviction simply drops the row back to the
sketch path, where its stale (high) estimate re-mitigates it within
one activation — conservative, never unsafe.

Sizing follows the paper's design point — ``k = 4`` hash functions and
512 counters per hash per bank at T_RH = 1000 — and scales the counter
arrays inversely with T_RH (the paper's sensitivity trend: halving the
threshold doubles the rows that can approach it, hence the width
needed to keep collision-induced spurious mitigations rare).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.timing import DramGeometry
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker

#: Large odd multipliers for the four CMS hash functions (Knuth-style,
#: same construction as the D-CBF hashes).
_HASH_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0xD6E8FEB86659FD93,
)
_HASH_BITS = 64

#: The paper's design point: counters per hash per bank at T_RH = 1000.
_BASE_COUNTERS = 512
_BASE_TRH = 1000


def comet_counters_per_hash(trh: int) -> int:
    """Counter-array width per hash function at threshold ``trh``.

    Anchored at the paper's 512-counters-per-hash design point for
    T_RH = 1000 and scaled inversely with the threshold, rounded up to
    a power of two (so the hash modulo stays cheap in hardware). The
    floor of 64 keeps the sketch non-degenerate at the 139K rung,
    where storage is nearly free anyway.
    """
    if trh <= 0:
        raise ValueError("trh must be positive")
    width = -(-_BASE_COUNTERS * _BASE_TRH // trh)
    width = max(64, width)
    return 1 << (width - 1).bit_length()


class _CountMinSketch:
    """One bank's sketch: k hash functions over k counter arrays."""

    __slots__ = ("width", "saturation", "_counts")

    def __init__(self, width: int, saturation: int) -> None:
        self.width = width
        #: Counters saturate at the mitigation threshold — higher
        #: values are indistinguishable, so the hardware never needs
        #: more than ``bit_length(threshold)`` bits per counter.
        self.saturation = saturation
        self._counts: List[List[int]] = [
            [0] * width for _ in _HASH_MULTIPLIERS
        ]

    def _index(self, hash_id: int, key: int) -> int:
        mult = _HASH_MULTIPLIERS[hash_id]
        return ((key * mult) >> (_HASH_BITS - 32)) % self.width

    def record(self, key: int) -> int:
        """Increment all k counters; return the new minimum estimate."""
        minimum = self.saturation
        for hash_id, counts in enumerate(self._counts):
            index = self._index(hash_id, key)
            value = counts[index]
            if value < self.saturation:
                value += 1
                counts[index] = value
            if value < minimum:
                minimum = value
        return minimum

    def clear(self) -> None:
        for counts in self._counts:
            for i in range(self.width):
                counts[i] = 0


class _CometBank:
    """Sketch + recent-aggressor table for one bank."""

    __slots__ = ("sketch", "rat", "rat_entries", "threshold")

    def __init__(self, width: int, rat_entries: int, threshold: int) -> None:
        self.sketch = _CountMinSketch(width, threshold)
        #: row -> exact activation count since its last mitigation.
        self.rat: Dict[int, int] = {}
        self.rat_entries = rat_entries
        self.threshold = threshold


class CometTracker(ActivationTracker):
    """Per-bank count-min sketch with a recent-aggressor table."""

    name = "comet"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        counters_per_hash: Optional[int] = None,
        rat_entries: int = 32,
    ) -> None:
        if rat_entries <= 0:
            raise ValueError("rat_entries must be positive")
        self.geometry = geometry
        self.trh = trh
        #: Mitigation threshold: halved once for the window reset,
        #: matching the repo-wide convention (Graphene footnote 3).
        self.threshold = max(1, trh // 2)
        self.counters_per_hash = (
            counters_per_hash
            if counters_per_hash is not None
            else comet_counters_per_hash(trh)
        )
        self.rat_entries = rat_entries
        self._rows_per_bank = geometry.rows_per_bank
        self._banks = [
            _CometBank(self.counters_per_hash, rat_entries, self.threshold)
            for _ in range(geometry.total_banks)
        ]
        self.mitigations = 0
        self.rat_hits = 0
        self.rat_evictions = 0
        self.sketch_mitigations = 0
        self.rat_mitigations = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        bank = self._banks[row_id // self._rows_per_bank]
        count = bank.rat.get(row_id)
        if count is not None:
            # RAT hit: exact counting since the last mitigation.
            self.rat_hits += 1
            count += 1
            if count >= bank.threshold:
                bank.rat[row_id] = 0
                self.mitigations += 1
                self.rat_mitigations += 1
                return TrackerResponse(mitigate_rows=(row_id,))
            bank.rat[row_id] = count
            return None
        estimate = bank.sketch.record(row_id)
        if estimate >= bank.threshold:
            self.mitigations += 1
            self.sketch_mitigations += 1
            self._rat_insert(bank, row_id)
            return TrackerResponse(mitigate_rows=(row_id,))
        return None

    def _rat_insert(self, bank: _CometBank, row_id: int) -> None:
        """Start exact post-mitigation counting for ``row_id``.

        A full RAT evicts its lowest-count entry — the entry closest
        to "cold", and the one whose return to the (stale, saturated)
        sketch path costs the fewest spurious mitigations.
        """
        if len(bank.rat) >= bank.rat_entries:
            victim = min(bank.rat, key=bank.rat.__getitem__)
            del bank.rat[victim]
            self.rat_evictions += 1
        bank.rat[row_id] = 0

    def on_window_reset(self) -> None:
        for bank in self._banks:
            bank.sketch.clear()
            bank.rat.clear()

    def sram_bytes(self) -> int:
        """Sketch counters plus RAT tags+counters, all banks."""
        counter_bits = max(1, self.threshold.bit_length())
        sketch_bits = len(_HASH_MULTIPLIERS) * self.counters_per_hash
        row_bits = max(1, (self._rows_per_bank - 1).bit_length())
        rat_bits = self.rat_entries * (row_bits + counter_bits)
        per_bank_bits = sketch_bits * counter_bits + rat_bits
        total_bits = per_bank_bits * self.geometry.total_banks
        return (total_bits + 7) // 8

    def extra_stats(self):
        return {
            "counters_per_hash": self.counters_per_hash,
            "rat_hits": self.rat_hits,
            "rat_evictions": self.rat_evictions,
            "sketch_mitigations": self.sketch_mitigations,
            "rat_mitigations": self.rat_mitigations,
        }


@register_tracker(
    "comet",
    summary="per-bank count-min sketch + recent-aggressor table (CoMeT)",
    params={
        "counters_per_hash": Param(
            int,
            help="CMS width per hash per bank (default: paper scaling)",
        ),
        "rat_entries": Param(
            int, 32, "recent-aggressor table entries per bank"
        ),
    },
)
def _comet_from_context(
    ctx: TrackerContext,
    counters_per_hash: Optional[int] = None,
    rat_entries: int = 32,
) -> CometTracker:
    return CometTracker(
        ctx.geometry,
        trh=ctx.trh,
        counters_per_hash=counters_per_hash,
        rat_entries=rat_entries,
    )
