"""START: scalable LLC-resident tracking (Saxena & Qureshi, 2023).

"Scalable and Configurable Tracking for Any Rowhammer Threshold"
(arXiv 2308.14889). Where Graphene adds a dedicated CAM and Hydra
reserves DRAM, START stores activation counters in dynamically
reserved **last-level-cache lines**, allocated only when tracking
actually needs them — benign workloads reserve almost nothing, and the
worst case tops out at the equivalent of plain per-row counters.

Two-level scheme, per bank:

1. **Group counters.** Rows are grouped ``rows_per_line`` to a 64 B
   line (32 rows at 2 B per counter); one aggregate counter per group
   counts all activations of the group. A group counter dominates
   every member row's true count by construction.
2. **Escalation.** When a group's aggregate reaches the escalation
   threshold (half the mitigation threshold), the group is promoted to
   a dedicated per-row counter line; every member row's counter is
   initialised to the group aggregate — inheriting the overestimate,
   so soundness survives the promotion. A per-row counter reaching the
   mitigation threshold triggers a victim refresh and resets to zero.

The line budget is the paper's arithmetic: at most
``ACT_max / escalation_threshold`` groups can reach the escalation
threshold in one window (each promotion consumes that many
activations), and the budget never needs to exceed the degenerate
"every row's counter resident" footprint — so

    lines_per_bank = min(ceil(ACT_max / esc), ceil(rows * 2 B / 64 B))

which shrinks toward a handful of lines at T_RH = 139K and saturates
at the per-row footprint at ultra-low thresholds. If the budget is
overridden below the safe sizing and runs out, a hot group falls back
to **group-wide mitigation**: when its aggregate reaches the
mitigation threshold, every row of the group is refreshed and the
aggregate resets — expensive (the performance cliff the paper sizes
against) but still sound, since no member's true count can exceed the
aggregate.

The reservation is LLC capacity, not dedicated SRAM: ``sram_bytes()``
reports only the tiny directory, and ``llc_reserved_bytes()`` (also in
``extra_stats``) reports the cache carve-out — the arena's storage
axis charges both.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker

#: One 64 B LLC line holds 32 two-byte counters.
LINE_BYTES = 64
COUNTER_BYTES = 2
ROWS_PER_LINE = LINE_BYTES // COUNTER_BYTES


def start_lines_per_bank(trh: int, act_max: int, rows_per_bank: int) -> int:
    """Per-row counter lines one bank can ever need (see module doc)."""
    if trh < 4:
        raise ValueError("trh too small")
    escalation = max(1, trh // 4)
    worst_case_groups = -(-act_max // escalation)
    per_row_lines = -(-rows_per_bank // ROWS_PER_LINE)
    return max(1, min(worst_case_groups, per_row_lines))


class _StartBank:
    """One bank's two-level counter state."""

    __slots__ = ("group_counts", "escalated", "degraded")

    def __init__(self) -> None:
        #: group -> aggregate activation count (level 1).
        self.group_counts: Dict[int, int] = {}
        #: group -> per-row counter line (level 2), keyed by local row.
        self.escalated: Dict[int, List[int]] = {}
        #: Groups denied a line by an exhausted budget (clamp mode).
        self.degraded = 0


class StartTracker(ActivationTracker):
    """Two-level LLC-resident counters with on-demand escalation."""

    name = "start"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        timing: DramTiming = DramTiming(),
        lines_per_bank: Optional[int] = None,
    ) -> None:
        self.geometry = geometry
        self.trh = trh
        #: Mitigation threshold: halved once for the window reset.
        self.threshold = max(2, trh // 2)
        #: Escalate well before mitigation so the promoted per-row
        #: counters (initialised to the aggregate) retain headroom.
        self.escalation_threshold = max(1, trh // 4)
        act_max = timing.max_activations_per_window()
        self.lines_per_bank = (
            lines_per_bank
            if lines_per_bank is not None
            else start_lines_per_bank(trh, act_max, geometry.rows_per_bank)
        )
        if self.lines_per_bank <= 0:
            raise ValueError("lines_per_bank must be positive")
        self._rows_per_bank = geometry.rows_per_bank
        self._groups_per_bank = -(-geometry.rows_per_bank // ROWS_PER_LINE)
        self._banks = [_StartBank() for _ in range(geometry.total_banks)]
        self.mitigations = 0
        self.escalations = 0
        self.group_mitigations = 0
        self.peak_lines = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        bank = self._banks[row_id // self._rows_per_bank]
        local = row_id % self._rows_per_bank
        group = local // ROWS_PER_LINE
        line = bank.escalated.get(group)
        if line is not None:
            slot = local % ROWS_PER_LINE
            count = line[slot] + 1
            if count >= self.threshold:
                line[slot] = 0
                self.mitigations += 1
                return TrackerResponse(mitigate_rows=(row_id,))
            line[slot] = count
            return None
        aggregate = bank.group_counts.get(group, 0) + 1
        if aggregate >= self.escalation_threshold:
            if len(bank.escalated) < self.lines_per_bank:
                # Promote: per-row counters inherit the aggregate.
                bank.escalated[group] = [aggregate] * ROWS_PER_LINE
                bank.group_counts.pop(group, None)
                self.escalations += 1
                if len(bank.escalated) > self.peak_lines:
                    self.peak_lines = len(bank.escalated)
                if aggregate >= self.threshold:
                    # Undersized escalation threshold override: the
                    # aggregate already crossed the mitigation bound.
                    return self._mitigate_group(bank, row_id, group)
                return None
            bank.degraded += 1
        if aggregate >= self.threshold:
            return self._mitigate_group(bank, row_id, group)
        bank.group_counts[group] = aggregate
        return None

    def _mitigate_group(
        self, bank: _StartBank, row_id: int, group: int
    ) -> TrackerResponse:
        """Clamp mode: refresh the whole group, reset its counters."""
        line = bank.escalated.get(group)
        if line is not None:
            for slot in range(ROWS_PER_LINE):
                line[slot] = 0
        bank.group_counts.pop(group, None)
        base = (row_id // self._rows_per_bank) * self._rows_per_bank
        first = base + group * ROWS_PER_LINE
        rows = tuple(
            first + offset
            for offset in range(ROWS_PER_LINE)
            if first + offset < base + self._rows_per_bank
        )
        self.mitigations += len(rows)
        self.group_mitigations += 1
        return TrackerResponse(mitigate_rows=rows)

    def on_window_reset(self) -> None:
        for bank in self._banks:
            bank.group_counts.clear()
            bank.escalated.clear()

    def sram_bytes(self) -> int:
        """Only the escalation directory lives in dedicated SRAM:
        one presence bit per group per bank."""
        total_bits = self._groups_per_bank * self.geometry.total_banks
        return (total_bits + 7) // 8

    def llc_reserved_bytes(self) -> int:
        """Worst-case LLC carve-out: the per-row line budget plus the
        group-counter lines themselves."""
        group_lines = -(-self._groups_per_bank * COUNTER_BYTES // LINE_BYTES)
        per_bank = (self.lines_per_bank + group_lines) * LINE_BYTES
        return per_bank * self.geometry.total_banks

    def extra_stats(self):
        return {
            "lines_per_bank": self.lines_per_bank,
            "llc_reserved_bytes": self.llc_reserved_bytes(),
            "escalations": self.escalations,
            "peak_lines": self.peak_lines,
            "group_mitigations": self.group_mitigations,
            "degraded_acts": sum(b.degraded for b in self._banks),
        }


@register_tracker(
    "start",
    summary="LLC-resident group counters escalating to per-row (START)",
    params={
        "lines_per_bank": Param(
            int,
            help="per-row counter line budget per bank (default: paper"
            " sizing, min(ACT_max/esc, per-row footprint))",
        ),
    },
)
def _start_from_context(
    ctx: TrackerContext, lines_per_bank: Optional[int] = None
) -> StartTracker:
    return StartTracker(
        ctx.geometry,
        trh=ctx.trh,
        timing=ctx.timing,
        lines_per_bank=lines_per_bank,
    )
