"""Mithril: RFM-driven cooperative tracking (Kim et al., 2021).

Referenced by the paper (§1) among in-DRAM SRAM trackers. Mithril
pairs a Space-Saving-style counter table *inside the DRAM* with the
DDR5 Refresh-Management (RFM) command: the memory controller issues an
RFM every ``rfm_interval`` activations, and the DRAM uses that slot to
refresh the neighbours of its current maximum-count row, then lowers
that row's count to the table minimum.

The security argument (adapted from the Mithril paper): between
mitigations the maximum tabled count can climb by at most
``rfm_interval``, and Space-Saving guarantees every row's estimate
dominates its true count, so a row's true count can never exceed
``table-min + rfm_interval`` without being the maximum at some RFM —
choosing ``rfm_interval <= T_H/2`` with an adequately sized table
bounds unmitigated counts below T_H. The property tests exercise
exactly this bound.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker
from repro.trackers.graphene import _SpaceSavingTable


class MithrilTracker(ActivationTracker):
    """Space-Saving table mitigated on periodic RFM opportunities."""

    name = "mithril"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        timing: DramTiming = DramTiming(),
        rfm_interval: Optional[int] = None,
        entries_per_bank: Optional[int] = None,
    ) -> None:
        self.geometry = geometry
        self.trh = trh
        self.threshold = trh // 2
        self.rfm_interval = (
            rfm_interval if rfm_interval is not None else max(1, self.threshold // 4)
        )
        if self.rfm_interval <= 0:
            raise ValueError("rfm_interval must be positive")
        if entries_per_bank is None:
            act_max = timing.max_activations_per_window()
            entries_per_bank = -(-act_max // max(1, self.threshold // 2)) + 1
        self.entries_per_bank = entries_per_bank
        self._rows_per_bank = geometry.rows_per_bank
        self._tables = [
            _SpaceSavingTable(entries_per_bank)
            for _ in range(geometry.total_banks)
        ]
        self._acts_since_rfm = [0] * geometry.total_banks
        self.mitigations = 0
        self.rfm_commands = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        bank = row_id // self._rows_per_bank
        table = self._tables[bank]
        estimate = table.record(row_id)
        self._acts_since_rfm[bank] += 1
        # Immediate backstop: a row at the threshold cannot wait for
        # the next RFM slot (the estimate only overestimates, so this
        # only ever fires early, never late).
        if estimate >= self.threshold:
            table.reset_row(row_id, table.floor())
            self.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        if self._acts_since_rfm[bank] >= self.rfm_interval:
            self._acts_since_rfm[bank] = 0
            self.rfm_commands += 1
            if table.counts:
                hottest = max(table.counts, key=table.counts.__getitem__)
                table.reset_row(hottest, table.floor())
                self.mitigations += 1
                return TrackerResponse(mitigate_rows=(hottest,))
        return None

    def on_window_reset(self) -> None:
        for table in self._tables:
            table.clear()
        self._acts_since_rfm = [0] * len(self._acts_since_rfm)

    def sram_bytes(self) -> int:
        return 4 * self.entries_per_bank * self.geometry.total_banks


@register_tracker(
    "mithril",
    summary="Space-Saving table mitigated on RFM opportunities (Mithril)",
    params={
        "rfm_interval": Param(
            int, help="activations per RFM opportunity (default: T_H/8)"
        ),
        "entries_per_bank": Param(
            int, help="table entries per bank (default: derived)"
        ),
    },
)
def _mithril_from_context(
    ctx: TrackerContext,
    rfm_interval: Optional[int] = None,
    entries_per_bank: Optional[int] = None,
) -> MithrilTracker:
    return MithrilTracker(
        ctx.geometry,
        trh=ctx.trh,
        timing=ctx.timing,
        rfm_interval=rfm_interval,
        entries_per_bank=entries_per_bank,
    )
