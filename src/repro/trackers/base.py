"""Common tracker interface (canonical definitions in `repro.interfaces`).

This module re-exports the tracker abstractions so baseline trackers
and user code can keep importing them from ``repro.trackers.base``,
while low-level packages (e.g. ``repro.core.rct``) import from
``repro.interfaces`` without touching this package's ``__init__``.
"""

from repro.interfaces import (
    ActivationTracker,
    MetaAccess,
    NullTracker,
    TrackerResponse,
    merge_responses,
)

__all__ = [
    "ActivationTracker",
    "MetaAccess",
    "NullTracker",
    "TrackerResponse",
    "merge_responses",
]
