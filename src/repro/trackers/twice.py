"""TWiCE: Time Window Counter-based tracking (Lee et al., ISCA 2019).

A per-bank table of {row -> (activation count, lifetime)} entries,
periodically *pruned*: an entry whose activation count is too low to
ever reach the RowHammer threshold within the remaining refresh window
cannot be a viable aggressor and is dropped, so the table only retains
plausible candidates. That pruning rule is why TWiCE is compact at
T_RH = 32K and why it degenerates toward one-counter-per-row at
ultra-low thresholds (Table 1): at T_RH = 500 almost *every* touched
row stays a viable candidate.

Pruning model: time is measured in per-bank activations. A row is
prunable only when it *provably* cannot reach the threshold anymore:
``count + (ACT_max - acts_so_far) < T_H`` — even monopolizing every
remaining activation of the bank would not get it there. This sound
rule is deliberately weak at ultra-low thresholds (nothing is prunable
until the window is nearly spent), which is precisely the paper's §2.4
criticism: at T_RH = 500, TWiCE degenerates toward one-counter-per-
row storage. A full table falls back to evicting the minimum-count
entry *into a new entry inheriting that count* (Space-Saving style) so
soundness is preserved even when under-provisioned.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


class _BankTable:
    """One bank's TWiCE table."""

    __slots__ = ("capacity", "entries", "acts", "pruned")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Dict[int, int] = {}
        self.acts = 0
        self.pruned = 0

    def prune(self, minimum_count: int) -> None:
        doomed = [
            row for row, count in self.entries.items() if count < minimum_count
        ]
        for row in doomed:
            del self.entries[row]
        self.pruned += len(doomed)

    def clear(self) -> None:
        self.entries.clear()
        self.acts = 0


class TwiceTracker(ActivationTracker):
    """Pruned activation table with victim-refresh mitigation."""

    name = "twice"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        timing: DramTiming = DramTiming(),
        entries_per_bank: Optional[int] = None,
        prune_interval_acts: int = 2048,
    ) -> None:
        if prune_interval_acts <= 0:
            raise ValueError("prune_interval_acts must be positive")
        self.geometry = geometry
        self.trh = trh
        self.threshold = trh // 2
        self._act_max = timing.max_activations_per_window()
        if entries_per_bank is None:
            from repro.trackers.storage import twice_bytes_per_rank

            per_rank = twice_bytes_per_rank(trh) // 4
            entries_per_bank = max(64, per_rank // geometry.banks_per_rank)
        self.entries_per_bank = entries_per_bank
        self.prune_interval_acts = prune_interval_acts
        self._rows_per_bank = geometry.rows_per_bank
        self._tables = [
            _BankTable(entries_per_bank) for _ in range(geometry.total_banks)
        ]
        self.mitigations = 0

    # ------------------------------------------------------------------

    def _viability_bar(self, acts_so_far: int) -> int:
        """Count below which a row provably cannot reach T_H anymore.

        Even taking every one of the bank's remaining activations, a
        row with ``count < T_H - remaining`` cannot reach the
        threshold before the window ends, so it is safe to forget.
        """
        remaining = max(0, self._act_max - acts_so_far)
        return self.threshold - remaining

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        table = self._tables[row_id // self._rows_per_bank]
        table.acts += 1
        if table.acts % self.prune_interval_acts == 0:
            bar = self._viability_bar(table.acts)
            if bar > 1:
                table.prune(bar)
        count = table.entries.get(row_id)
        if count is not None:
            count += 1
        elif len(table.entries) < table.capacity:
            count = 1
        else:
            # Securely degrade: displace the minimum entry, inheriting
            # its count so the newcomer is never under-estimated.
            victim = min(table.entries, key=table.entries.__getitem__)
            count = table.entries.pop(victim) + 1
        if count >= self.threshold:
            self.mitigations += 1
            # Keep the entry, dropped to the table's floor rather than
            # popped: removing entries would free slots that let later
            # newcomers enter below evicted rows' true counts, breaking
            # the overestimate invariant (same reasoning as Graphene's
            # spillover reset).
            others = (
                c for r, c in table.entries.items() if r != row_id
            )
            floor = min(others, default=0)
            table.entries[row_id] = min(floor, self.threshold - 1)
            return TrackerResponse(mitigate_rows=(row_id,))
        table.entries[row_id] = count
        return None

    def on_window_reset(self) -> None:
        for table in self._tables:
            table.clear()

    def sram_bytes(self) -> int:
        return 4 * self.entries_per_bank * self.geometry.total_banks

    def pruned_entries(self) -> int:
        return sum(table.pruned for table in self._tables)

    def occupancy(self) -> int:
        return sum(len(table.entries) for table in self._tables)


@register_tracker(
    "twice",
    summary="pruned activation table in the buffer chip (TWiCe)",
    params={
        "entries_per_bank": Param(
            int, help="table entries per bank (default: Table 1 sizing)"
        ),
        "prune_interval_acts": Param(
            int, 2048, "activations between pruning passes"
        ),
    },
)
def _twice_from_context(
    ctx: TrackerContext,
    entries_per_bank: Optional[int] = None,
    prune_interval_acts: int = 2048,
) -> TwiceTracker:
    return TwiceTracker(
        ctx.geometry,
        trh=ctx.trh,
        timing=ctx.timing,
        entries_per_bank=entries_per_bank,
        prune_interval_acts=prune_interval_acts,
    )
