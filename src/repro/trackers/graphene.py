"""Graphene: Misra-Gries / Space-Saving SRAM tracking (MICRO 2020).

The state-of-the-art SRAM tracker the paper compares against. Each
bank has a frequent-row table maintained with the Space-Saving variant
of Misra-Gries: a full table evicts a minimum-count entry, and the
newcomer inherits ``min + 1``, so every tabled count is an
*overestimate* of the row's true count — which is what makes
mitigation-on-threshold sound. A spillover minimum bounded by
ACT_max / entries guarantees any row that could approach the threshold
is resident.

Sizing follows the paper's §4.1 arithmetic: the tracker operates at
T_RH/2 (window-reset halving, footnote 3) and therefore needs
``ceil(ACT_max / (T_RH/2)) + 1`` entries per bank — 5441 entries/bank
at T_RH = 500, i.e. the 340 KB/rank CAM of Table 1.

The bucket-queue implementation below is O(1) amortized per
activation, which matters because Graphene is consulted on *every*
activation of every bank.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


class _SpaceSavingTable:
    """One bank's frequent-row table (bucket-queue Space-Saving)."""

    __slots__ = ("capacity", "counts", "_buckets", "_min_count")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.counts: Dict[int, int] = {}
        self._buckets: Dict[int, Set[int]] = {}
        self._min_count = 0

    def record(self, row: int) -> int:
        """Count one activation; return the row's (over)estimate."""
        count = self.counts.get(row)
        if count is not None:
            self._move(row, count, count + 1)
            return count + 1
        if len(self.counts) < self.capacity:
            self._insert(row, 1)
            return 1
        # Table full: evict a minimum-count row, inherit min + 1.
        victim = next(iter(self._buckets[self._min_count]))
        new_count = self._min_count + 1
        self._remove(victim, self._min_count)
        self._insert(row, new_count)
        return new_count

    def floor(self) -> int:
        """The spillover floor: the minimum count among tabled rows.

        This is the count a newly inserted row inherits (plus one) when
        the table is full, and the value Graphene resets a mitigated
        row's estimate to. Public accessor so trackers built on this
        table never reach into ``_min_count``. Zero on an empty table.
        """
        return self._min_count

    def reset_row(self, row: int, value: int) -> None:
        """After mitigation, drop the row's estimate to ``value``."""
        count = self.counts.get(row)
        if count is None:
            return
        self._move(row, count, value)

    def clear(self) -> None:
        self.counts.clear()
        self._buckets.clear()
        self._min_count = 0

    # -- bucket-queue plumbing -------------------------------------------

    def _insert(self, row: int, count: int) -> None:
        self.counts[row] = count
        self._buckets.setdefault(count, set()).add(row)
        if len(self.counts) == 1 or count < self._min_count:
            self._min_count = count

    def _remove(self, row: int, count: int) -> None:
        del self.counts[row]
        bucket = self._buckets[count]
        bucket.discard(row)
        if not bucket:
            del self._buckets[count]
            if count == self._min_count and self.counts:
                self._min_count = min(self._buckets)

    def _move(self, row: int, old: int, new: int) -> None:
        bucket = self._buckets[old]
        bucket.discard(row)
        if not bucket:
            del self._buckets[old]
        self._buckets.setdefault(new, set()).add(row)
        self.counts[row] = new
        if old == self._min_count and old not in self._buckets:
            self._min_count = min(self._buckets)
        if new < self._min_count:
            self._min_count = new


def graphene_entries_per_bank(trh: int, act_max: int) -> int:
    """Entries one bank's table needs at threshold ``trh`` (§4.1)."""
    if trh < 4:
        raise ValueError("trh too small")
    mitigation_threshold = trh // 2
    return -(-act_max // mitigation_threshold) + 1


class GrapheneTracker(ActivationTracker):
    """Per-bank Misra-Gries tracker with victim-refresh mitigation."""

    name = "graphene"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        timing: DramTiming = DramTiming(),
        entries_per_bank: Optional[int] = None,
    ) -> None:
        self.geometry = geometry
        self.trh = trh
        #: Mitigation threshold: halved once for the window reset.
        self.threshold = trh // 2
        act_max = timing.max_activations_per_window()
        self.entries_per_bank = (
            entries_per_bank
            if entries_per_bank is not None
            else graphene_entries_per_bank(trh, act_max)
        )
        self._rows_per_bank = geometry.rows_per_bank
        self._tables = [
            _SpaceSavingTable(self.entries_per_bank)
            for _ in range(geometry.total_banks)
        ]
        self.mitigations = 0
        self.activations = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        self.activations += 1
        table = self._tables[row_id // self._rows_per_bank]
        estimate = table.record(row_id)
        if estimate >= self.threshold:
            # Reset to the current spillover floor, as Graphene does,
            # so repeated hammering keeps re-triggering mitigation.
            table.reset_row(row_id, table.floor())
            self.mitigations += 1
            return TrackerResponse(mitigate_rows=(row_id,))
        return None

    def on_window_reset(self) -> None:
        for table in self._tables:
            table.clear()

    def sram_bytes(self) -> int:
        """4 bytes per CAM entry (tag + count), per Table 1."""
        return 4 * self.entries_per_bank * self.geometry.total_banks


@register_tracker(
    "graphene",
    summary="Misra-Gries frequent-row CAM per bank (MICRO 2020)",
    params={
        "entries_per_bank": Param(
            int, help="table entries per bank (default: the §4.1 sizing)"
        ),
    },
)
def _graphene_from_context(
    ctx: TrackerContext, entries_per_bank: Optional[int] = None
) -> GrapheneTracker:
    return GrapheneTracker(
        ctx.geometry,
        trh=ctx.trh,
        timing=ctx.timing,
        entries_per_bank=entries_per_bank,
    )
