"""Declarative tracker registry and spec-string configuration.

Every tracker studied by the reproduction registers itself here with a
name and a typed parameter schema, and is constructed from a shared
:class:`TrackerContext` — the slice of a system configuration a
tracker is allowed to see (geometry, timing, T_RH, scale, and the
paper's design-point knobs). Anywhere the simulation stack accepts a
tracker name, it equally accepts a **spec string**::

    hydra
    hydra@trh=1000,rcc_kb=28
    graphene@entries_per_bank=4096
    cra@cache_kb=128

Spec strings stay plain picklable strings, so parallel sweeps get
parameter sweeps for free: a spec is the unit of work shipped to pool
workers and hashed into cache keys.

Registering a new tracker takes ~10 lines in its own module::

    @register_tracker(
        "mytracker",
        summary="one-line description for `repro list-trackers`",
        params={"knob": Param(int, default=8, help="what it does")},
    )
    def _mytracker_from_context(ctx: TrackerContext, knob: int = 8):
        return MyTracker(ctx.geometry, trh=ctx.trh, knob=knob)

The parameter ``trh`` is universal: for any tracker,
``name@trh=N`` retargets the RowHammer threshold exactly like
``SystemConfig.with_trh(N)`` (including the Figure-7 structure-scaling
policy), so spec-built trackers match SystemConfig-built ones
bit-for-bit.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.dram.timing import (
    PAPER_GEOMETRY,
    PAPER_TIMING,
    DramGeometry,
    DramTiming,
)
from repro.interfaces import ActivationTracker, NullTracker
from repro.memctrl.base import ENGINES

#: Modules whose import populates the registry (all built-in trackers
#: live in one of these). Imported lazily so the registry module stays
#: a leaf and cannot participate in import cycles.
_BUILTIN_MODULES = ("repro.trackers", "repro.core.hydra")

#: Bytes per RCC entry (valid + tag + SRRIP + counter — Table 4).
RCC_ENTRY_BYTES = 3


# ----------------------------------------------------------------------
# Construction context
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrackerContext:
    """Everything a tracker builder may derive its sizing from.

    Mirrors the tracker-relevant slice of
    :class:`~repro.sim.config.SystemConfig` (which builds one via
    ``tracker_context()``): the scaled geometry/timing actually
    simulated, plus the full-scale design-point parameters the scaling
    policy starts from.
    """

    geometry: DramGeometry = PAPER_GEOMETRY
    timing: DramTiming = PAPER_TIMING
    trh: int = 500
    scale: float = 1.0
    gct_entries_full: int = 32768
    rcc_entries_full: int = 8192
    rcc_ways: int = 16
    tg_fraction: float = 0.80
    structure_scale: int = 1
    cra_cache_full_bytes: int = 64 * 1024
    blast_radius: int = 2

    def with_trh(
        self, trh: int, structure_scale: Optional[int] = None
    ) -> "TrackerContext":
        """Retarget T_RH, scaling structures as Figure 7 does."""
        if structure_scale is None:
            structure_scale = max(1, 500 // trh)
        return replace(self, trh=trh, structure_scale=structure_scale)

    def hydra_config(
        self,
        enable_gct: bool = True,
        enable_rcc: bool = True,
        randomize_mapping: bool = False,
    ):
        """The Hydra design point, scaled with the system.

        This is the single derivation of a
        :class:`~repro.core.config.HydraConfig` from system-level
        parameters; ``SystemConfig.hydra_config`` delegates here.
        """
        # Imported lazily: repro.core imports the trackers package, so
        # a module-level import here would be circular.
        from repro.core.config import HydraConfig

        full = HydraConfig(
            geometry=PAPER_GEOMETRY,
            trh=self.trh,
            gct_entries=self.gct_entries_full * self.structure_scale,
            rcc_entries=self.rcc_entries_full * self.structure_scale,
            rcc_ways=self.rcc_ways,
            tg_fraction=self.tg_fraction,
            blast_radius=self.blast_radius,
            enable_gct=enable_gct,
            enable_rcc=enable_rcc,
            randomize_mapping=randomize_mapping,
        )
        if self.scale == 1.0:
            return full
        return full.scaled(self.scale)

    def cra_cache_bytes(self, full_bytes: Optional[int] = None) -> int:
        """CRA metadata cache, scaled, kept to whole 16-way sets."""
        if full_bytes is None:
            full_bytes = self.cra_cache_full_bytes
        scaled = int(full_bytes * self.scale)
        minimum = 16 * 64  # one 16-way set of 64 B lines
        return max(minimum, scaled - scaled % minimum)


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """One typed, documented tracker parameter.

    ``default=None`` means the value is derived from the
    :class:`TrackerContext` when not given explicitly. ``choices``
    restricts the value to an enumerated set (validated at parse
    time).
    """

    type: type
    default: Any = None
    help: str = ""
    choices: Optional[Tuple[Any, ...]] = None


#: Security classes a tracker may declare. The arena's oracle verdicts
#: are interpreted against this claim:
#:
#: - ``deterministic``: provably mitigates every row at or before the
#:   tracking threshold — the oracle must report zero violations on
#:   *any* sequence, adversarial ones included.
#: - ``probabilistic``: secure with high probability per window
#:   (PARA-style sampling); individual oracle runs may show violations
#:   at very low thresholds without contradicting the design.
#: - ``rate-control``: mitigates by *delaying* activations rather than
#:   refreshing victims, so the activation-count oracle (which models
#:   no timing) cannot certify it; judged on slowdown/storage only.
#: - ``insecure``: known-breakable designs kept as negative controls —
#:   the oracle is expected to find violations.
SECURITY_CLASSES = (
    "deterministic",
    "probabilistic",
    "rate-control",
    "insecure",
)


@dataclass(frozen=True)
class TrackerInfo:
    """One registered tracker: its builder and parameter schema."""

    name: str
    builder: Callable[..., ActivationTracker]
    params: Mapping[str, Param] = field(default_factory=dict)
    summary: str = ""
    #: One of :data:`SECURITY_CLASSES` (the design's *claim*, which
    #: the arena's oracle verdicts are checked against).
    security_class: str = "deterministic"


_REGISTRY: Dict[str, TrackerInfo] = {}

#: Parameters accepted by every tracker, resolved against the context
#: before the tracker-specific builder runs.
UNIVERSAL_PARAMS: Dict[str, Param] = {
    "trh": Param(
        int,
        help="RowHammer threshold (applies SystemConfig.with_trh's policy)",
    ),
    "engine": Param(
        str,
        choices=ENGINES,
        help="memory-controller engine the simulation runs on"
        " (overrides SystemConfig.engine)",
    ),
    "stream_chunk": Param(
        int,
        help="trace-streaming chunk size in requests (overrides"
        " SystemConfig.stream_chunk; 0 = materialize the trace in RAM)",
    ),
}


def register_tracker(
    name: str,
    *,
    params: Optional[Mapping[str, Param]] = None,
    summary: str = "",
    security_class: str = "deterministic",
) -> Callable[[Callable[..., ActivationTracker]], Callable[..., ActivationTracker]]:
    """Class/function decorator adding one tracker to the registry.

    The decorated callable receives a :class:`TrackerContext` plus any
    spec parameters (already coerced to their declared types) as
    keyword arguments, and returns the constructed tracker.
    """
    schema = dict(params or {})
    for reserved in UNIVERSAL_PARAMS:
        if reserved in schema:
            raise ValueError(
                f"parameter {reserved!r} is universal and cannot be redeclared"
            )
    if security_class not in SECURITY_CLASSES:
        raise ValueError(
            f"unknown security class {security_class!r}; expected one of "
            + ", ".join(SECURITY_CLASSES)
        )

    def decorate(builder: Callable[..., ActivationTracker]):
        if name in _REGISTRY:
            raise ValueError(f"tracker {name!r} registered twice")
        _REGISTRY[name] = TrackerInfo(
            name=name,
            builder=builder,
            params=schema,
            summary=summary,
            security_class=security_class,
        )
        return builder

    return decorate


def _ensure_registered() -> None:
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def available_trackers() -> List[str]:
    """Sorted names of every registered tracker."""
    _ensure_registered()
    return sorted(_REGISTRY)


def tracker_info(name: str) -> TrackerInfo:
    """Registry entry for ``name`` (a bare name, not a spec)."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown tracker {name!r}; available: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


# ----------------------------------------------------------------------
# Spec strings
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrackerSpec:
    """A parsed ``name@key=value,...`` spec (params coerced + sorted)."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def canonical(self) -> str:
        """Round-trippable canonical string form of this spec."""
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{key}={_format_value(value)}" for key, value in self.params
        )
        return f"{self.name}@{rendered}"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value) if isinstance(value, float) else str(value)


#: Public aliases: the ``name@key=value,...`` grammar is shared with
#: the attack-program registry (:mod:`repro.attacks.registry`), which
#: reuses these helpers so both spec languages parse and render
#: identically.
format_param_value = _format_value


def parse_param_items(
    spec: str, owner: str, rest: str, schema: Mapping[str, Param]
) -> Dict[str, Any]:
    """Parse the ``key=value,...`` tail of a spec against a schema.

    ``owner`` names the registry entry (for error messages). Raises
    ``ValueError`` on malformed items, unknown or duplicate keys, and
    type/choice mismatches — spec errors must be self-explanatory
    because specs travel through CLIs, environment files, and sweep
    grids.
    """
    params: Dict[str, Any] = {}
    for item in rest.split(","):
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"malformed parameter {item.strip()!r} in spec {spec!r}"
                " (expected key=value)"
            )
        if key not in schema:
            raise ValueError(
                f"{owner!r} has no parameter {key!r}; parameters: "
                + ", ".join(sorted(schema))
            )
        if key in params:
            raise ValueError(f"duplicate parameter {key!r} in spec {spec!r}")
        params[key] = _coerce(spec, key, schema[key], raw)
    return params


def _coerce(spec: str, name: str, param: Param, raw: str) -> Any:
    raw = raw.strip()
    if param.type is bool:
        lowered = raw.lower()
        if lowered in ("true", "yes", "on", "1"):
            return True
        if lowered in ("false", "no", "off", "0"):
            return False
        raise ValueError(
            f"bad value for {name!r} in spec {spec!r}: {raw!r} is not a"
            " boolean (use true/false)"
        )
    try:
        value = param.type(raw)
    except ValueError:
        raise ValueError(
            f"bad value for {name!r} in spec {spec!r}: {raw!r} is not"
            f" {param.type.__name__}"
        ) from None
    if param.choices is not None and value not in param.choices:
        raise ValueError(
            f"bad value for {name!r} in spec {spec!r}: {raw!r} is not one"
            " of " + ", ".join(str(choice) for choice in param.choices)
        )
    return value


def parse_spec(spec: Union[str, TrackerSpec]) -> TrackerSpec:
    """Parse and validate a spec string against the registry.

    Raises ``ValueError`` naming the unknown tracker (with the list of
    registered ones) or the unknown/ill-typed parameter (with the
    tracker's schema) — spec errors must be self-explanatory because
    specs travel through CLIs, environment files, and sweep grids.
    """
    if isinstance(spec, TrackerSpec):
        return spec
    name, _, rest = spec.partition("@")
    name = name.strip()
    info = tracker_info(name)
    if not rest.strip():
        if "@" in spec:
            raise ValueError(f"empty parameter list in spec {spec!r}")
        return TrackerSpec(name=name)
    schema = {**UNIVERSAL_PARAMS, **info.params}
    params = parse_param_items(spec, f"tracker {name}", rest, schema)
    return TrackerSpec(name=name, params=tuple(sorted(params.items())))


def canonical_spec(spec: Union[str, TrackerSpec]) -> str:
    """Normalized string form (stable across spacing/ordering)."""
    return parse_spec(spec).canonical()


def spec_engine(spec: Union[str, TrackerSpec]) -> Optional[str]:
    """The ``engine=`` override a spec carries, if any.

    ``engine`` is a universal parameter but configures the *simulation*
    (which memory-controller engine runs the trace) rather than the
    tracker, so the simulator extracts it here and ``build_tracker``
    ignores it.
    """
    return dict(parse_spec(spec).params).get("engine")


def spec_stream_chunk(spec: Union[str, TrackerSpec]) -> Optional[int]:
    """The ``stream_chunk=`` override a spec carries, if any.

    Like ``engine``, ``stream_chunk`` is a universal parameter that
    configures the *simulation* (how the trace is fed to the engine)
    rather than the tracker, so the simulator extracts it here and
    ``build_tracker`` ignores it.
    """
    return dict(parse_spec(spec).params).get("stream_chunk")


def build_tracker(
    spec: Union[str, TrackerSpec], context: TrackerContext
) -> ActivationTracker:
    """Construct the tracker a spec describes for the given context."""
    parsed = parse_spec(spec)
    info = tracker_info(parsed.name)
    params = dict(parsed.params)
    trh = params.pop("trh", None)
    if trh is not None:
        context = context.with_trh(trh)
    params.pop("engine", None)  # simulation-level; see spec_engine()
    params.pop("stream_chunk", None)  # simulation-level; spec_stream_chunk()
    return info.builder(context, **params)


@register_tracker(
    "baseline",
    summary="no tracking, no mitigation (insecure)",
    security_class="insecure",
)
def _baseline_from_context(ctx: TrackerContext) -> NullTracker:
    return NullTracker()
