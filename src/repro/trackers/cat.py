"""CAT: Counter-based Adaptive Tree tracking (Seyedzadeh et al., ISCA 2018).

A per-bank binary tree over the row-address space. Tracking starts
coarse — one counter covering many rows — and *adapts*: when a node's
counter crosses its split threshold, the node is split and its two
children each cover half the range, drawing fresh counters from a
finite pool. Hot regions thus earn fine-grained (eventually per-row)
counters while cold regions stay cheap.

Soundness comes from inheritance: a child starts with its parent's
count, so every node's counter is always >= the true activation count
of every row it covers (the same over-approximation argument as
Hydra's GCT, applied hierarchically). Mitigation fires when a
*single-row* leaf reaches T_RH/2; multi-row leaves split well before
that (at ``split_fraction`` of the mitigation threshold) so precision
arrives before the threshold does. If the counter pool is exhausted, a
saturated multi-row leaf conservatively mitigates its entire range —
the securely-degraded mode that CAT's sizing (Table 1: ~1.5 MB/rank at
T_RH=500) is provisioned to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.trackers.base import ActivationTracker, TrackerResponse
from repro.trackers.registry import Param, TrackerContext, register_tracker


@dataclass
class _Node:
    """One tree node covering rows [lo, hi) of a bank."""

    lo: int
    hi: int
    count: int = 0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def span(self) -> int:
        return self.hi - self.lo


class _BankTree:
    """CAT state for one bank."""

    def __init__(self, rows: int, counter_budget: int) -> None:
        self.root = _Node(0, rows)
        self.counters_used = 1
        self.counter_budget = max(1, counter_budget)

    def leaf_for(self, row: int) -> _Node:
        node = self.root
        while not node.is_leaf:
            mid = (node.lo + node.hi) // 2
            node = node.left if row < mid else node.right
        return node

    def try_split(self, node: _Node) -> bool:
        if node.span <= 1 or self.counters_used + 2 > self.counter_budget:
            return False
        mid = (node.lo + node.hi) // 2
        # Children inherit the parent's count: conservative for every
        # row either child covers.
        node.left = _Node(node.lo, mid, node.count)
        node.right = _Node(mid, node.hi, node.count)
        self.counters_used += 2
        return True

    def reset(self) -> None:
        rows = self.root.hi
        self.root = _Node(0, rows)
        self.counters_used = 1


class CatTracker(ActivationTracker):
    """Adaptive-tree tracker with victim-refresh mitigation."""

    name = "cat"

    def __init__(
        self,
        geometry: DramGeometry,
        trh: int = 500,
        timing: DramTiming = DramTiming(),
        split_fraction: float = 0.25,
        counters_per_bank: Optional[int] = None,
    ) -> None:
        if not 0.0 < split_fraction < 1.0:
            raise ValueError("split_fraction must be in (0, 1)")
        self.geometry = geometry
        self.trh = trh
        self.threshold = trh // 2
        self.split_threshold = max(1, int(self.threshold * split_fraction))
        if counters_per_bank is None:
            # Sized per the Table 1 calibration: ~4 bytes per counter.
            from repro.trackers.storage import cat_bytes_per_rank

            per_rank = cat_bytes_per_rank(trh) // 4
            counters_per_bank = max(64, per_rank // geometry.banks_per_rank)
        self._rows_per_bank = geometry.rows_per_bank
        self._trees = [
            _BankTree(geometry.rows_per_bank, counters_per_bank)
            for _ in range(geometry.total_banks)
        ]
        self.mitigations = 0
        self.range_mitigations = 0
        self.splits = 0

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        bank = row_id // self._rows_per_bank
        local = row_id % self._rows_per_bank
        tree = self._trees[bank]
        leaf = tree.leaf_for(local)
        leaf.count += 1
        # Adapt: refine hot multi-row leaves before they get dangerous.
        while (
            leaf.span > 1
            and leaf.count >= self.split_threshold
            and tree.try_split(leaf)
        ):
            self.splits += 1
            mid = (leaf.lo + leaf.hi) // 2
            leaf = leaf.left if local < mid else leaf.right
        if leaf.count < self.threshold:
            return None
        if leaf.span == 1:
            leaf.count = 0
            self.mitigations += 1
            return TrackerResponse(
                mitigate_rows=(bank * self._rows_per_bank + leaf.lo,)
            )
        # Counter pool exhausted: the leaf cannot be refined, so it
        # degrades securely to mitigate-on-every-activation — the
        # counter clamps at the threshold and each further activation
        # of any row the leaf covers refreshes that row's neighbours
        # immediately. Sound (no row accumulates unmitigated count)
        # but expensive, which is exactly why CAT is provisioned with
        # the Table 1 counter budget.
        leaf.count = self.threshold
        self.range_mitigations += 1
        self.mitigations += 1
        return TrackerResponse(mitigate_rows=(row_id,))

    def on_window_reset(self) -> None:
        for tree in self._trees:
            tree.reset()

    def sram_bytes(self) -> int:
        budget = self._trees[0].counter_budget
        return 4 * budget * self.geometry.total_banks

    def counters_in_use(self) -> int:
        return sum(tree.counters_used for tree in self._trees)


@register_tracker(
    "cat",
    summary="adaptive counter trees splitting hot ranges (CAT)",
    params={
        "split_fraction": Param(
            float, 0.25, "leaf-split threshold as a fraction of T_H"
        ),
        "counters_per_bank": Param(
            int, help="tree counter budget per bank (default: Table 1)"
        ),
    },
)
def _cat_from_context(
    ctx: TrackerContext,
    split_fraction: float = 0.25,
    counters_per_bank: Optional[int] = None,
) -> CatTracker:
    return CatTracker(
        ctx.geometry,
        trh=ctx.trh,
        timing=ctx.timing,
        split_fraction=split_fraction,
        counters_per_bank=counters_per_bank,
    )
