"""Baseline RowHammer trackers and storage models.

Functional trackers: Graphene (Misra-Gries CAM), CRA (DRAM counters +
metadata cache), OCPR (exact per-row), PARA (probabilistic), D-CBF
(dual counting Bloom filters), plus the post-Hydra successors raced in
the arena: CoMeT (count-min sketch), MINT (in-DRAM random sampling),
PTMP (per-bank probabilistic-insertion FIFOs), and START (LLC-resident
escalating counters). Storage-only analytic
models for TWiCE/CAT live in :mod:`repro.trackers.storage` alongside
the Table 1 and Table 5 generators.
"""

from repro.trackers.base import (
    ActivationTracker,
    MetaAccess,
    NullTracker,
    TrackerResponse,
    merge_responses,
)
from repro.trackers.cat import CatTracker
from repro.trackers.comet import CometTracker, comet_counters_per_hash
from repro.trackers.cra import CraTracker, LineMetadataCache
from repro.trackers.dcbf import CountingBloomFilter, DcbfTracker
from repro.trackers.graphene import GrapheneTracker, graphene_entries_per_bank
from repro.trackers.insecure import MrlocTracker, ProhitTracker
from repro.trackers.mint import MintTracker, mint_interval_slots
from repro.trackers.mithril import MithrilTracker
from repro.trackers.ocpr import OcprTracker
from repro.trackers.para import ParaTracker, para_probability
from repro.trackers.ptmp import PtmpTracker
from repro.trackers.registry import (
    SECURITY_CLASSES,
    Param,
    TrackerContext,
    TrackerInfo,
    TrackerSpec,
    available_trackers,
    build_tracker,
    canonical_spec,
    parse_spec,
    register_tracker,
    tracker_info,
)
from repro.trackers.start import StartTracker, start_lines_per_bank
from repro.trackers.twice import TwiceTracker
from repro.trackers.storage import (
    RANK_GEOMETRY,
    StorageRow,
    storage_table,
    total_sram_table,
)

__all__ = [
    "ActivationTracker",
    "CatTracker",
    "CometTracker",
    "CountingBloomFilter",
    "CraTracker",
    "DcbfTracker",
    "GrapheneTracker",
    "LineMetadataCache",
    "MetaAccess",
    "MintTracker",
    "MithrilTracker",
    "MrlocTracker",
    "NullTracker",
    "Param",
    "ProhitTracker",
    "OcprTracker",
    "ParaTracker",
    "PtmpTracker",
    "RANK_GEOMETRY",
    "SECURITY_CLASSES",
    "StartTracker",
    "StorageRow",
    "TrackerContext",
    "TrackerInfo",
    "TrackerResponse",
    "TrackerSpec",
    "TwiceTracker",
    "available_trackers",
    "build_tracker",
    "canonical_spec",
    "comet_counters_per_hash",
    "graphene_entries_per_bank",
    "merge_responses",
    "mint_interval_slots",
    "para_probability",
    "parse_spec",
    "start_lines_per_bank",
    "register_tracker",
    "storage_table",
    "total_sram_table",
    "tracker_info",
]
