"""Common interface for row-activation trackers.

Every RowHammer defense studied in the paper (Hydra, Graphene, CRA,
OCPR, PARA, D-CBF) is, at its core, a *tracker*: a structure the memory
controller consults on every row activation, which occasionally asks
for (a) extra DRAM accesses to maintain metadata stored in memory and
(b) mitigations (victim refreshes) for rows whose count reached the
tracking threshold.

The interface is deliberately minimal and allocation-light:
``on_activation`` returns ``None`` on the fast path (no metadata
traffic, no mitigation), which is the overwhelmingly common case and
keeps the event loop cheap.
"""

from __future__ import annotations

import abc
from typing import Dict, NamedTuple, Optional, Sequence, Tuple

import numpy as np


class MetaAccess(NamedTuple):
    """One metadata access to the DRAM array requested by a tracker.

    ``row_id`` is the global id of the DRAM row that stores the
    metadata, ``n_lines`` how many 64 B lines are moved, and
    ``is_write`` the direction.
    """

    row_id: int
    n_lines: int
    is_write: bool


class TrackerResponse(NamedTuple):
    """Slow-path outcome of one activation update.

    ``mitigate_rows`` lists aggressor rows whose neighbours must be
    refreshed *now*; ``meta_accesses`` lists DRAM metadata traffic the
    controller must perform.
    """

    mitigate_rows: Tuple[int, ...] = ()
    meta_accesses: Tuple[MetaAccess, ...] = ()
    #: Activation delay in ns, for rate-control mitigations (D-CBF).
    delay_ns: float = 0.0


class ActivationTracker(abc.ABC):
    """Abstract tracker consulted by the memory controller on each ACT."""

    #: Human-readable identifier used in reports and sweep results.
    name: str = "tracker"

    @abc.abstractmethod
    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        """Record one activation of ``row_id``.

        Returns ``None`` when nothing beyond the internal update is
        needed, otherwise a :class:`TrackerResponse`. Activations
        caused by victim refresh are fed back through this same method
        (paper §5.2.1), so trackers must tolerate re-entrant patterns.
        """

    @abc.abstractmethod
    def on_window_reset(self) -> None:
        """Reset per-window state (called every tracking window)."""

    @abc.abstractmethod
    def sram_bytes(self) -> int:
        """SRAM/CAM storage the tracker needs, in bytes (full scale)."""

    def dram_reserved_bytes(self) -> int:
        """DRAM capacity reserved for in-memory metadata (default none)."""
        return 0

    def mitigation_count(self) -> int:
        """Total mitigations issued so far (for reports)."""
        return getattr(self, "mitigations", 0)

    def extra_stats(self) -> Dict[str, object]:
        """Tracker-specific result extras (JSON-serializable).

        Whatever a tracker returns here lands verbatim in
        ``RunResult.extra``, so the simulator needs no per-tracker
        special cases (default: nothing).
        """
        return {}

    # -- batch hook (engine=vector; opt-in) ----------------------------

    def apply_batch(self, rows, counts=None, commit: bool = True):
        """Classify (and optionally commit) a batch of activations.

        The vector engine hands over a numpy ``int64`` array of
        activated row ids in program order (``rows`` may contain
        duplicates; ``counts``, when given, holds per-entry
        multiplicities and defaults to one each). The tracker returns a
        boolean *escape mask* aligned with ``rows``: ``True`` marks
        activations whose update cannot be applied out of order — a
        mitigation would fire, metadata traffic is needed, a structure
        transition (e.g. Hydra's GCT→RCT spill) would occur — and must
        go through the scalar :meth:`on_activation` path instead.

        Contract:

        - ``commit=False`` never mutates tracker state (pure
          classification);
        - ``commit=True`` with an all-``False`` mask applies every
          update before returning (order-independent by construction,
          so the resulting state is bit-identical to scalar replay of
          the batch);
        - ``commit=True`` with any ``True`` in the mask applies
          *nothing* — the engine shrinks the batch and retries;
        - returning ``None`` opts out of batching entirely; the engine
          falls back to the scalar path. The default does exactly
          that, so every tracker runs unchanged under ``engine=vector``
          until it implements this hook. Whether ``None`` is returned
          must depend only on configuration, never on the batch
          contents — the engine probes once per run.
        """
        return None

    # -- observability (repro.obs; all optional to implement) ----------

    def obs_snapshot(self) -> Dict[str, float]:
        """Cumulative counters for the per-window series recorder.

        Called at every tracking-window boundary of an *observed* run
        (never otherwise), immediately before ``on_window_reset``, so
        window-local state is still intact. Only monotonically
        increasing counters belong here — the recorder differences
        consecutive snapshots, and a value that resets each window
        would difference to garbage. The default exposes the one
        counter every tracker has.
        """
        return {"tracker_mitigations": float(self.mitigation_count())}

    def publish_metrics(self, registry) -> None:
        """End-of-run publication into a ``MetricsRegistry``.

        Only invoked on observed runs. Subclasses should call
        ``super().publish_metrics(registry)`` and add their own
        instruments.
        """
        registry.counter(
            "tracker_mitigations", "total mitigations issued by the tracker"
        ).inc(self.mitigation_count())
        registry.gauge(
            "tracker_sram_bytes", "full-scale SRAM/CAM footprint"
        ).set(float(self.sram_bytes()))


class NullTracker(ActivationTracker):
    """The insecure baseline: no tracking, no mitigation."""

    name = "baseline"

    def on_activation(self, row_id: int) -> Optional[TrackerResponse]:
        return None

    def on_window_reset(self) -> None:
        return None

    def sram_bytes(self) -> int:
        return 0

    def apply_batch(self, rows, counts=None, commit: bool = True):
        """Everything batches trivially: no state, no escapes."""
        return np.zeros(len(rows), dtype=bool)


def merge_responses(
    responses: Sequence[TrackerResponse],
) -> Optional[TrackerResponse]:
    """Combine several slow-path responses into one (helper for tests)."""
    mitigate: Tuple[int, ...] = ()
    meta: Tuple[MetaAccess, ...] = ()
    delay = 0.0
    for response in responses:
        mitigate += response.mitigate_rows
        meta += response.meta_accesses
        delay += response.delay_ns
    if not mitigate and not meta and delay == 0.0:
        return None
    return TrackerResponse(
        mitigate_rows=mitigate, meta_accesses=meta, delay_ns=delay
    )
