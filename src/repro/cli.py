"""Command-line front-end: ``hydra-sim``.

Subcommands:

- ``run``           — simulate one workload under one tracker and
  print a result summary (optionally against the baseline).
- ``sweep``         — run a tracker across all 36 workloads and print
  per-workload normalized performance plus suite geomeans.
- ``list-trackers`` — print the tracker registry: every registered
  tracker with its tunable parameters.
- ``storage``       — print the Table 1/4/5 storage report.
- ``security``      — run the attack-pattern security verification.
- ``arena``         — race every registered tracker down a T_RH
  ladder and print the slowdown / storage / security Pareto report.
- ``list-attacks``  — print the attack-program registry.
- ``fuzz``          — drive every tracker with seeded random hammer
  programs and judge the outcomes (see ``repro.attacks.fuzz``).
- ``trace``         — inspect / convert / head / record trace files
  (chunked directories, ``.npz``, external text) without loading
  them whole.

Everywhere a tracker is named (``--tracker``), a parameterized spec
string is accepted too: ``hydra@trh=1000,rcc_kb=28``,
``cra@cache_kb=128``, ``para@probability=0.01``, ...

Attacks use the same spec grammar (``--attack
many_sided@aggs=18,rounds=4096``): ``run --attack`` injects the
compiled program alongside the workload as attacker traffic, and
``arena --attack`` replaces the oracle battery with the named
programs (battery aliases ``single``/``many``/``random`` still
work there).

``--engine {fast,queued,vector}`` selects the memory-controller
engine for ``run``/``sweep``/``experiment``/``profile`` (default: the
fast in-order model; ``vector`` is the numpy window-batched model,
bit-identical to fast — DESIGN.md §14); ``engine=`` inside a spec
string overrides it per tracker column
(``--tracker hydra@engine=queued``).

``--stream-chunk N`` streams traces through on-disk chunks of N
requests instead of materializing them in RAM (bit-identical results,
bounded memory; ``stream_chunk=`` inside a spec string overrides per
column), and ``run --trace-file PATH`` replays a recorded trace —
chunked directory, ``.npz``, or external text — through the same
simulation path (DESIGN.md §13).

Observability (see ``repro.obs``): ``run --observe`` records a
per-window metric series during the simulation and prints it;
``sweep --manifest FILE`` appends a JSON-lines provenance record per
grid cell; ``report --manifest FILE`` summarizes such a manifest.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import HydraConfig, HydraTracker, hydra_storage
from repro.analysis.security import verify_tracker
from repro.memctrl import ENGINES
from repro.sim import ExperimentRunner, SystemConfig
from repro.trackers.storage import storage_table, total_sram_table
from repro.workloads import all_names, attacks


def _jobs_type(value: str) -> int:
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if count < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one per CPU)")
    return count


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale-denominator",
        type=int,
        default=32,
        help="simulate 1/N of the full system (default 32; 1 = full)",
    )
    parser.add_argument("--trh", type=int, default=500, help="RowHammer threshold")
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="fast",
        help="memory-controller engine: 'fast' (in-order resolution, the"
        " sweep default), 'queued' (FR-FCFS + write-queue drain), or"
        " 'vector' (numpy window-batched, bit-identical to fast);"
        " per-spec override: --tracker 'hydra@engine=queued'",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help="simulate up to N grid cells in parallel (0 = one per CPU; "
        "default: $REPRO_JOBS, else serial)",
    )
    parser.add_argument(
        "--stream-chunk",
        type=int,
        default=0,
        metavar="N",
        help="stream traces through on-disk chunks of N requests"
        " (bounded memory; 0 = materialize in RAM, the default);"
        " per-spec override: --tracker 'hydra@stream_chunk=65536'",
    )


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(
        scale=1.0 / args.scale_denominator,
        trh=args.trh,
        engine=getattr(args, "engine", "fast"),
        stream_chunk=getattr(args, "stream_chunk", 0),
        trace_file=getattr(args, "trace_file", None),
    )


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        _config(args),
        jobs=args.jobs,
        manifest_path=getattr(args, "manifest", None),
    )


#: Per-window series columns worth a terminal column, in print order
#: (only the ones the run's tracker actually reported are shown).
_SERIES_COLUMNS = (
    ("hydra_gct_only", "gct_only"),
    ("hydra_rcc_hits", "rcc_hit"),
    ("hydra_rct_accesses", "rct_acc"),
    ("hydra_group_inits", "grp_init"),
    ("cra_cache_misses", "c$miss"),
    ("tracker_mitigations", "mitig"),
    ("mc_meta_accesses", "meta"),
    ("mc_victim_refreshes", "refresh"),
)


def _print_observability(result, series_out: Optional[str]) -> None:
    """Render an observed run's per-window series (and regenerated
    Figure 6 distribution, when the tracker reports Hydra counters)."""
    obs = result.observability
    series = obs.series
    totals = series.totals()
    columns = [
        (key, label) for key, label in _SERIES_COLUMNS if key in totals
    ]
    print(
        f"\nper-window series ({series.period_ns / 1e6:.3f} ms windows,"
        f" {len(series)} windows):"
    )
    header = f"{'win':>4} {'start_ms':>9}" + "".join(
        f" {label:>9}" for _, label in columns
    )
    print(header)
    for sample in series:
        row = f"{sample.index:>4} {sample.start_ns / 1e6:>9.3f}"
        for key, _ in columns:
            row += f" {sample.get(key):>9.0f}"
        print(row)
    if "hydra_gct_only" in totals:
        regenerated = series.hydra_distribution()
        print(
            "fig6 distribution (regenerated from series): "
            + ", ".join(
                f"{k}={100 * v:.2f}%" for k, v in regenerated.items()
            )
        )
    if series_out:
        import json
        from pathlib import Path

        Path(series_out).write_text(
            json.dumps(obs.to_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {series_out}")


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _runner(args)
    if args.attack:
        # Attack runs mix a compiled program into the workload trace;
        # the mixed trace is unique to this invocation, so simulate
        # directly (no cache) for both columns.
        from repro.attacks import AttackContext, compile_attack
        from repro.sim import simulate
        from repro.workloads import attack_alongside, materialize

        context = AttackContext.from_system(runner.config)
        compiled = compile_attack(args.attack, context)
        # Attack mixing sorts the merged arrival schedule, which needs
        # the whole victim trace; chunked sources are materialized for
        # this path only.
        trace = attack_alongside(
            materialize(runner.trace_for(args.workload)),
            compiled.rows(),
            args.attack_rate,
            name=f"{args.workload}+{compiled.name}",
        )
        result = simulate(
            trace, runner.config, args.tracker, observe=args.observe
        )
        base = simulate(trace, runner.config, "baseline")
        print(
            f"attack            : {compiled.name} "
            f"({compiled.activations} activations at"
            f" {args.attack_rate:g}/ns)"
        )
    elif args.observe:
        # Observability lives on the live RunResult only (never in the
        # cache), so an observed run always simulates.
        from repro.sim import simulate

        trace = runner.trace_for(args.workload)
        result = simulate(trace, runner.config, args.tracker, observe=True)
        base = runner.run("baseline", args.workload)
    else:
        result = runner.run(args.tracker, args.workload)
        base = runner.run("baseline", args.workload)
    slowdown = 100.0 * (result.end_time_ns / base.end_time_ns - 1.0)
    print(f"workload          : {result.workload}")
    print(f"tracker           : {result.tracker}")
    print(f"engine            : {result.engine}")
    print(f"execution time    : {result.end_time_ns / 1e6:.3f} ms "
          f"(baseline {base.end_time_ns / 1e6:.3f} ms, {slowdown:+.2f}%)")
    print(f"activations       : {result.activations}")
    print(f"metadata accesses : {result.meta_accesses}")
    print(f"mitigations       : {result.mitigations}")
    print(f"victim refreshes  : {result.victim_refreshes}")
    print(f"bus utilization   : {result.bus_utilization:.1%}")
    print(f"DRAM power        : {result.dram_power_w:.2f} W")
    for key, value in result.extra.items():
        print(f"{key:<18}: {value}")
    if result.observability is not None:
        _print_observability(result, args.series_out)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro import api
    from repro.obs.manifest import resolve_manifest_path
    from repro.sim import default_cache_dir

    comparisons = api.compare(
        args.tracker,
        config=_config(args),
        jobs=args.jobs,
        manifest_path=getattr(args, "manifest", None),
    )
    print(f"{'workload':<12} {'norm. perf':>10}")
    for comp in comparisons:
        print(f"{comp.workload:<12} {comp.normalized_performance:>10.4f}")
    print("-" * 23)
    for suite, mean in comparisons.suite_geomeans().items():
        print(f"{suite:<12} {mean:>10.4f}")
    from repro.analysis.charts import bar_chart

    print("\nslowdown by suite:")
    print(bar_chart(comparisons.slowdowns(), width=40, unit="%"))
    manifest = resolve_manifest_path(
        getattr(args, "manifest", None), default_cache_dir()
    )
    if manifest is not None:
        print(f"\nmanifest appended: {manifest}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import SweepBroker
    from repro.service.http import serve_forever

    broker = SweepBroker(
        state_dir=Path(args.state_dir) if args.state_dir else None,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        pool=args.pool,
        workers=args.workers,
    )
    serve_forever(broker, host=args.host, port=args.port)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro import api

    grid = api.GridSpec.coerce(
        args.trackers.split(","),
        args.workloads.split(",") if args.workloads else None,
        config=_config(args),
    )
    handle = api.sweep(grid, service=f"{args.host}:{args.port}")
    status = handle.status()
    print(
        f"submitted {handle.job_id}"
        f" ({status.total_cells} cells, grid {status.grid_key})"
    )
    if args.detach:
        return 0
    for event in handle.events():
        print(
            f"  {event.get('spec', '?'):<24}"
            f" {event.get('workload', '?'):<12}"
            f" {'cache' if event.get('from_cache') else 'ran':<5}"
            f" {event.get('wall_time_s', 0.0):>8.3f}s"
        )
    result = handle.result()
    final = handle.status()
    print(f"job {handle.job_id}: {final.state}"
          f" ({final.cache_hits} cache hits, {final.retries} retries)")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(result.to_payload(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json_out}")
    else:
        print(result.to_table())
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port)
    statuses = client.jobs()
    if not statuses:
        print("no jobs")
        return 0
    print(
        f"{'job':<20} {'state':<10} {'cells':>11}"
        f" {'hits':>5} {'retries':>7}  error"
    )
    for st in statuses:
        cells = f"{st.completed_cells}/{st.total_cells}"
        print(
            f"{st.job_id:<20} {st.state:<10} {cells:>11}"
            f" {st.cache_hits:>5} {st.retries:>7}  {st.error}"
        )
    return 0


def _cmd_list_trackers(args: argparse.Namespace) -> int:
    from repro.trackers.registry import UNIVERSAL_PARAMS, available_trackers, tracker_info

    print("tracker spec grammar: name | name@key=value[,key=value...]")
    universals = ", ".join(
        f"{key} ({param.type.__name__})"
        for key, param in sorted(UNIVERSAL_PARAMS.items())
    )
    print(f"universal parameters: {universals}")
    print()
    for name in available_trackers():
        info = tracker_info(name)
        print(f"{name:<18} {info.summary}")
        for key, param in sorted(info.params.items()):
            default = "from config" if param.default is None else param.default
            detail = f" — {param.help}" if param.help else ""
            print(
                f"    {key:<20} {param.type.__name__:<6} "
                f"default={default}{detail}"
            )
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    print("Table 1 — per-rank SRAM (KB):")
    for row in storage_table():
        cells = ", ".join(
            f"{name}={bytes_ / 1024:.0f}" for name, bytes_ in row.bytes_by_scheme.items()
        )
        print(f"  T_RH={row.trh:<6} {cells}")
    print("\nTable 4 — Hydra breakdown:")
    for name, value in hydra_storage(HydraConfig(trh=args.trh)).rows().items():
        print(f"  {name:<8} {value}")
    print("\nTable 5 — total SRAM, 32GB system (KB):")
    for name, cols in total_sram_table(trh=args.trh).items():
        print(
            f"  {name:<10} DDR4={cols['ddr4'] / 1024:.1f}  DDR5={cols['ddr5'] / 1024:.1f}"
        )
    return 0


def _cmd_security(args: argparse.Namespace) -> int:
    config = _config(args)
    hydra_cfg = config.hydra_config()
    geometry = hydra_cfg.geometry
    threshold = hydra_cfg.th
    patterns = {
        "single-sided": attacks.single_sided(1000, 20 * threshold),
        "double-sided": attacks.double_sided(2000, 10 * threshold),
        "many-sided": attacks.many_sided(list(range(3000, 3024)), 2 * threshold),
        "half-double": attacks.half_double(4000, 20 * threshold),
        "thrash": attacks.thrash_then_hammer(
            5000, list(range(6000, 6512)), 4 * threshold, interleave=8
        ),
        "rct-region": attacks.rct_region_attack(geometry, 10 * threshold),
    }
    failures = 0
    for name, sequence in patterns.items():
        tracker = HydraTracker(hydra_cfg)
        report = verify_tracker(tracker, geometry, sequence, threshold)
        status = "SECURE" if report.secure else "VIOLATED"
        if not report.secure:
            failures += 1
        print(
            f"{name:<14} {status:<9} activations={report.activations:>8} "
            f"mitigations={report.mitigations:>6} "
            f"max-unmitigated={report.max_unmitigated_count}/{threshold}"
        )
    return 1 if failures else 0


def _csv_ints(value: str) -> List[int]:
    try:
        return [int(item) for item in value.split(",") if item.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}"
        )


def _cmd_arena(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.arena import (
        DEFAULT_ARENA_WORKLOADS,
        DEFAULT_TRH_LADDER,
        ORACLE_SEQUENCES,
        run_arena,
    )
    from repro.analysis.report import render_arena

    config = _config(args)
    report = run_arena(
        config,
        trackers=args.trackers.split(",") if args.trackers else None,
        trh_ladder=args.trh_ladder or DEFAULT_TRH_LADDER,
        workloads=(
            args.workloads.split(",")
            if args.workloads
            else DEFAULT_ARENA_WORKLOADS
        ),
        sequences=tuple(args.attack) if args.attack else ORACLE_SEQUENCES,
        jobs=args.jobs,
        manifest_path=args.manifest,
    )
    print(render_arena(report))
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json_out}")
    return 0


def _cmd_list_attacks(args: argparse.Namespace) -> int:
    from repro.attacks import attack_info, available_attacks

    print("attack spec grammar: name | name@key=value[,key=value...]")
    print(
        "defaults marked 'from context' are derived from the geometry"
        " and T_RH under test"
    )
    print()
    for name in available_attacks():
        info = attack_info(name)
        print(f"{name:<14} {info.summary}")
        for key, param in sorted(info.params.items()):
            default = (
                "from context" if param.default is None else param.default
            )
            detail = f" — {param.help}" if param.help else ""
            print(
                f"    {key:<16} {param.type.__name__:<6} "
                f"default={default}{detail}"
            )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.attacks.fuzz import (
        DEFAULT_ACT_BUDGET,
        DEFAULT_CORPUS_SEED,
        run_fuzz,
    )

    config = _config(args)
    report = run_fuzz(
        config,
        trackers=args.trackers.split(",") if args.trackers else None,
        programs=args.programs,
        corpus_seed=(
            args.corpus_seed
            if args.corpus_seed is not None
            else DEFAULT_CORPUS_SEED
        ),
        act_budget=(
            args.act_budget
            if args.act_budget is not None
            else DEFAULT_ACT_BUDGET
        ),
        jobs=args.jobs,
        manifest_path=args.manifest,
    )
    print(
        f"fuzzed {len(report.trackers)} trackers x {report.programs}"
        f" programs (corpus seed {report.corpus_seed:#x},"
        f" T_RH={report.trh})"
    )
    for spec, counts in report.verdict_counts().items():
        rendered = ", ".join(
            f"{verdict}: {count}" for verdict, count in sorted(counts.items())
        )
        print(f"  {spec:<18} {rendered}")
    for outcome in report.flagged:
        print(
            f"  FLAGGED {outcome.spec} on {outcome.program}"
            f" (seed {outcome.program_seed:#x}):"
            f" {outcome.violations} violations,"
            f" max unmitigated {outcome.max_unmitigated}"
        )
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json_out}")
    return 1 if report.flagged else 0


def _open_source(path: str, chunk: int):
    from repro.workloads.streaming import open_trace_source

    return open_trace_source(path, chunk_requests=chunk)


def _write_source(source, destination: str, chunk: int) -> str:
    """Write a trace source to ``destination`` in the format its
    suffix implies; returns a human summary of what was written."""
    from pathlib import Path

    from repro.workloads.streaming import (
        ChunkedTrace,
        TEXT_SUFFIXES,
        materialize,
        write_external_trace,
    )

    dst = Path(destination)
    if dst.suffix == ".npz":
        trace = materialize(source)
        trace.save(str(dst))
        return f"wrote {dst} (npz, {len(trace)} requests)"
    if dst.suffix in TEXT_SUFFIXES:
        count = write_external_trace(source, dst)
        return f"wrote {dst} (external text, {count} requests)"
    chunked = ChunkedTrace.write(
        source.chunks(), dst, name=source.name, chunk_requests=chunk
    )
    return (
        f"wrote {dst}/ (chunked, {len(chunked)} requests in"
        f" {chunked.n_segments} segments of {chunk})"
    )


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    from repro.workloads.streaming import (
        characterize_chunks,
        source_duration_ns,
        source_request_count,
    )

    source = _open_source(args.path, args.chunk)
    stats = characterize_chunks(source, hot_threshold=args.hot_threshold)
    print(f"trace             : {source.name}")
    print(f"requests          : {source_request_count(source)}")
    print(f"duration (intent) : {source_duration_ns(source) / 1e6:.3f} ms")
    print(f"activations       : {stats.activations}")
    print(f"unique rows       : {stats.unique_rows}")
    print(f"ACT>{args.hot_threshold} rows      : {stats.act250_rows}")
    print(f"ACTs per row      : {stats.acts_per_row:.2f}")
    print(f"line transfers    : {stats.line_transfers}")
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    source = _open_source(args.source, args.chunk)
    print(_write_source(source, args.destination, args.chunk))
    return 0


def _cmd_trace_head(args: argparse.Namespace) -> int:
    from itertools import islice

    source = _open_source(args.path, args.chunk)
    print(f"# {source.name}")
    print("# <gap_ns> <R|W> <row_id> <n_lines>")
    shown = 0
    for gap, row, n_lines, is_write in islice(
        iter(source), args.start, args.start + args.count
    ):
        print(f"{gap!r} {'W' if is_write else 'R'} {row} {n_lines}")
        shown += 1
    if not shown:
        print(f"# (no requests at offset {args.start})")
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.sim.simulator import trace_for_workload

    config = _config(args).with_stream_chunk(args.chunk)
    source = trace_for_workload(config, args.workload)
    print(_write_source(source, args.destination, args.chunk))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.sim.config import JOBS_ENV_VAR
    from repro.sim.experiments import available_experiments, run_experiment

    if args.name == "list":
        for name in available_experiments():
            print(name)
        return 0
    if args.jobs is not None:
        # Experiments build their own runners; the env default is the
        # channel that reaches all of them.
        os.environ[JOBS_ENV_VAR] = str(args.jobs)
    payload = run_experiment(args.name, _config(args))
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one simulation cell — the workflow behind the hot-path
    optimization pass (README "Performance"): profile, attack the top
    ``tottime`` entries, re-check bit-identity, repeat."""
    import cProfile
    import pstats

    from repro.sim.simulator import simulate, trace_for_workload

    config = _config(args)
    # Generate (and memoize) the trace first so the profile shows the
    # per-activation pipeline, not numpy trace synthesis.
    trace = trace_for_workload(config, args.workload)
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(trace, config, args.tracker)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.limit)
    print(
        f"profiled {result.requests} requests "
        f"({args.tracker}/{result.engine}, {result.workload})"
    )
    if args.output:
        stats.dump_stats(args.output)
        print(f"wrote {args.output} (open with snakeviz or pstats)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import render_manifest, write_report

    output = Path(args.output) if args.output else None
    if args.manifest:
        text = render_manifest(Path(args.manifest))
        if output is not None:
            output.write_text(text)
    else:
        text = write_report(Path(args.results_dir), output)
    if output is None:
        print(text)
    else:
        print(f"wrote {output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hydra-sim",
        description="Hydra (ISCA 2022) RowHammer-tracking simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    _add_common(run)
    run.add_argument(
        "workload",
        nargs="?",
        default="GUPS",
        choices=all_names(),
        help="synthetic workload to simulate (default GUPS; ignored"
        " when --trace-file replays a recorded trace)",
    )
    run.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="replay a recorded trace instead of generating the"
        " workload: a chunked-trace directory, an .npz trace, or an"
        " external text trace (see 'hydra-sim trace --help');"
        " combine with --stream-chunk to replay in bounded memory",
    )
    run.add_argument("--tracker", default="hydra")
    run.add_argument(
        "--observe",
        action="store_true",
        help="record per-window metrics during the run (bypasses the"
        " result cache) and print the window series afterwards",
    )
    run.add_argument(
        "--series-out",
        default=None,
        metavar="FILE",
        help="with --observe: also write the window series + final"
        " metrics snapshot as JSON",
    )
    run.add_argument(
        "--attack",
        default=None,
        metavar="SPEC",
        help="inject a compiled attack program alongside the workload"
        " (e.g. many_sided@aggs=18; see list-attacks); bypasses the"
        " result cache",
    )
    run.add_argument(
        "--attack-rate",
        type=float,
        default=0.01,
        metavar="PER_NS",
        help="with --attack: attacker activations per nanosecond"
        " (default 0.01 = one per 100 ns)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="run all 36 workloads")
    _add_common(sweep)
    sweep.add_argument("--tracker", default="hydra")
    sweep.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="append one JSON-lines provenance record per grid cell"
        " (default: $REPRO_MANIFEST, or <cache>/manifest.jsonl when"
        " REPRO_OBS=1)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the sweep service: HTTP front-end over a job broker",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8265)
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="where job specs/statuses/manifests persist"
        " (default: the result-cache directory); restarting a broker"
        " on the same state dir resumes interrupted jobs",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache (default: $REPRO_CACHE_DIR); point"
        " several brokers at one directory to shard across machines",
    )
    serve.add_argument(
        "--pool",
        choices=("process", "thread", "inline"),
        default="process",
        help="worker pool kind (default process)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count (default: $REPRO_JOBS, else serial)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a sweep grid to a running 'hydra-sim serve'",
    )
    _add_common(submit)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8265)
    submit.add_argument(
        "--trackers",
        default="hydra",
        metavar="SPECS",
        help="comma-separated tracker specs forming the grid's tracker"
        " axis (default hydra)",
    )
    submit.add_argument(
        "--workloads",
        default=None,
        metavar="NAMES",
        help="comma-separated workload names (default: all 36)",
    )
    submit.add_argument(
        "--detach",
        action="store_true",
        help="print the job id and return instead of streaming events"
        " and waiting for the result",
    )
    submit.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write the completed GridResult payload as JSON",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser(
        "jobs", help="list jobs on a running 'hydra-sim serve'"
    )
    jobs_cmd.add_argument("--host", default="127.0.0.1")
    jobs_cmd.add_argument("--port", type=int, default=8265)
    jobs_cmd.set_defaults(func=_cmd_jobs)

    catalogue = sub.add_parser(
        "list-trackers",
        help="print the tracker registry and each tracker's parameters",
    )
    catalogue.set_defaults(func=_cmd_list_trackers)

    storage = sub.add_parser("storage", help="print storage tables")
    _add_common(storage)
    storage.set_defaults(func=_cmd_storage)

    security = sub.add_parser("security", help="verify attack resilience")
    _add_common(security)
    security.set_defaults(func=_cmd_security)

    arena = sub.add_parser(
        "arena",
        help="race every tracker down a T_RH ladder: slowdown /"
        " storage / security Pareto report",
    )
    _add_common(arena)
    arena.add_argument(
        "--trh-ladder",
        type=_csv_ints,
        default=None,
        metavar="T1,T2,...",
        help="comma-separated T_RH rungs (default: 139000,20000,4800,"
        "1000,500); --trh is ignored here",
    )
    arena.add_argument(
        "--trackers",
        default=None,
        metavar="SPEC,SPEC,...",
        help="comma-separated tracker specs (default: every registered"
        " tracker)",
    )
    arena.add_argument(
        "--workloads",
        default=None,
        metavar="W1,W2,...",
        help="comma-separated workloads for the slowdown axis (default:"
        " a representative 5-workload subset)",
    )
    arena.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the full report (cells + frontiers) as JSON",
    )
    arena.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="append grid provenance and arena-oracle verdict records"
        " here (default: $REPRO_MANIFEST, or <cache>/manifest.jsonl"
        " when REPRO_OBS=1)",
    )
    arena.add_argument(
        "--attack",
        action="append",
        default=None,
        metavar="SPEC",
        help="replace the oracle battery with this attack spec or"
        " battery alias (single/many/random); repeatable",
    )
    arena.set_defaults(func=_cmd_arena)

    catalogue_attacks = sub.add_parser(
        "list-attacks",
        help="print the attack-program registry and each program's"
        " parameters",
    )
    catalogue_attacks.set_defaults(func=_cmd_list_attacks)

    fuzz = sub.add_parser(
        "fuzz",
        help="judge every tracker against seeded random hammer programs",
    )
    _add_common(fuzz)
    fuzz.add_argument(
        "--programs",
        type=int,
        default=8,
        metavar="N",
        help="generated programs per tracker (default 8)",
    )
    fuzz.add_argument(
        "--corpus-seed",
        type=lambda v: int(v, 0),
        default=None,
        metavar="SEED",
        help="corpus seed (hex ok; default 0xF0552) — program i uses"
        " seed+i, so flagged programs reproduce exactly",
    )
    fuzz.add_argument(
        "--act-budget",
        type=int,
        default=None,
        metavar="N",
        help="per-program activation budget (default 60000, shrunk"
        " automatically at low T_RH)",
    )
    fuzz.add_argument(
        "--trackers",
        default=None,
        metavar="SPEC,SPEC,...",
        help="comma-separated tracker specs (default: every registered"
        " tracker)",
    )
    fuzz.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the full fuzz report (every judged cell) as"
        " JSON",
    )
    fuzz.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="append one fuzz-oracle verdict record per judged cell"
        " (default: $REPRO_MANIFEST, or <cache>/manifest.jsonl when"
        " REPRO_OBS=1)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    exp = sub.add_parser(
        "experiment", help="run one named paper experiment (fig5, table1, ...)"
    )
    _add_common(exp)
    exp.add_argument("name", help="experiment id; use 'list' to enumerate")
    exp.set_defaults(func=_cmd_experiment)

    profile = sub.add_parser(
        "profile",
        help="cProfile one simulation cell (the perf-pass workflow)",
    )
    _add_common(profile)
    profile.add_argument(
        "workload", nargs="?", default="GUPS", choices=all_names()
    )
    profile.add_argument("--tracker", default="hydra")
    profile.add_argument(
        "--sort",
        default="tottime",
        choices=("tottime", "cumtime", "ncalls"),
        help="pstats sort column (default: tottime)",
    )
    profile.add_argument(
        "--limit", type=int, default=25, help="rows to print (default 25)"
    )
    profile.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also dump raw pstats data here (for snakeviz etc.)",
    )
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser(
        "trace",
        help="inspect/convert/record trace files (chunked, npz, text)",
        description="Tools over recorded traces. Formats are inferred"
        " from paths: a directory is a chunked trace (mmapped npy"
        " segments + manifest), *.npz is a materialized numpy trace,"
        " and *.trc/*.txt/*.trace is the external text format"
        " '<gap_ns> <R|W> <row_id> [n_lines]' (one request per line,"
        " '#' comments). All tools stream chunk-at-a-time, so a"
        " 100M-request trace never sits in RAM whole.",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _add_chunk(p: argparse.ArgumentParser) -> None:
        from repro.workloads.streaming import DEFAULT_STREAM_CHUNK

        p.add_argument(
            "--chunk",
            type=int,
            default=DEFAULT_STREAM_CHUNK,
            metavar="N",
            help="streaming chunk / segment size in requests"
            f" (default {DEFAULT_STREAM_CHUNK})",
        )

    inspect = trace_sub.add_parser(
        "inspect", help="print Table-3-style statistics of a trace"
    )
    inspect.add_argument("path", help="trace to inspect (any format)")
    inspect.add_argument(
        "--hot-threshold",
        type=int,
        default=250,
        metavar="N",
        help="activation count above which a row counts as hot"
        " (default 250, Table 3's ACT>250 column)",
    )
    _add_chunk(inspect)
    inspect.set_defaults(func=_cmd_trace_inspect)

    convert = trace_sub.add_parser(
        "convert",
        help="convert between trace formats (npz / text / chunked dir)",
    )
    convert.add_argument("source", help="trace to read (any format)")
    convert.add_argument(
        "destination",
        help="where to write: *.npz, *.trc/*.txt/*.trace (text), or a"
        " directory path (chunked)",
    )
    _add_chunk(convert)
    convert.set_defaults(func=_cmd_trace_convert)

    head = trace_sub.add_parser(
        "head",
        help="print a slice of a trace as text without loading it whole",
    )
    head.add_argument("path", help="trace to read (any format)")
    head.add_argument(
        "-n", "--count", type=int, default=10, metavar="N",
        help="requests to print (default 10)",
    )
    head.add_argument(
        "--start", type=int, default=0, metavar="I",
        help="first request index to print (default 0)",
    )
    _add_chunk(head)
    head.set_defaults(func=_cmd_trace_head)

    record = trace_sub.add_parser(
        "record",
        help="generate a synthetic workload's trace and save it",
    )
    _add_common(record)
    record.add_argument("workload", choices=all_names())
    record.add_argument(
        "destination",
        help="where to write: *.npz, *.trc/*.txt/*.trace (text), or a"
        " directory path (chunked)",
    )
    _add_chunk(record)
    record.set_defaults(func=_cmd_trace_record)

    report = sub.add_parser(
        "report", help="render paper-vs-measured report from bench results"
    )
    report.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory of recorded benchmark JSON results",
    )
    report.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="summarize a sweep manifest (JSON lines) instead of the"
        " benchmark results directory",
    )
    report.add_argument(
        "--output", default=None, help="write markdown here instead of stdout"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
