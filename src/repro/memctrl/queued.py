"""Queued engine: FR-FCFS arbitration + write-queue drain.

The fast engine (:mod:`repro.memctrl.controller`) resolves each
request immediately in arrival order — ideal for large sweeps. This
discrete-event variant models the scheduling machinery USIMM has and
the fast path abstracts:

- per-channel **read queues** arbitrated FR-FCFS: row-buffer hits are
  served before older row misses (first-ready, first-come-first-serve);
- an explicit per-channel **write queue**: writes (demand writebacks
  and tracker metadata writes) buffer and drain either when the read
  queue is empty (opportunistic) or when the queue crosses its high
  watermark (forced, blocking reads until the low watermark) — the
  "prioritizes read requests over write requests" behaviour of
  Table 2's controller; residual writes are fully flushed at end of
  trace so activity, bus, and end-time accounting include them;
- a closed admission loop: at most ``mlp`` demand requests are
  outstanding, so added queueing latency feeds back into throughput.

Tracker integration matches the fast engine: every activation
(demand, metadata read, victim refresh) is reported; tracker metadata
reads enter the read queue, metadata writes the write queue; and
rate-control delays (D-CBF) are charged to the triggering request's
completion time. Construction and the reporting surface
(``activity``/``total_refreshes``/``bus_utilization``) come from
:class:`~repro.memctrl.base.BaseMemoryController`, so the DRAM power
model works identically on both engines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, MetaAccess
from repro.memctrl.base import (
    BaseMemoryController,
    ControllerStats,
    EngineRunOutcome,
)

__all__ = ["QueuedMemoryController", "QueuedStats"]


@dataclass
class _Request:
    arrival: float
    row_id: int
    n_lines: int
    is_write: bool
    #: Demand requests complete an MLP slot; metadata ones do not.
    slot: Optional[int] = None
    completion: float = 0.0


@dataclass
class QueuedStats(ControllerStats):
    """Shared controller accounting plus FR-FCFS scheduler counters."""

    read_queue_peak: int = 0
    write_queue_peak: int = 0
    forced_write_drains: int = 0
    opportunistic_writes: int = 0
    row_hit_first_picks: int = 0
    flushed_writes: int = 0
    meta_reads: int = 0
    meta_writes: int = 0


class QueuedMemoryController(BaseMemoryController):
    """Discrete-event engine with explicit queues."""

    engine = "queued"
    stats_class = QueuedStats

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        blast_radius: int = 2,
        write_queue_high: int = 32,
        write_queue_low: int = 8,
        count_mitigation_acts: bool = True,
        max_feedback_depth: int = 4,
    ) -> None:
        if not 0 <= write_queue_low < write_queue_high:
            raise ValueError("need 0 <= low watermark < high watermark")
        super().__init__(
            geometry,
            timing,
            tracker,
            blast_radius=blast_radius,
            count_mitigation_acts=count_mitigation_acts,
            max_feedback_depth=max_feedback_depth,
        )
        self.write_queue_high = write_queue_high
        self.write_queue_low = write_queue_low
        self._read_queues: List[List[_Request]] = [
            [] for _ in range(geometry.channels)
        ]
        self._write_queues: List[Deque[_Request]] = [
            deque() for _ in range(geometry.channels)
        ]

    # ------------------------------------------------------------------
    # Closed-loop trace execution (engine protocol)
    # ------------------------------------------------------------------

    def run_trace(self, trace, mlp: int = 16) -> EngineRunOutcome:
        """Replay a trace with at most ``mlp`` outstanding requests.

        Requests are admitted in batches of up to ``mlp`` (the
        outstanding window), queued, then serviced by the FR-FCFS
        scheduler — so row-hit reordering among in-flight requests
        actually happens, unlike the fast engine's in-order
        resolution. After the last batch every write queue is flushed,
        so the end time and all activity stats account for writes that
        were still buffered when the trace ran out.

        ``trace`` is any iterable of ``(gap_ns, row_id, n_lines,
        is_write)`` tuples; chunk-backed
        :class:`~repro.workloads.streaming.TraceSource` streams are
        pulled one request at a time (at most ``mlp`` buffered), so
        bounded-memory sources stay bounded through this engine too.
        """
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        iterator = iter(trace)
        window = [0.0] * mlp
        issue = 0.0
        total_latency = 0.0
        count = 0
        exhausted = False
        while not exhausted:
            batch: List[_Request] = []
            while len(batch) < mlp:
                item = next(iterator, None)
                if item is None:
                    exhausted = True
                    break
                gap_ns, row_id, n_lines, is_write = item
                slot = count % mlp
                earliest = issue + gap_ns
                start = window[slot] if window[slot] > earliest else earliest
                issue = start
                # Scalar form of self._window.due(start).
                if start >= self._window.next_reset:
                    self._advance_window(start)
                self.stats.demand_accesses += 1
                self.stats.demand_line_transfers += n_lines
                request = _Request(start, row_id, n_lines, is_write, slot=slot)
                count += 1
                channel = self._channel_of(row_id)
                if is_write:
                    self._write_queues[channel].append(request)
                    self._note_write_peak(channel)
                    window[slot] = start  # writes retire into the queue
                else:
                    self._read_queues[channel].append(request)
                    batch.append(request)
                    depth = len(self._read_queues[channel])
                    if depth > self.stats.read_queue_peak:
                        self.stats.read_queue_peak = depth
            # Service phase: drain all read queues, then bleed writes.
            for channel in range(len(self._read_queues)):
                now = issue
                while self._read_queues[channel]:
                    now = self._service_one_read(channel, now)
                self._maybe_drain_writes(channel, now, forced_only=False)
            for request in batch:
                window[request.slot] = request.completion
                total_latency += request.completion - request.arrival
        end = max(window) if count else 0.0
        if end > self.end_time:
            self.end_time = end
        self._flush_write_queues(self.end_time)
        return EngineRunOutcome(
            end_time_ns=self.end_time,
            requests=count,
            total_latency_ns=total_latency,
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _service_one_read(self, channel: int, now: float) -> float:
        """Pick and perform one read per FR-FCFS."""
        queue = self._read_queues[channel]
        if not queue:
            return now
        # Forced write drain takes precedence at the high watermark.
        if len(self._write_queues[channel]) >= self.write_queue_high:
            self._drain_writes_to_low(channel, now)
        picked_index = 0
        for index, candidate in enumerate(queue):
            bank = self.banks[candidate.row_id // self._rows_per_bank]
            if bank.open_row == candidate.row_id % self._rows_per_bank:
                picked_index = index
                if index > 0:
                    self.stats.row_hit_first_picks += 1
                break
        request = queue.pop(picked_index)
        bank_index = request.row_id // self._rows_per_bank
        bank = self.banks[bank_index]
        bus = self.buses[channel]
        result = bank.access(
            max(request.arrival, now),
            request.row_id % self._rows_per_bank,
            request.n_lines,
            bus,
            request.is_write,
        )
        completion = result.completion
        if result.activated:
            delay = self._report_activation(request.row_id, result.act_time)
            if delay:
                completion += delay
                self.stats.total_delay_ns += delay
        request.completion = completion
        if completion > self.end_time:
            self.end_time = completion
        return completion

    # ------------------------------------------------------------------
    # Write queue
    # ------------------------------------------------------------------

    def _note_write_peak(self, channel: int) -> None:
        depth = len(self._write_queues[channel])
        if depth > self.stats.write_queue_peak:
            self.stats.write_queue_peak = depth

    def _maybe_drain_writes(
        self, channel: int, now: float, forced_only: bool
    ) -> None:
        writes = self._write_queues[channel]
        if len(writes) >= self.write_queue_high:
            self._drain_writes_to_low(channel, now)
        elif not forced_only and not self._read_queues[channel] and writes:
            # Opportunistic: bleed a few writes while reads are absent.
            for _ in range(min(4, len(writes))):
                self._perform_write(channel, writes.popleft(), now)
                self.stats.opportunistic_writes += 1

    def _drain_writes_to_low(self, channel: int, now: float) -> None:
        writes = self._write_queues[channel]
        self.stats.forced_write_drains += 1
        while len(writes) > self.write_queue_low:
            self._perform_write(channel, writes.popleft(), now)

    def _flush_write_queues(self, now: float) -> None:
        """Drain every residual write at end of trace.

        Writes "retire into the queue" during execution; without the
        final drain they would never touch a bank, understating end
        time, bus utilization, and metadata-write activations. Feedback
        from the flush (metadata writes caused by write activations)
        lands back in the queues and is drained in the same loop.
        """
        for channel, writes in enumerate(self._write_queues):
            while writes:
                self._perform_write(channel, writes.popleft(), now)
                self.stats.flushed_writes += 1

    def _perform_write(self, channel: int, request: _Request, now: float) -> None:
        bank_index = request.row_id // self._rows_per_bank
        result = self.banks[bank_index].access(
            max(request.arrival, now),
            request.row_id % self._rows_per_bank,
            request.n_lines,
            self.buses[channel],
            is_write=True,
        )
        completion = result.completion
        if result.activated:
            delay = self._report_activation(request.row_id, result.act_time)
            if delay:
                completion += delay
                self.stats.total_delay_ns += delay
        request.completion = completion
        if completion > self.end_time:
            self.end_time = completion

    # FeedbackHandler hooks -------------------------------------------

    def perform_meta_access(self, meta: MetaAccess, at: float) -> bool:
        channel = self._channel_of(meta.row_id)
        self.stats.meta_accesses += 1
        self.stats.meta_line_transfers += meta.n_lines
        if meta.is_write:
            self.stats.meta_writes += 1
            self._write_queues[channel].append(
                _Request(at, meta.row_id, meta.n_lines, True)
            )
            self._note_write_peak(channel)
            return False
        self.stats.meta_reads += 1
        bank_index = meta.row_id // self._rows_per_bank
        result = self.banks[bank_index].access(
            at,
            meta.row_id % self._rows_per_bank,
            meta.n_lines,
            self.buses[channel],
            False,
        )
        return result.activated

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def result_extras(self):
        extras = super().result_extras()
        extras.update(
            read_queue_peak=self.stats.read_queue_peak,
            write_queue_peak=self.stats.write_queue_peak,
            forced_write_drains=self.stats.forced_write_drains,
            opportunistic_writes=self.stats.opportunistic_writes,
            row_hit_first_picks=self.stats.row_hit_first_picks,
            flushed_writes=self.stats.flushed_writes,
            meta_reads=self.stats.meta_reads,
            meta_writes=self.stats.meta_writes,
        )
        return extras
