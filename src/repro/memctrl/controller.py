"""Fast engine: in-order resolution + tracker hook + mitigation.

This is the component Hydra lives in (Figure 3). Responsibilities:

- route each demand access to its bank and channel bus and resolve its
  timing (the event-driven equivalent of USIMM's scheduler);
- consult the activation tracker on **every** activation — demand,
  metadata, or victim refresh (§5.2.1 requires mitigation-induced
  activations to be counted too);
- perform the metadata traffic trackers request (RCT/CRA counter line
  reads and writebacks) — off the demand critical path, but consuming
  bank row-cycles and bus slots, which is precisely how tracking
  slowdown arises (§5.3);
- execute victim-refresh mitigations through the blast-radius policy;
- reset the tracker every tracking window (64 ms, or window/2 for
  D-CBF's filter rotation).

Construction, the tracker-feedback loop, and the reporting surface are
inherited from :class:`~repro.memctrl.base.BaseMemoryController`; this
module adds only the in-order scheduling mechanism. The queued
FR-FCFS engine lives in :mod:`repro.memctrl.queued`.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, MetaAccess
from repro.memctrl.base import (
    BaseMemoryController,
    ControllerStats,
    EngineRunOutcome,
    drive_in_order,
)

__all__ = ["ControllerStats", "MemoryController"]


class MemoryController(BaseMemoryController):
    """Two-channel DDR4 controller with in-order request resolution."""

    engine = "fast"

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        blast_radius: int = 2,
        count_mitigation_acts: bool = True,
        defer_meta_writes: bool = True,
        max_feedback_depth: int = 4,
    ) -> None:
        super().__init__(
            geometry,
            timing,
            tracker,
            blast_radius=blast_radius,
            count_mitigation_acts=count_mitigation_acts,
            max_feedback_depth=max_feedback_depth,
        )
        #: Writes sit in the write queue and drain with lower priority
        #: than reads (USIMM prioritizes reads, Table 2 text). Deferred
        #: writes cost data-bus slots but their bank occupancy overlaps
        #: idle periods, so they are modelled as bus-only traffic.
        self.defer_meta_writes = defer_meta_writes

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def run_trace(self, trace, mlp: int = 16) -> EngineRunOutcome:
        """Replay a trace through the limited-MLP in-order window.

        Any :class:`~repro.workloads.streaming.TraceSource` exposing
        ``resolved_stream`` — an in-RAM
        :class:`~repro.workloads.trace.Trace`, a chunked on-disk
        trace, or an external-format reader — takes the pre-resolved
        fast loop (bank/channel indices vectorized per chunk in numpy,
        the per-request ``access`` body inlined), consuming the stream
        with running statistics so peak memory is bounded by the
        source's chunk size. Any other iterable of
        ``(gap_ns, row_id, n_lines, is_write)`` tuples falls back to
        the generic :func:`drive_in_order` path. All paths produce
        bit-identical results — the fast loop performs the exact same
        arithmetic in the exact same order regardless of how the
        stream is backed.
        """
        resolved = getattr(trace, "resolved_stream", None)
        if resolved is not None:
            stream = resolved(self._rows_per_bank, self._banks_per_channel)
            return self._run_resolved_stream(stream, mlp)
        return drive_in_order(trace, self.access, mlp)

    def _run_resolved_stream(self, stream, mlp: int) -> EngineRunOutcome:
        """The hot loop: ``drive_in_order`` + ``access`` fused.

        Everything the per-request path touches is hoisted into locals;
        per-request stats increments are batched into local counters
        and flushed once after the loop (pure integer sums, and the
        float ``total_delay_ns`` accumulates in the same order it would
        through the instance attribute, so results stay bit-identical).
        """
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        banks = self.banks
        buses = self.buses
        stats = self.stats
        window_sched = self._window
        advance_window = self._advance_window
        # The feedback fast path (tracker answers None, no follow-up
        # work) is inlined below; only a live response enters the
        # worklist machinery. ``self.tracker`` is never rebound, so the
        # bound method stays valid across window resets.
        on_activation = self.tracker.on_activation
        followups = self._feedback.drive_followups
        # Timing scalars are shared by every bank and bus (all built
        # from the same DramTiming), so they hoist out of the loop;
        # per-bank/per-bus *state* is re-read from the objects each
        # iteration because feedback work (victim refreshes, metadata
        # accesses) mutates it through the normal methods mid-loop.
        timing = self.timing
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc
        t_rc = timing.t_rc
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_cas = timing.t_cas
        t_burst = timing.t_burst
        next_reset = window_sched.next_reset
        window = [0.0] * mlp
        issue = 0.0
        total_latency = 0.0
        count = 0
        end_time = self.end_time
        total_delay_ns = stats.total_delay_ns
        demand_accesses = 0
        demand_line_transfers = 0
        tracker_activations = 0
        for gap_ns, row_id, local_row, bank_index, channel, n_lines, is_write in stream:
            earliest = issue + gap_ns
            slot = count % mlp
            start = window[slot]
            if start < earliest:
                start = earliest
            issue = start
            # -- access(start, row_id, n_lines, is_write), inlined --
            if start >= next_reset:
                advance_window(start)
                next_reset = window_sched.next_reset
            # -- bank.access(start, local_row, n_lines, bus, is_write),
            #    inlined (see Bank.access for the annotated original) --
            bank = banks[bank_index]
            bstats = bank.stats
            at = start if start >= 0 else 0.0
            offset = at % t_refi
            t = at + (t_rfc - offset) if offset < t_rfc else at
            if bank.open_row == local_row:
                bstats.row_buffer_hits += 1
                row_ready = bank._row_ready_at
                col_start = t if t >= row_ready else row_ready
                activated = False
                act_at = 0.0
            else:
                bstats.row_buffer_misses += 1
                next_act = bank._next_act_at
                act_at = t if t >= next_act else next_act
                if bank.open_row is not None:
                    row_ready = bank._row_ready_at
                    if row_ready > act_at:
                        act_at = row_ready
                    act_at += t_rp
                    bstats.precharges += 1
                offset = act_at % t_refi
                if offset < t_rfc:
                    act_at += t_rfc - offset
                act_window = bank._act_window
                if act_window is not None:
                    act_at = act_window.reserve(act_at)
                bank.open_row = local_row
                bank._next_act_at = act_at + t_rc
                col_start = bank._row_ready_at = act_at + t_rcd
                bstats.activations += 1
                activated = True
            first_data = col_start + t_cas
            bus = buses[channel]
            free_at = bus.free_at
            xfer_start = first_data if first_data >= free_at else free_at
            duration = n_lines * t_burst
            completion = xfer_start + duration
            bus.free_at = completion
            bus.busy_time += duration
            if is_write:
                bstats.write_lines += n_lines
            else:
                bstats.read_lines += n_lines
            # -- end of the inlined bank access --
            demand_accesses += 1
            demand_line_transfers += n_lines
            if activated:
                # -- _feedback.drive(row_id, act_at, self), inlined --
                tracker_activations += 1
                response = on_activation(row_id)
                if response is not None:
                    delay = followups(response, act_at, self)
                    if delay:
                        completion += delay
                        total_delay_ns += delay
            if completion > end_time:
                end_time = completion
            # -- back in the drive_in_order window bookkeeping --
            window[slot] = completion
            total_latency += completion - start
            count += 1
        stats.demand_accesses += demand_accesses
        stats.demand_line_transfers += demand_line_transfers
        stats.tracker_activations += tracker_activations
        stats.total_delay_ns = total_delay_ns
        self.end_time = end_time
        end = max(window) if count else 0.0
        return EngineRunOutcome(
            end_time_ns=end, requests=count, total_latency_ns=total_latency
        )

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self, at: float, row_id: int, n_lines: int = 1, is_write: bool = False
    ) -> float:
        """One demand access of ``n_lines`` lines; returns completion time."""
        if at >= self._window.next_reset:  # scalar form of _window.due(at)
            self._advance_window(at)
        bank_index = row_id // self._rows_per_bank
        bank = self.banks[bank_index]
        bus = self.buses[bank_index // self._banks_per_channel]
        result = bank.access(
            at, row_id % self._rows_per_bank, n_lines, bus, is_write
        )
        self.stats.demand_accesses += 1
        self.stats.demand_line_transfers += n_lines
        completion = result.completion
        if result.activated:
            delay = self._report_activation(row_id, result.act_time)
            if delay:
                completion += delay
                self.stats.total_delay_ns += delay
        if completion > self.end_time:
            self.end_time = completion
        return completion

    # FeedbackHandler hooks -------------------------------------------

    def perform_meta_access(self, meta: MetaAccess, at: float) -> bool:
        meta_bank_index = meta.row_id // self._rows_per_bank
        meta_bus = self.buses[meta_bank_index // self._banks_per_channel]
        self.stats.meta_accesses += 1
        self.stats.meta_line_transfers += meta.n_lines
        if meta.is_write and self.defer_meta_writes:
            meta_bus.transfer(at, meta.n_lines)
            return False
        meta_result = self.banks[meta_bank_index].access(
            at,
            meta.row_id % self._rows_per_bank,
            meta.n_lines,
            meta_bus,
            meta.is_write,
        )
        return meta_result.activated
