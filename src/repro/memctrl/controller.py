"""Memory controller: demand scheduling + tracker hook + mitigation.

This is the component Hydra lives in (Figure 3). Responsibilities:

- route each demand access to its bank and channel bus and resolve its
  timing (the event-driven equivalent of USIMM's scheduler);
- consult the activation tracker on **every** activation — demand,
  metadata, or victim refresh (§5.2.1 requires mitigation-induced
  activations to be counted too);
- perform the metadata traffic trackers request (RCT/CRA counter line
  reads and writebacks) — off the demand critical path, but consuming
  bank row-cycles and bus slots, which is precisely how tracking
  slowdown arises (§5.3);
- execute victim-refresh mitigations through the blast-radius policy;
- reset the tracker every tracking window (64 ms, or window/2 for
  D-CBF's filter rotation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.address import AddressMapper
from repro.dram.bank import (
    Bank,
    ChannelBus,
    DramActivityStats,
    RankActWindow,
    RefreshTimeline,
    average_bus_utilization,
)
from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, MetaAccess, NullTracker
from repro.memctrl.feedback import TrackerFeedback, WindowResetSchedule
from repro.memctrl.mitigation import VictimRefreshPolicy


@dataclass
class ControllerStats:
    """Aggregate accounting of one controller's activity."""

    demand_accesses: int = 0
    demand_line_transfers: int = 0
    meta_accesses: int = 0
    meta_line_transfers: int = 0
    victim_refreshes: int = 0
    tracker_activations: int = 0
    window_resets: int = 0
    total_delay_ns: float = 0.0


class MemoryController:
    """Two-channel DDR4 controller with pluggable RowHammer tracking."""

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        blast_radius: int = 2,
        count_mitigation_acts: bool = True,
        defer_meta_writes: bool = True,
        max_feedback_depth: int = 4,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.tracker = tracker if tracker is not None else NullTracker()
        self.mapper = AddressMapper(geometry)
        self.refresh = RefreshTimeline(timing)
        n_ranks = geometry.channels * geometry.ranks_per_channel
        self.rank_windows = [
            RankActWindow(timing.t_faw, timing.t_rrd) for _ in range(n_ranks)
        ]
        self.banks = [
            Bank(
                timing,
                self.refresh,
                act_window=self.rank_windows[
                    index // geometry.banks_per_rank
                ],
            )
            for index in range(geometry.total_banks)
        ]
        self.buses = [ChannelBus(timing) for _ in range(geometry.channels)]
        self.policy = VictimRefreshPolicy(self.mapper, blast_radius)
        self.count_mitigation_acts = count_mitigation_acts
        #: Writes sit in the write queue and drain with lower priority
        #: than reads (USIMM prioritizes reads, Table 2 text). Deferred
        #: writes cost data-bus slots but their bank occupancy overlaps
        #: idle periods, so they are modelled as bus-only traffic.
        self.defer_meta_writes = defer_meta_writes
        #: Mitigation-induced activations are re-tracked (§5.2.1) up
        #: to this chain depth; see :class:`TrackerFeedback`.
        self.max_feedback_depth = max_feedback_depth
        self._feedback = TrackerFeedback(
            self.tracker, self.policy, max_feedback_depth
        )
        self.stats = ControllerStats()
        self._rows_per_bank = geometry.rows_per_bank
        self._banks_per_channel = (
            geometry.ranks_per_channel * geometry.banks_per_rank
        )
        self._window = WindowResetSchedule(timing, self.tracker)
        self.end_time = 0.0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self, at: float, row_id: int, n_lines: int = 1, is_write: bool = False
    ) -> float:
        """One demand access of ``n_lines`` lines; returns completion time."""
        if self._window.due(at):
            self._advance_window(at)
        bank_index = row_id // self._rows_per_bank
        bank = self.banks[bank_index]
        bus = self.buses[bank_index // self._banks_per_channel]
        result = bank.access(
            at, row_id % self._rows_per_bank, n_lines, bus, is_write
        )
        self.stats.demand_accesses += 1
        self.stats.demand_line_transfers += n_lines
        completion = result.completion
        if result.activated:
            delay = self._report_activation(row_id, result.act_time)
            if delay:
                completion += delay
                self.stats.total_delay_ns += delay
        if completion > self.end_time:
            self.end_time = completion
        return completion

    # ------------------------------------------------------------------
    # Tracker feedback loop
    # ------------------------------------------------------------------

    def _report_activation(self, row_id: int, at: float) -> float:
        """Feed one activation (plus all follow-up) into the tracker.

        The worklist itself lives in
        :class:`~repro.memctrl.feedback.TrackerFeedback`; the hooks
        below describe how *this* controller physically performs the
        requested metadata traffic (immediately, off the demand
        critical path) and victim refreshes.
        """
        return self._feedback.drive(row_id, at, self)

    # FeedbackHandler hooks -------------------------------------------

    def on_tracker_activation(self, row_id: int) -> None:
        self.stats.tracker_activations += 1

    def perform_meta_access(self, meta: MetaAccess, at: float) -> bool:
        meta_bank_index = meta.row_id // self._rows_per_bank
        meta_bus = self.buses[meta_bank_index // self._banks_per_channel]
        self.stats.meta_accesses += 1
        self.stats.meta_line_transfers += meta.n_lines
        if meta.is_write and self.defer_meta_writes:
            meta_bus.transfer(at, meta.n_lines)
            return False
        meta_result = self.banks[meta_bank_index].access(
            at,
            meta.row_id % self._rows_per_bank,
            meta.n_lines,
            meta_bus,
            meta.is_write,
        )
        return meta_result.activated

    def perform_victim_refresh(self, victim_row: int, at: float) -> bool:
        self.banks[victim_row // self._rows_per_bank].refresh_row(at)
        self.stats.victim_refreshes += 1
        return self.count_mitigation_acts

    # ------------------------------------------------------------------
    # Window management and reporting
    # ------------------------------------------------------------------

    def _advance_window(self, at: float) -> None:
        self.stats.window_resets += self._window.advance(at, self.tracker)

    def activity(self) -> DramActivityStats:
        """Merged command counts across all banks."""
        merged = DramActivityStats()
        for bank in self.banks:
            merged.merge(bank.stats)
        return merged

    def total_refreshes(self, until: Optional[float] = None) -> int:
        """REF commands issued to all ranks by ``until`` (power model)."""
        horizon = self.end_time if until is None else until
        per_rank = self.refresh.refreshes_before(horizon)
        return per_rank * self.geometry.channels * self.geometry.ranks_per_channel

    def bus_utilization(self) -> float:
        """Mean per-channel data-bus utilization, clamped to [0, 1]."""
        return average_bus_utilization(self.buses, self.end_time)
