"""Memory controller: demand scheduling + tracker hook + mitigation.

This is the component Hydra lives in (Figure 3). Responsibilities:

- route each demand access to its bank and channel bus and resolve its
  timing (the event-driven equivalent of USIMM's scheduler);
- consult the activation tracker on **every** activation — demand,
  metadata, or victim refresh (§5.2.1 requires mitigation-induced
  activations to be counted too);
- perform the metadata traffic trackers request (RCT/CRA counter line
  reads and writebacks) — off the demand critical path, but consuming
  bank row-cycles and bus slots, which is precisely how tracking
  slowdown arises (§5.3);
- execute victim-refresh mitigations through the blast-radius policy;
- reset the tracker every tracking window (64 ms, or window/2 for
  D-CBF's filter rotation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.dram.address import AddressMapper
from repro.dram.bank import (
    Bank,
    ChannelBus,
    DramActivityStats,
    RankActWindow,
    RefreshTimeline,
)
from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, NullTracker
from repro.memctrl.mitigation import VictimRefreshPolicy


@dataclass
class ControllerStats:
    """Aggregate accounting of one controller's activity."""

    demand_accesses: int = 0
    demand_line_transfers: int = 0
    meta_accesses: int = 0
    meta_line_transfers: int = 0
    victim_refreshes: int = 0
    tracker_activations: int = 0
    window_resets: int = 0
    total_delay_ns: float = 0.0


class MemoryController:
    """Two-channel DDR4 controller with pluggable RowHammer tracking."""

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        blast_radius: int = 2,
        count_mitigation_acts: bool = True,
        defer_meta_writes: bool = True,
        max_feedback_depth: int = 4,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.tracker = tracker if tracker is not None else NullTracker()
        self.mapper = AddressMapper(geometry)
        self.refresh = RefreshTimeline(timing)
        n_ranks = geometry.channels * geometry.ranks_per_channel
        self.rank_windows = [
            RankActWindow(timing.t_faw, timing.t_rrd) for _ in range(n_ranks)
        ]
        self.banks = [
            Bank(
                timing,
                self.refresh,
                act_window=self.rank_windows[
                    index // geometry.banks_per_rank
                ],
            )
            for index in range(geometry.total_banks)
        ]
        self.buses = [ChannelBus(timing) for _ in range(geometry.channels)]
        self.policy = VictimRefreshPolicy(self.mapper, blast_radius)
        self.count_mitigation_acts = count_mitigation_acts
        #: Writes sit in the write queue and drain with lower priority
        #: than reads (USIMM prioritizes reads, Table 2 text). Deferred
        #: writes cost data-bus slots but their bank occupancy overlaps
        #: idle periods, so they are modelled as bus-only traffic.
        self.defer_meta_writes = defer_meta_writes
        #: Mitigation-induced activations are re-tracked (§5.2.1) up
        #: to this chain depth. Depth 4 covers Half-Double-style
        #: second-ring effects with margin; an unbounded chain only
        #: arises for pathological degraded trackers (mitigate-every-
        #: activation modes), where hardware would rate-limit too.
        if max_feedback_depth < 1:
            raise ValueError("max_feedback_depth must be >= 1")
        self.max_feedback_depth = max_feedback_depth
        self.stats = ControllerStats()
        self._rows_per_bank = geometry.rows_per_bank
        self._banks_per_channel = (
            geometry.ranks_per_channel * geometry.banks_per_rank
        )
        reset_divisor = getattr(self.tracker, "reset_divisor", 1)
        self._reset_period = timing.refresh_window / reset_divisor
        self._next_reset = self._reset_period
        self.end_time = 0.0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self, at: float, row_id: int, n_lines: int = 1, is_write: bool = False
    ) -> float:
        """One demand access of ``n_lines`` lines; returns completion time."""
        if at >= self._next_reset:
            self._advance_window(at)
        bank_index = row_id // self._rows_per_bank
        bank = self.banks[bank_index]
        bus = self.buses[bank_index // self._banks_per_channel]
        result = bank.access(
            at, row_id % self._rows_per_bank, n_lines, bus, is_write
        )
        self.stats.demand_accesses += 1
        self.stats.demand_line_transfers += n_lines
        completion = result.completion
        if result.activated:
            delay = self._report_activation(row_id, result.act_time)
            if delay:
                completion += delay
                self.stats.total_delay_ns += delay
        if completion > self.end_time:
            self.end_time = completion
        return completion

    # ------------------------------------------------------------------
    # Tracker feedback loop
    # ------------------------------------------------------------------

    def _report_activation(self, row_id: int, at: float) -> float:
        """Feed activations into the tracker, performing any follow-up.

        Metadata accesses and victim refreshes requested by the tracker
        are executed immediately (off the demand critical path); any
        activations *they* cause are fed back, so mitigation-induced
        hammering (Half-Double, §5.2.1) and metadata-row hammering
        (§5.2.2) are both visible to the tracker. The worklist is
        naturally bounded: each feedback activation needs ~T_H prior
        activations to trigger further work.
        """
        delay = 0.0
        pending = deque(((row_id, 0),))
        while pending:
            row, depth = pending.popleft()
            self.stats.tracker_activations += 1
            response = self.tracker.on_activation(row)
            if response is None:
                continue
            delay += response.delay_ns
            for meta in response.meta_accesses:
                meta_bank_index = meta.row_id // self._rows_per_bank
                meta_bus = self.buses[
                    meta_bank_index // self._banks_per_channel
                ]
                self.stats.meta_accesses += 1
                self.stats.meta_line_transfers += meta.n_lines
                if meta.is_write and self.defer_meta_writes:
                    meta_bus.transfer(at, meta.n_lines)
                    continue
                meta_result = self.banks[meta_bank_index].access(
                    at,
                    meta.row_id % self._rows_per_bank,
                    meta.n_lines,
                    meta_bus,
                    meta.is_write,
                )
                if meta_result.activated and depth < self.max_feedback_depth:
                    pending.append((meta.row_id, depth + 1))
            for aggressor in response.mitigate_rows:
                for victim in self.policy.victims_of(aggressor):
                    victim_bank = self.banks[victim // self._rows_per_bank]
                    victim_bank.refresh_row(at)
                    self.stats.victim_refreshes += 1
                    if (
                        self.count_mitigation_acts
                        and depth < self.max_feedback_depth
                    ):
                        pending.append((victim, depth + 1))
        return delay

    # ------------------------------------------------------------------
    # Window management and reporting
    # ------------------------------------------------------------------

    def _advance_window(self, at: float) -> None:
        while at >= self._next_reset:
            self.tracker.on_window_reset()
            self.stats.window_resets += 1
            self._next_reset += self._reset_period

    def activity(self) -> DramActivityStats:
        """Merged command counts across all banks."""
        merged = DramActivityStats()
        for bank in self.banks:
            merged.merge(bank.stats)
        return merged

    def total_refreshes(self, until: Optional[float] = None) -> int:
        """REF commands issued to all ranks by ``until`` (power model)."""
        horizon = self.end_time if until is None else until
        per_rank = self.refresh.refreshes_before(horizon)
        return per_rank * self.geometry.channels * self.geometry.ranks_per_channel

    def bus_utilization(self) -> float:
        if self.end_time <= 0:
            return 0.0
        return sum(bus.busy_time for bus in self.buses) / (
            self.end_time * len(self.buses)
        )
