"""Fast engine: in-order resolution + tracker hook + mitigation.

This is the component Hydra lives in (Figure 3). Responsibilities:

- route each demand access to its bank and channel bus and resolve its
  timing (the event-driven equivalent of USIMM's scheduler);
- consult the activation tracker on **every** activation — demand,
  metadata, or victim refresh (§5.2.1 requires mitigation-induced
  activations to be counted too);
- perform the metadata traffic trackers request (RCT/CRA counter line
  reads and writebacks) — off the demand critical path, but consuming
  bank row-cycles and bus slots, which is precisely how tracking
  slowdown arises (§5.3);
- execute victim-refresh mitigations through the blast-radius policy;
- reset the tracker every tracking window (64 ms, or window/2 for
  D-CBF's filter rotation).

Construction, the tracker-feedback loop, and the reporting surface are
inherited from :class:`~repro.memctrl.base.BaseMemoryController`; this
module adds only the in-order scheduling mechanism. The queued
FR-FCFS engine lives in :mod:`repro.memctrl.queued`.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, MetaAccess
from repro.memctrl.base import (
    BaseMemoryController,
    ControllerStats,
    EngineRunOutcome,
    drive_in_order,
)

__all__ = ["ControllerStats", "MemoryController"]


class MemoryController(BaseMemoryController):
    """Two-channel DDR4 controller with in-order request resolution."""

    engine = "fast"

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        blast_radius: int = 2,
        count_mitigation_acts: bool = True,
        defer_meta_writes: bool = True,
        max_feedback_depth: int = 4,
    ) -> None:
        super().__init__(
            geometry,
            timing,
            tracker,
            blast_radius=blast_radius,
            count_mitigation_acts=count_mitigation_acts,
            max_feedback_depth=max_feedback_depth,
        )
        #: Writes sit in the write queue and drain with lower priority
        #: than reads (USIMM prioritizes reads, Table 2 text). Deferred
        #: writes cost data-bus slots but their bank occupancy overlaps
        #: idle periods, so they are modelled as bus-only traffic.
        self.defer_meta_writes = defer_meta_writes

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def run_trace(self, trace, mlp: int = 16) -> EngineRunOutcome:
        """Replay a trace through the limited-MLP in-order window."""
        return drive_in_order(trace, self.access, mlp)

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self, at: float, row_id: int, n_lines: int = 1, is_write: bool = False
    ) -> float:
        """One demand access of ``n_lines`` lines; returns completion time."""
        if self._window.due(at):
            self._advance_window(at)
        bank_index = row_id // self._rows_per_bank
        bank = self.banks[bank_index]
        bus = self.buses[bank_index // self._banks_per_channel]
        result = bank.access(
            at, row_id % self._rows_per_bank, n_lines, bus, is_write
        )
        self.stats.demand_accesses += 1
        self.stats.demand_line_transfers += n_lines
        completion = result.completion
        if result.activated:
            delay = self._report_activation(row_id, result.act_time)
            if delay:
                completion += delay
                self.stats.total_delay_ns += delay
        if completion > self.end_time:
            self.end_time = completion
        return completion

    # FeedbackHandler hooks -------------------------------------------

    def perform_meta_access(self, meta: MetaAccess, at: float) -> bool:
        meta_bank_index = meta.row_id // self._rows_per_bank
        meta_bus = self.buses[meta_bank_index // self._banks_per_channel]
        self.stats.meta_accesses += 1
        self.stats.meta_line_transfers += meta.n_lines
        if meta.is_write and self.defer_meta_writes:
            meta_bus.transfer(at, meta.n_lines)
            return False
        meta_result = self.banks[meta_bank_index].access(
            at,
            meta.row_id % self._rows_per_bank,
            meta.n_lines,
            meta_bus,
            meta.is_write,
        )
        return meta_result.activated
