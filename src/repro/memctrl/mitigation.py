"""Victim-refresh mitigation (paper §4.7).

Hydra (like Graphene and CRA here) is only a *tracker*; the mitigating
action is refreshing the aggressor's neighbours. The blast radius N
(rows refreshed on each side) defaults to 2, following the paper's
response to Half-Double-style distance-2 coupling.

A victim refresh is itself an activation of the victim row, so —
crucially for §5.2.1 security — the engine reports every refresh it
performs back to the caller so those activations can be fed into the
tracker like any others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.address import AddressMapper


@dataclass
class MitigationStats:
    """Counts of mitigation work performed."""

    mitigations: int = 0
    victim_refreshes: int = 0


class VictimRefreshPolicy:
    """Translates "mitigate row R" into the victim rows to refresh."""

    def __init__(self, mapper: AddressMapper, blast_radius: int = 2) -> None:
        if blast_radius < 0:
            raise ValueError("blast_radius must be non-negative")
        self.mapper = mapper
        self.blast_radius = blast_radius
        self.stats = MitigationStats()

    def victims_of(self, aggressor_row: int) -> List[int]:
        """Rows to refresh for one mitigation of ``aggressor_row``."""
        self.stats.mitigations += 1
        victims = self.mapper.neighbors(aggressor_row, self.blast_radius)
        self.stats.victim_refreshes += len(victims)
        return victims
