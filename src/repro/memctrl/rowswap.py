"""Randomized Row-Swap (RRS) mitigation — the paper's §8 extension.

Hydra "can also be used with other mitigating actions, such as row
migration [26]. Exploring such extensions is a part of our future
work." This module is that exploration: instead of refreshing an
aggressor's neighbours, the controller *relocates* the aggressor — it
swaps the hot logical row with a randomly chosen physical row
(Saileshwar et al., ASPLOS 2022), breaking the spatial correlation
between aggressor and victim before the hammer count can matter.

Pieces:

- :class:`RowIndirectionTable` — the logical->physical bijection the
  controller consults on every access (only swapped rows are stored;
  identity otherwise).
- :class:`RowSwapController` — a :class:`MemoryController` whose
  mitigation action is a swap: two full-row reads plus two full-row
  writes of data movement (charged to banks and bus), then the
  indirection update. Tracking still observes *physical* activations,
  so post-swap hammering of the same logical row accumulates on a
  fresh physical counter while the old location cools off.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker
from repro.memctrl.controller import MemoryController


class RowIndirectionTable:
    """Sparse logical->physical row mapping (identity by default)."""

    def __init__(self, total_rows: int) -> None:
        if total_rows <= 0:
            raise ValueError("total_rows must be positive")
        self.total_rows = total_rows
        self._forward: Dict[int, int] = {}
        self._reverse: Dict[int, int] = {}
        self.swaps_performed = 0

    def physical_of(self, logical: int) -> int:
        return self._forward.get(logical, logical)

    def logical_of(self, physical: int) -> int:
        return self._reverse.get(physical, physical)

    def swap(self, physical_a: int, physical_b: int) -> None:
        """Exchange the contents (logical identities) of two rows."""
        if not (
            0 <= physical_a < self.total_rows
            and 0 <= physical_b < self.total_rows
        ):
            raise ValueError("physical rows out of range")
        if physical_a == physical_b:
            return
        logical_a = self.logical_of(physical_a)
        logical_b = self.logical_of(physical_b)
        # logical_a now lives at physical_b, logical_b at physical_a.
        for logical, physical in (
            (logical_a, physical_b),
            (logical_b, physical_a),
        ):
            if logical == physical:
                self._forward.pop(logical, None)
                self._reverse.pop(physical, None)
            else:
                self._forward[logical] = physical
                self._reverse[physical] = logical
        self.swaps_performed += 1

    def remapped_rows(self) -> int:
        return len(self._forward)

    def verify_bijection(self) -> bool:
        """Consistency check used by property tests."""
        for logical, physical in self._forward.items():
            if self._reverse.get(physical) != logical:
                return False
        return len(self._forward) == len(self._reverse)


class RowSwapController(MemoryController):
    """Memory controller whose mitigation action is a random row swap.

    The tracker interface is unchanged: when the tracker asks to
    mitigate a (physical) aggressor, the controller swaps it with a
    uniformly random partner row in the same bank (cross-bank swaps
    would change channel mappings), paying the data-movement cost.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        seed: int = 0x525253,
        **kwargs,
    ) -> None:
        super().__init__(geometry, timing, tracker, **kwargs)
        self.indirection = RowIndirectionTable(geometry.total_rows)
        self._rng = random.Random(seed)
        self._swap_lines = geometry.lines_per_row
        self.swap_data_lines = 0

    # The demand path translates logical -> physical before timing.
    def access(
        self, at: float, row_id: int, n_lines: int = 1, is_write: bool = False
    ) -> float:
        physical = self.indirection.physical_of(row_id)
        return super().access(at, physical, n_lines, is_write)

    # Mitigation: swap instead of victim refresh.
    def _report_activation(self, row_id: int, at: float) -> float:
        # Reuse the parent plumbing for metadata; intercept mitigation
        # by wrapping the policy call. Simplest correct approach: run
        # the tracker directly here.
        from collections import deque

        delay = 0.0
        pending = deque(((row_id, 0),))
        while pending:
            row, depth = pending.popleft()
            self.stats.tracker_activations += 1
            response = self.tracker.on_activation(row)
            if response is None:
                continue
            delay += response.delay_ns
            for meta in response.meta_accesses:
                meta_bank_index = meta.row_id // self._rows_per_bank
                meta_bus = self.buses[
                    meta_bank_index // self._banks_per_channel
                ]
                self.stats.meta_accesses += 1
                self.stats.meta_line_transfers += meta.n_lines
                if meta.is_write and self.defer_meta_writes:
                    meta_bus.transfer(at, meta.n_lines)
                    continue
                meta_result = self.banks[meta_bank_index].access(
                    at,
                    meta.row_id % self._rows_per_bank,
                    meta.n_lines,
                    meta_bus,
                    meta.is_write,
                )
                if meta_result.activated and depth < self.max_feedback_depth:
                    pending.append((meta.row_id, depth + 1))
            for aggressor in response.mitigate_rows:
                partner = self._pick_partner(aggressor)
                self._perform_swap(aggressor, partner, at)
                self.stats.victim_refreshes += 2  # two rows disturbed
                if self.count_mitigation_acts and depth < self.max_feedback_depth:
                    pending.append((aggressor, depth + 1))
                    pending.append((partner, depth + 1))
        return delay

    def _pick_partner(self, aggressor: int) -> int:
        bank_base = aggressor - aggressor % self._rows_per_bank
        while True:
            candidate = bank_base + self._rng.randrange(self._rows_per_bank)
            if candidate != aggressor:
                return candidate

    def _perform_swap(self, physical_a: int, physical_b: int, at: float) -> None:
        """Move both rows' data: read + write each (full-row transfers)."""
        bus = self.buses[
            (physical_a // self._rows_per_bank) // self._banks_per_channel
        ]
        for row in (physical_a, physical_b):
            bank = self.banks[row // self._rows_per_bank]
            bank.access(at, row % self._rows_per_bank, self._swap_lines, bus)
            bank.access(
                at, row % self._rows_per_bank, self._swap_lines, bus, True
            )
            self.swap_data_lines += 2 * self._swap_lines
        self.indirection.swap(physical_a, physical_b)
