"""Tracker machinery shared by both memory controllers.

The fast controller (:mod:`repro.memctrl.controller`) and the queued
FR-FCFS controller (:mod:`repro.memctrl.queued`) integrate trackers
identically in *behaviour* — every activation is reported, tracker
responses trigger metadata traffic and victim refreshes, and those
follow-up activations are fed back (§5.2.1/§5.2.2) — while differing
in *mechanism* (immediate resolution vs queues). This module holds the
behaviour once:

- :class:`TrackerFeedback` drives the bounded feedback worklist, with
  the controller supplying how a metadata access or victim refresh is
  physically performed;
- :class:`WindowResetSchedule` owns the tracking-window reset cadence,
  including the per-tracker ``reset_divisor`` (D-CBF rotates its
  filters every half window).
"""

from __future__ import annotations

from repro.dram.timing import DramTiming
from repro.interfaces import ActivationTracker, MetaAccess
from repro.memctrl.mitigation import VictimRefreshPolicy
from repro.obs.metrics import noop


class FeedbackHandler:
    """What a controller must provide to drive tracker feedback.

    Controllers implement these three hooks; :class:`TrackerFeedback`
    never touches banks, buses, queues, or stats directly.
    """

    def on_tracker_activation(self, row_id: int) -> None:
        """One activation is about to be reported to the tracker."""

    def perform_meta_access(self, meta: MetaAccess, at: float) -> bool:
        """Execute one tracker metadata access.

        Returns True when the access activated a row *now* (and should
        therefore be fed back into the tracker); deferred or queued
        accesses return False and are accounted when they drain.
        """
        raise NotImplementedError

    def perform_victim_refresh(self, victim_row: int, at: float) -> bool:
        """Refresh one victim row.

        Returns True when the refresh-induced activation should be fed
        back into the tracker (§5.2.1 mitigation-act counting).
        """
        raise NotImplementedError


class TrackerFeedback:
    """Bounded worklist feeding tracker-caused activations back.

    Metadata accesses and victim refreshes requested by the tracker
    are executed through the handler; any activations *they* cause are
    re-reported, so mitigation-induced hammering (Half-Double, §5.2.1)
    and metadata-row hammering (§5.2.2) are both visible to the
    tracker. The worklist is naturally bounded: each feedback
    activation needs ~T_H prior activations to trigger further work,
    and ``max_feedback_depth`` caps pathological chains (depth 4
    covers Half-Double-style second-ring effects with margin).
    """

    __slots__ = ("tracker", "policy", "max_depth", "observer")

    def __init__(
        self,
        tracker: ActivationTracker,
        policy: VictimRefreshPolicy,
        max_feedback_depth: int = 4,
    ) -> None:
        if max_feedback_depth < 1:
            raise ValueError("max_feedback_depth must be >= 1")
        self.tracker = tracker
        self.policy = policy
        self.max_depth = max_feedback_depth
        #: Observability probe: called with the number of feedback
        #: activations a slow-path event chained (``repro.obs`` points
        #: it at a histogram's ``observe``). Resolved once at build
        #: time; the no-op default sits outside the fast path, which
        #: never reaches :meth:`drive_followups` at all.
        self.observer = noop

    def drive(
        self, row_id: int, at: float, handler: FeedbackHandler
    ) -> float:
        """Report one activation and run all follow-up work.

        Returns the total activation delay (ns) the tracker requested
        (rate-control mitigations such as D-CBF's).

        The overwhelmingly common case — the tracker answers ``None``
        — is handled without building a worklist at all; the slow path
        walks the same breadth-first order the original deque-based
        loop produced (a list with a read cursor, appended in the same
        sequence, is FIFO too).
        """
        handler.on_tracker_activation(row_id)
        response = self.tracker.on_activation(row_id)
        if response is None:
            return 0.0
        return self.drive_followups(response, at, handler)

    def drive_followups(
        self, response, at: float, handler: FeedbackHandler
    ) -> float:
        """Slow path: run the feedback worklist for a live response.

        ``response`` belongs to the depth-0 activation ``drive``
        already reported. The loop performs its requested work, then
        scans the worklist for the next activation that produces a
        response — the exact handler-call order of the original
        deque-based BFS (a cursor-indexed list is FIFO too, without
        the per-activation deque allocation).
        """
        tracker = self.tracker
        victims_of = self.policy.victims_of
        max_depth = self.max_depth
        delay = 0.0 + response.delay_ns
        pending = []  # (row, depth) worklist, consumed via cursor
        cursor = 0
        depth = 0
        while True:
            requeue = depth < max_depth
            for meta in response.meta_accesses:
                if handler.perform_meta_access(meta, at) and requeue:
                    pending.append((meta.row_id, depth + 1))
            for aggressor in response.mitigate_rows:
                for victim in victims_of(aggressor):
                    if handler.perform_victim_refresh(victim, at) and requeue:
                        pending.append((victim, depth + 1))
            response = None
            while cursor < len(pending):
                row, depth = pending[cursor]
                cursor += 1
                handler.on_tracker_activation(row)
                response = tracker.on_activation(row)
                if response is not None:
                    delay += response.delay_ns
                    break
            if response is None:
                self.observer(cursor)
                return delay


class WindowResetSchedule:
    """Tracking-window reset cadence (64 ms, or window/divisor).

    Trackers advertising ``reset_divisor = N`` are reset N times per
    refresh window (D-CBF's filter rotation uses 2).
    """

    __slots__ = ("period", "next_reset", "observer")

    def __init__(self, timing: DramTiming, tracker: ActivationTracker) -> None:
        divisor = getattr(tracker, "reset_divisor", 1)
        self.period = timing.refresh_window / divisor
        self.next_reset = self.period
        #: Observability probe: called with each window boundary (ns)
        #: *before* the tracker resets, so the per-window recorder
        #: samples the closing window's state intact. Controllers that
        #: cache ``next_reset`` in their hot loop only reach this on
        #: the (rare) reset path, so the no-op default costs nothing
        #: per activation.
        self.observer = noop

    def due(self, at: float) -> bool:
        return at >= self.next_reset

    def advance(self, at: float, tracker: ActivationTracker) -> int:
        """Fire every reset scheduled at or before ``at``; count them."""
        fired = 0
        while at >= self.next_reset:
            self.observer(self.next_reset)
            tracker.on_window_reset()
            self.next_reset += self.period
            fired += 1
        return fired
