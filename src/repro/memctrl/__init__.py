"""Memory-controller layer: scheduling, tracker hook, mitigation.

Two controllers share the tracker/mitigation machinery:
:class:`MemoryController` resolves requests in arrival order (fast,
used for the paper sweeps) and :class:`QueuedMemoryController` models
explicit FR-FCFS read queues and a watermark-drained write queue.
"""

from repro.memctrl.controller import ControllerStats, MemoryController
from repro.memctrl.mitigation import MitigationStats, VictimRefreshPolicy
from repro.memctrl.queued import (
    QueuedMemoryController,
    QueuedRunResult,
    QueuedStats,
)
from repro.memctrl.rowswap import RowIndirectionTable, RowSwapController

__all__ = [
    "ControllerStats",
    "MemoryController",
    "MitigationStats",
    "QueuedMemoryController",
    "QueuedRunResult",
    "QueuedStats",
    "RowIndirectionTable",
    "RowSwapController",
    "VictimRefreshPolicy",
]
