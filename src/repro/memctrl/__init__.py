"""Memory-controller layer: scheduling engines, tracker hook, mitigation.

Three scheduling *engines* share one design
(:class:`~repro.memctrl.base.BaseMemoryController`: construction,
tracker feedback, reporting): the fast in-order
:class:`MemoryController` (``engine="fast"``, used for the large
sweeps), the discrete-event :class:`QueuedMemoryController`
(``engine="queued"``) with FR-FCFS read queues and a
watermark-drained write queue, and the numpy-batched
:class:`VectorMemoryController` (``engine="vector"``), bit-identical
to ``fast`` but batching the hot path into array ops.
:func:`build_controller` selects one by name; every downstream
consumer (``simulate``, sweeps, the result cache, benchmarks) is
engine-agnostic.
"""

from typing import Optional

from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker
from repro.memctrl.base import (
    ENGINES,
    BaseMemoryController,
    ControllerStats,
    EngineRunOutcome,
    drive_in_order,
    normalize_engine,
)
from repro.memctrl.controller import MemoryController
from repro.memctrl.mitigation import MitigationStats, VictimRefreshPolicy
from repro.memctrl.queued import QueuedMemoryController, QueuedStats
from repro.memctrl.rowswap import RowIndirectionTable, RowSwapController
from repro.memctrl.vector import VectorMemoryController

#: Engine name -> controller class (the selectable-engine registry).
ENGINE_CLASSES = {
    "fast": MemoryController,
    "queued": QueuedMemoryController,
    "vector": VectorMemoryController,
}


def build_controller(
    engine: str,
    geometry: DramGeometry,
    timing: DramTiming,
    tracker: Optional[ActivationTracker] = None,
    blast_radius: int = 2,
    **engine_kwargs,
) -> BaseMemoryController:
    """Construct the controller for ``engine`` (one of :data:`ENGINES`).

    ``engine_kwargs`` pass engine-specific knobs through (e.g. the
    queued engine's ``write_queue_high``/``write_queue_low``).
    """
    cls = ENGINE_CLASSES[normalize_engine(engine)]
    return cls(
        geometry,
        timing,
        tracker,
        blast_radius=blast_radius,
        **engine_kwargs,
    )


__all__ = [
    "ENGINES",
    "ENGINE_CLASSES",
    "BaseMemoryController",
    "ControllerStats",
    "EngineRunOutcome",
    "MemoryController",
    "MitigationStats",
    "QueuedMemoryController",
    "QueuedStats",
    "RowIndirectionTable",
    "RowSwapController",
    "VectorMemoryController",
    "VictimRefreshPolicy",
    "build_controller",
    "drive_in_order",
    "normalize_engine",
]
