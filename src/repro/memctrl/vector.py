"""Vector engine: numpy slab-batched replay of the fast engine.

``engine=vector`` reproduces the fast engine's results *bit for bit*
(the golden-parity suite pins this) while doing the hot-path work in
numpy slabs instead of per-request Python.  Per slab (``_SLAB``
requests) the engine precomputes, as array ops:

- the issue chain (``drive_in_order``'s program-order arrival times)
  as a carry-prepended ``np.cumsum`` — numpy's cumsum accumulates
  sequentially, so the float additions happen in the exact order the
  scalar loop performs them;
- the refresh-blackout adjustment and the *speculative* per-bank
  activation chain: each miss is assumed conflict-free
  (``act = adjust(t + tRP)``), and the sparse positions where that is
  wrong (a same-bank predecessor still holds the bank — ~10% of
  random traffic, clustered around refresh blackouts) are repaired
  with the exact scalar arithmetic in ascending order, cascading
  along per-bank successor links until the repair is absorbed;
- the data-bus chain with the same speculate-then-repair scheme per
  channel;
- the MLP-window *bind* mask (``completion[i-mlp] > arrival[i]``) —
  the one event that invalidates the cumsum basis, handled by a
  scalar replay until the window clears plus a rebuild of the
  time-dependent arrays for the slab's suffix.

Crucially the bank/hit/channel *structure* of a slab is timing
independent: which element hits, which bank it goes to and who its
same-bank predecessor is depend only on the request stream.  So a
tracker escape mid-slab invalidates nothing but the banks and
channels the scalar excursion touched — those get exact scalar
patches at their next occurrence (cascading while the patch changes
anything) and the rest of the slab's array work stays committed.

Tracker interaction goes through a per-slab *batch plan*
(:meth:`repro.interfaces.ActivationTracker.plan_batch`): ``classify``
finds the first activation that cannot be applied out of order (a
mitigation, a GCT→RCT spill, metadata traffic), ``commit`` applies a
clean segment wholesale.  Trackers without a specialized plan but
with an ``apply_batch`` hook get the windowed :class:`_GenericPlan`
adapter.  Escaping activations replay through the inherited scalar
``access`` path — tracker, feedback worklist, victim refreshes and
all — with the banks they touch synced lazily from the walked arrays
via the overridden feedback hooks.

Float exactness rests on three rules: sequential folds (total
latency, per-channel bus busy time) are carry-prepended cumsums or
in-order Python sums, never ``np.sum`` (which pairs); elementwise
array ops apply the same IEEE operations the scalar loop applies; and
every repaired/patched position recomputes with the exact scalar
expressions from ``Bank.access``.

Whole-run fallbacks (the engine silently behaves like ``fast``, which
is bit-identical by the PR 4 parity guarantee): traces that do not
expose ``chunks()``, timings with an active rank-activation window
(``t_faw``/``t_rrd`` > 0) or ``t_rcd > t_rc``, trackers whose
``apply_batch`` returns ``None`` (the default), and chunks containing
negative gaps.
"""

from __future__ import annotations

from bisect import bisect_left, insort

import numpy as np

from repro.memctrl.base import EngineRunOutcome
from repro.memctrl.controller import MemoryController

__all__ = ["VectorMemoryController"]

#: Slab size cap: big enough to amortize the structural work (argsort,
#: chain links, per-bank position lists) over many requests.  The
#: time-dependent arrays are NOT built slab-at-once: ``build_times``
#: stops at a horizon just past the next refresh blackout (blackouts
#: spawn MLP-bind drains that would invalidate anything built beyond
#: them), and the walk rebuilds from there when it arrives.
_SLAB = 2048

#: Elements built past a blackout's end at each horizon: enough to
#: contain the bind cluster the blackout causes plus its drain.
_SLAB_TAIL = 64

_EMPTY_ROWS = np.empty(0, dtype=np.int64)


def _adjust_sorted(x: np.ndarray, t_refi: float, t_rfc: float) -> np.ndarray:
    """Refresh-blackout adjust of an ascending time array, bit-exact.

    Equals the scalar ``off = v % t_refi; v + (t_rfc - off) if off <
    t_rfc else v`` per element: ``t_refi * k`` is an exact product and
    the difference ``v - t_refi*k`` is small relative to ``v``, so the
    float subtraction is exact and equal to ``fmod``'s remainder — the
    patched expression then performs the scalar path's own IEEE ops.
    Since ``x`` is ascending, each refresh window's affected span is a
    contiguous slice found by two binary searches, replacing a full
    modulo + select over the array.
    """
    out = x.copy()
    k_hi = int(x[-1] / t_refi) + 1
    for k in range(max(0, int(x[0] / t_refi) - 1), k_hi + 1):
        base = t_refi * k
        lo = int(x.searchsorted(base))
        hi = int(x.searchsorted(base + t_rfc))
        if hi > lo:
            xw = x[lo:hi]
            out[lo:hi] = xw + (t_rfc - (xw - base))
    return out


class _GenericPlan:
    """Batch plan adapter over a tracker's ``apply_batch`` hook.

    Used for trackers that opt into batching (``apply_batch`` returns
    a mask) but do not provide a specialized ``plan_batch``.
    Classification runs over a bounded window because an escape
    replay invalidates any earlier classification.
    """

    WINDOW = 1024

    def __init__(self, tracker, rows) -> None:
        self._apply = tracker.apply_batch
        self._rows = rows

    def classify(self, lo: int, hi: int):
        """First escape in [lo, hi) → ``(index, checked_hi)``.

        ``index`` is -1 if the checked prefix is clean, -2 if the
        tracker withdrew batching (``apply_batch`` returned None).
        """
        win_hi = min(hi, lo + self.WINDOW)
        flags = self._apply(self._rows[lo:win_hi], None, commit=False)
        if flags is None:
            return -2, win_hi
        if flags.any():
            return lo + int(np.argmax(flags)), win_hi
        return -1, win_hi

    def commit(self, lo: int, hi: int, skip) -> None:
        """Apply [lo, hi) minus the ``skip`` positions (row hits)."""
        if skip:
            keep = np.ones(hi - lo, dtype=bool)
            keep[np.asarray(skip, dtype=np.int64) - lo] = False
            rows = self._rows[lo:hi][keep]
        else:
            rows = self._rows[lo:hi]
        if not len(rows):
            return
        mask = self._apply(rows, None, commit=True)
        if mask is None or mask.any():
            raise RuntimeError(
                "apply_batch refused to commit a batch it classified"
                " as escape-free"
            )


class VectorMemoryController(MemoryController):
    """Numpy-batched in-order controller, bit-identical to ``fast``."""

    engine = "vector"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Non-None while the vector loop runs: banks/channels the
        #: current scalar excursion touched (feedback hooks record
        #: them so the engine knows which speculative chains to patch
        #: afterwards).
        self._vec_touched = None
        self._vec_touched_ch = None
        #: Lazily syncs one bank object from the walked arrays before
        #: a feedback hook operates on it.
        self._vec_sync = None

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def run_trace(self, trace, mlp: int = 16) -> EngineRunOutcome:
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        timing = self.timing
        batchable = (
            getattr(trace, "chunks", None) is not None
            and timing.t_faw == 0
            and timing.t_rrd == 0
            and timing.t_rcd <= timing.t_rc
            and timing.t_rfc < timing.t_refi
            and self.tracker.apply_batch(_EMPTY_ROWS, None, commit=False)
            is not None
        )
        if not batchable:
            return super().run_trace(trace, mlp)
        try:
            self._vec_touched = set()
            self._vec_touched_ch = set()
            return self._run_vector(trace, mlp)
        finally:
            self._vec_touched = None
            self._vec_touched_ch = None
            self._vec_sync = None

    # FeedbackHandler hooks: during vector execution, bank objects are
    # synced lazily from the walked arrays, so slow-path work that is
    # about to *use* a bank pulls it up to date first (and records it,
    # so its speculative successors get patched afterwards).

    def perform_meta_access(self, meta, at: float) -> bool:
        touched = self._vec_touched
        if touched is not None:
            bank = meta.row_id // self._rows_per_bank
            self._vec_sync(bank)
            touched.add(bank)
            self._vec_touched_ch.add(bank // self._banks_per_channel)
        return super().perform_meta_access(meta, at)

    def perform_victim_refresh(self, victim_row: int, at: float) -> bool:
        touched = self._vec_touched
        if touched is not None:
            bank = victim_row // self._rows_per_bank
            self._vec_sync(bank)
            touched.add(bank)
        return super().perform_victim_refresh(victim_row, at)

    # ------------------------------------------------------------------
    # Vector path
    # ------------------------------------------------------------------

    def _run_vector(self, trace, mlp: int) -> EngineRunOutcome:
        banks = self.banks
        buses = self.buses
        stats = self.stats
        tracker = self.tracker
        window_sched = self._window
        access = self.access
        nb = len(banks)
        nchan = len(buses)
        bpc = self._banks_per_channel
        rows_per_bank = self._rows_per_bank
        timing = self.timing
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc
        t_rc = timing.t_rc
        t_rp = timing.t_rp
        t_rcd = timing.t_rcd
        t_cas = timing.t_cas
        t_burst = timing.t_burst
        touched = self._vec_touched
        touched_ch = self._vec_touched_ch

        # Run state mirroring the fused scalar loop exactly.
        window = [0.0] * mlp
        issue = 0.0
        total_latency = 0.0
        count = 0
        next_reset = window_sched.next_reset

        plan_of = getattr(tracker, "plan_batch", None)

        def make_plan(rows):
            plan = plan_of(rows) if plan_of is not None else None
            return plan if plan is not None else _GenericPlan(tracker, rows)

        for chunk in trace.chunks():
            g_c = np.asarray(chunk.gaps_ns, dtype=np.float64)
            n_c = len(g_c)
            if n_c == 0:
                continue
            r_c = np.asarray(chunk.rows, dtype=np.int64)
            l_c = np.asarray(chunk.lines, dtype=np.int32)
            w_c = np.asarray(chunk.writes, dtype=bool)

            if bool(np.any(g_c < 0.0)):
                # Negative gaps break the monotone cumsum basis; the
                # whole chunk replays scalarly (bank/bus objects are
                # authoritative between slabs).
                for i in range(n_c):
                    earliest = issue + g_c[i]
                    slot = count % mlp
                    start = window[slot]
                    if start < earliest:
                        start = earliest
                    issue = start
                    done = access(
                        start, int(r_c[i]), int(l_c[i]), bool(w_c[i])
                    )
                    window[slot] = done
                    total_latency += done - start
                    count += 1
                next_reset = window_sched.next_reset
                continue

            base = 0
            while base < n_c:
                # ============ one slab ============
                m = min(n_c - base, _SLAB)
                hi_c = base + m
                r_s = r_c[base:hi_c]
                l_s = l_c[base:hi_c]
                w_s = w_c[base:hi_c]
                g_s = g_c[base:hi_c]

                # ---- timing-independent structure ----
                bk = r_s // rows_per_bank
                lr = r_s - bk * rows_per_bank
                d = l_s * t_burst
                order = np.argsort(bk, kind="stable")
                sbk = bk[order]
                run_start = np.empty(m, dtype=bool)
                run_start[0] = True
                if m > 1:
                    run_start[1:] = sbk[1:] != sbk[:-1]
                prev_s = np.empty(m, dtype=np.int64)
                prev_s[0] = -1
                if m > 1:
                    prev_s[1:] = order[:-1]
                prev_s[run_start] = -1
                psb = np.empty(m, dtype=np.int64)
                psb[order] = prev_s
                # Per-bank program-ordered position arrays (for lazy
                # object sync and successor lookup after escapes).
                starts = np.nonzero(run_start)[0].tolist()
                starts.append(m)
                gp = [None] * nb
                for k in range(len(starts) - 1):
                    gp[int(sbk[starts[k]])] = order[
                        starts[k] : starts[k + 1]
                    ]
                # Open-row-before and the hit mask.  Every demand
                # element (hit or miss) leaves its own row open, so
                # open_before is simply the previous same-bank local
                # row; entering positions compare against the object
                # (authoritative at slab entry).
                open_before = lr[np.maximum(psb, 0)]
                hit = (open_before == lr) & (psb >= 0)
                for p in np.nonzero(psb < 0)[0].tolist():
                    orow = banks[int(bk[p])].open_row
                    if orow is not None and orow == int(lr[p]):
                        hit[p] = True
                miss = ~hit
                # Previous-miss-same-bank links (the activation chain
                # skips hits: they change neither next-act nor
                # row-ready).  Encoding trick: bank-offset positions
                # keep maximum.accumulate from crossing bank runs.
                enc = np.where(miss[order], order + 1, 0) + sbk * np.int64(
                    m + 1
                )
                acc = np.maximum.accumulate(enc)
                accs = np.empty(m, dtype=np.int64)
                accs[0] = 0
                if m > 1:
                    accs[1:] = acc[:-1]
                rel = accs - sbk * np.int64(m + 1)
                plm_s = np.where(rel > 0, rel - 1, np.int64(-1))
                plm = np.empty(m, dtype=np.int64)
                plm[order] = plm_s
                # Forward links of the same chain (next miss, same
                # bank): conflict repairs in ``build_times`` propagate
                # down these, and each miss has at most one successor.
                nmm = np.full(m, -1, dtype=np.int64)
                vpl = miss & (plm >= 0)
                nmm[plm[vpl]] = np.nonzero(vpl)[0]
                nmm_l = nmm.tolist()
                # Channel structure: per-channel program-ordered
                # positions and prev/next links (banks are contiguous
                # per channel, but program order within a channel is
                # not the bank-sorted order).
                ch = bk // bpc
                pc = np.full(m, -1, dtype=np.int64)
                ncx = np.full(m, -1, dtype=np.int64)
                cpos = [None] * nchan
                cpos_l = [None] * nchan
                cd_l = [None] * nchan
                for ci in range(nchan):
                    posc = np.nonzero(ch == ci)[0]
                    cpos[ci] = posc
                    cpos_l[ci] = posc.tolist()
                    cd_l[ci] = d[posc].tolist()
                    if len(posc) > 1:
                        pc[posc[1:]] = posc[:-1]
                        ncx[posc[:-1]] = posc[1:]
                gp_l = [None if p is None else p.tolist() for p in gp]
                act_banks = [
                    b for b in range(nb) if gp_l[b] is not None
                ]

                s_cum_lines = np.empty(m + 1, dtype=np.int64)
                s_cum_lines[0] = 0
                s_cum_lines[1:] = np.cumsum(l_s, dtype=np.int64)
                m_cum = np.empty(m + 1, dtype=np.int64)
                m_cum[0] = 0
                m_cum[1:] = np.cumsum(miss)
                lr_l = lr.tolist()
                bk_l = bk.tolist()
                d_l = d.tolist()
                synced_to = [0] * nb
                count0 = count  # global count at slab element 0
                bind_list: list = []
                forced: list = []
                noopen_set: set = set()
                reset_idx = m
                # Time-dependent arrays, filled by build_times().
                s = t = a = col = fd = c = None
                cur_pos = [0]  # walk frontier, read by sync_bank
                built = [0]  # build horizon, set by build_times

                def sync_bank(b: int) -> None:
                    """Bring bank object ``b`` up to date with the arrays.

                    Only committed (never replayed) elements are read:
                    a replayed element always bumps ``synced_to`` for
                    its own bank past itself immediately.
                    """
                    posb = gp_l[b]
                    if posb is None:
                        return
                    lo_b = synced_to[b]
                    p_now = cur_pos[0]
                    if lo_b >= p_now:
                        return
                    k1 = bisect_left(posb, p_now)
                    k0 = bisect_left(posb, lo_b)
                    synced_to[b] = p_now
                    if k1 <= k0:
                        return
                    bank = banks[b]
                    jl = int(posb[k1 - 1])
                    bank.open_row = lr_l[jl]
                    k = k1 - 1
                    while k >= k0:
                        j = int(posb[k])
                        if not hit[j]:
                            av = a[j]
                            bank._next_act_at = av + t_rc
                            bank._row_ready_at = av + t_rcd
                            break
                        k -= 1

                self._vec_sync = sync_bank

                def sync_active() -> None:
                    """``sync_bank`` over every active bank, inlined.

                    Builds re-sync all banks at once (hundreds of
                    times per slab), so the per-call overhead of the
                    scalar helper is worth hoisting into one loop.
                    """
                    p_now = cur_pos[0]
                    for b in act_banks:
                        if synced_to[b] >= p_now:
                            continue
                        posb = gp_l[b]
                        lo_b = synced_to[b]
                        k1 = bisect_left(posb, p_now)
                        k0 = bisect_left(posb, lo_b)
                        synced_to[b] = p_now
                        if k1 <= k0:
                            continue
                        bank = banks[b]
                        jl = posb[k1 - 1]
                        bank.open_row = lr_l[jl]
                        k = k1 - 1
                        while k >= k0:
                            j = posb[k]
                            if not hit[j]:
                                av = a[j]
                                bank._next_act_at = av + t_rc
                                bank._row_ready_at = av + t_rcd
                                break
                            k -= 1

                def bus_recompute(p: int) -> bool:
                    """Recompute c[p] from the chain; True if changed.

                    A pending predecessor chains through ``c``; an
                    executed one defers to the bus object — scalar
                    excursions can push ``free_at`` past the last
                    demand completion (metadata bursts), and only the
                    object knows.  Stops at the build horizon: the
                    arrays beyond it are rebuilt from the objects
                    before the walk gets there.
                    """
                    if p >= built[0]:
                        return False
                    prev = int(pc[p])
                    if prev >= cur_pos[0]:
                        base_c = c[prev]
                    else:
                        base_c = buses[bk_l[p] // bpc].free_at
                    f = fd[p]
                    x = f if f >= base_c else base_c
                    new_c = x + d_l[p]
                    if new_c != c[p]:
                        c[p] = new_c
                        j2 = p + mlp
                        if j2 < built[0] and c[p] > s[j2]:
                            k2 = bisect_left(bind_list, j2)
                            if k2 == len(bind_list) or bind_list[k2] != j2:
                                insort(bind_list, j2)
                        return True
                    return False

                def bus_cascade(p: int) -> None:
                    while p >= 0 and bus_recompute(p):
                        p = int(ncx[p])

                def bus_patch(ci: int, after: int) -> None:
                    """Reflect an excursion's bus occupancy in the chain.

                    The first element of channel ``ci`` after ``after``
                    re-bases on the bus object's ``free_at`` (which the
                    excursion just advanced — ``bus_recompute`` reads
                    the object for executed predecessors); the rest
                    re-chains until absorbed.
                    """
                    posc = cpos_l[ci]
                    k = bisect_left(posc, after + 1)
                    if k < len(posc):
                        bus_cascade(posc[k])

                def patch_bank(b: int, after: int) -> None:
                    """Re-verify bank ``b``'s chain after a scalar excursion.

                    The bank object is authoritative (the excursion
                    just updated it); walk the bank's occurrences after
                    ``after``, re-deriving hit/act/column with the
                    exact scalar arithmetic, until absorbed.
                    """
                    posb = gp_l[b]
                    if posb is None:
                        return
                    k = bisect_left(posb, after + 1)
                    n_pos = len(posb)
                    bank = banks[b]
                    orow = bank.open_row
                    row_c = -1 if orow is None else orow
                    na_c = bank._next_act_at
                    rr_c = bank._row_ready_at
                    while k < n_pos:
                        p = int(posb[k])
                        if p >= built[0]:
                            # Beyond the build horizon: nothing
                            # speculative exists to patch yet.
                            return
                        new_hit = row_c == lr_l[p]
                        if new_hit != bool(hit[p]):
                            # Structure flip (a refresh closed the row
                            # or changed it): force this element down
                            # the scalar path and stop patching.
                            kf = bisect_left(forced, p)
                            if kf == len(forced) or forced[kf] != p:
                                insort(forced, p)
                            return
                        changed = False
                        t_p = t[p]
                        if new_hit:
                            cs = t_p if t_p >= rr_c else rr_c
                        else:
                            x = t_p if t_p >= na_c else na_c
                            if row_c >= 0:
                                if rr_c > x:
                                    x = rr_c
                                x += t_rp
                                noopen_set.discard(p)
                            else:
                                noopen_set.add(p)
                            off = x % t_refi
                            if off < t_rfc:
                                x += t_rfc - off
                            if x != a[p]:
                                a[p] = x
                                changed = True
                            na_c = x + t_rc
                            rr_c = x + t_rcd
                            cs = x + t_rcd
                        row_c = lr_l[p]
                        if cs != col[p]:
                            col[p] = cs
                            fd[p] = cs + t_cas
                            changed = True
                            bus_cascade(p)
                        if not changed:
                            return
                        k += 1

                def build_times(q: int) -> None:
                    """(Re)compute the time-dependent arrays from ``q``.

                    Needs every bank/bus object authoritative through
                    position ``q``; for q > 0 the banks are synced
                    here (replays already updated the ones they hit).

                    Arrivals ``s`` are written for the whole suffix
                    (one cheap cumsum, and ``reset_idx`` needs them),
                    but the expensive derived arrays stop at a
                    *horizon* just past the next refresh blackout:
                    blackouts spawn bind drains whose rebuild would
                    throw that work away.  ``built[0]`` records the
                    horizon; the walk never commits past it and
                    rebuilds from it on arrival.  Beyond the horizon
                    ``s`` is a lower bound on the true arrivals
                    (undetected binds only push them later), which
                    keeps the full-suffix ``reset_idx`` sound: below
                    the horizon it is exact; if it lands at/after the
                    horizon the walk rebuilds there first, and an
                    at-horizon hit is provably the true reset element
                    (its speculative arrival already crossed
                    ``next_reset``, so the true one has too).
                    """
                    nonlocal s, t, a, col, fd, c, reset_idx
                    if q >= m:
                        built[0] = m
                        return
                    if q:
                        cur_pos[0] = q
                        sync_active()
                    n_r = m - q
                    arr = np.empty(n_r + 1, dtype=np.float64)
                    arr[0] = issue
                    arr[1:] = g_s[q:]
                    s_r = np.cumsum(arr)[1:]
                    if q == 0:
                        s = s_r
                        t = np.empty(m, dtype=np.float64)
                        a = np.empty(m, dtype=np.float64)
                        col = np.empty(m, dtype=np.float64)
                        fd = np.empty(m, dtype=np.float64)
                        c = np.empty(m, dtype=np.float64)
                    else:
                        s[q:] = s_r
                    reset_idx = q + int(
                        np.searchsorted(s_r, next_reset, "left")
                    )
                    bu = m
                    if n_r > _SLAB_TAIL:
                        blk = t_refi * (float(s_r[0]) // t_refi + 1.0)
                        cut = (
                            int(s_r.searchsorted(blk + t_rfc))
                            + _SLAB_TAIL
                        )
                        if cut < n_r:
                            bu = q + cut
                    built[0] = bu
                    t_r = _adjust_sorted(s_r[: bu - q], t_refi, t_rfc)
                    cand_r = _adjust_sorted(t_r + t_rp, t_refi, t_rfc)
                    t[q:bu] = t_r
                    a[q:bu] = cand_r
                    # Conflict speculation repair.  Entering misses
                    # (no in-span predecessor) evaluate against their
                    # bank object, exactly as Bank.access's miss path.
                    plm_r = plm[q:bu]
                    in_chain = plm_r >= q
                    m_r = miss[q:bu]
                    a_loc = a[q:bu]
                    ent = np.nonzero(m_r & ~in_chain)[0]
                    if ent.size:
                        xs = []
                        for rel, x in zip(
                            ent.tolist(), t_r[ent].tolist()
                        ):
                            p = rel + q
                            bank = banks[bk_l[p]]
                            na = bank._next_act_at
                            if x < na:
                                x = na
                            if bank.open_row is not None:
                                rr = bank._row_ready_at
                                if rr > x:
                                    x = rr
                                x += t_rp
                                noopen_set.discard(p)
                            else:
                                noopen_set.add(p)
                            off = x % t_refi
                            if off < t_rfc:
                                x += t_rfc - off
                            xs.append(x)
                        a_loc[ent] = xs
                    # In-chain conflicts (predecessor still holds the
                    # bank): a conflicted miss takes adjust((a_pred +
                    # t_rc) + t_rp) — the same float additions, in the
                    # same order, as the scalar miss path (the
                    # row-ready term a_pred + t_rcd never binds; it is
                    # dominated by a_pred + t_rc).  One vectorized
                    # pass handles the initial conflict wave; repairs
                    # only push activations later (monotone), so the
                    # few elements whose value changed can at most
                    # flip their chain successor — those propagate in
                    # a scalar walk down the ``nmm_l`` links, in
                    # Python floats (the same IEEE adds).
                    ch_i = np.nonzero(m_r & in_chain)[0]
                    if ch_i.size:
                        pred_i = plm_r[ch_i] - q
                        t_ch = t_r[ch_i]
                        na = a_loc[pred_i] + t_rc
                        conf = na > t_ch
                        if conf.any():
                            x = na[conf] + t_rp
                            off = np.fmod(x, t_refi)
                            x = np.where(
                                off < t_rfc, x + (t_rfc - off), x
                            )
                            tgt = ch_i[conf]
                            ch_m = (tgt + q).tolist()
                            if noopen_set:
                                noopen_set.difference_update(ch_m)
                            chg = a_loc[tgt] != x
                            a_loc[tgt] = x
                            stack = (
                                [
                                    p
                                    for p, cg in zip(
                                        ch_m, chg.tolist()
                                    )
                                    if cg
                                ]
                                if chg.any()
                                else []
                            )
                            while stack:
                                j = stack.pop()
                                k = nmm_l[j]
                                if k < 0 or k >= bu:
                                    continue
                                na_k = float(a[j]) + t_rc
                                if na_k <= float(t[k]):
                                    continue
                                xk = na_k + t_rp
                                off_k = xk % t_refi
                                if off_k < t_rfc:
                                    xk += t_rfc - off_k
                                if noopen_set:
                                    noopen_set.discard(k)
                                if xk != float(a[k]):
                                    a[k] = xk
                                    stack.append(k)
                    # Columns / first-data (vector, from repaired a).
                    a_pred = a[np.maximum(plm_r, 0)]
                    col[q:bu] = np.where(
                        hit[q:bu],
                        np.maximum(t_r, a_pred + t_rcd),
                        a[q:bu] + t_rcd,
                    )
                    # Entering hits: row-ready comes from the object.
                    enth = np.nonzero(hit[q:bu] & ~in_chain)[0]
                    if enth.size:
                        cs = []
                        for rel, t_p in zip(
                            enth.tolist(), t_r[enth].tolist()
                        ):
                            rr = banks[bk_l[rel + q]]._row_ready_at
                            cs.append(t_p if t_p >= rr else rr)
                        col[q:bu][enth] = cs
                    fd[q:bu] = col[q:bu] + t_cas
                    c[q:bu] = fd[q:bu] + d[q:bu]
                    # Bus chain repairs, exact but sparse: the scalar
                    # recurrence c[k] = max(fd[k], c[k-1]) + d[k]
                    # matches the speculative fd + d except inside
                    # busy runs (c[k] = c[k-1] + d[k]).  Run starts
                    # are the spec-vs-spec violations (one nonzero per
                    # channel); runs themselves walk in Python floats
                    # — the same IEEE adds the scalar loop performs.
                    for ci in range(nchan):
                        kq = bisect_left(cpos_l[ci], q)
                        kb = bisect_left(cpos_l[ci], bu)
                        posr = cpos[ci][kq:kb]
                        n_p = len(posr)
                        if n_p == 0:
                            continue
                        fd_loc = fd[posr]
                        c_loc = c[posr]
                        viol0 = np.empty(n_p, dtype=bool)
                        viol0[0] = fd_loc[0] < buses[ci].free_at
                        if n_p > 1:
                            viol0[1:] = fd_loc[1:] < c_loc[:-1]
                        vidx = np.nonzero(viol0)[0].tolist()
                        if not vidx:
                            continue
                        c_l = c_loc.tolist()
                        fd_ll = fd_loc.tolist()
                        d_ll = d[posr].tolist()
                        for iv in vidx:
                            if iv == 0:
                                carry = buses[ci].free_at
                            else:
                                carry = c_l[iv - 1]
                            i = iv
                            if fd_ll[i] >= carry:
                                # Already handled inside an earlier
                                # run that overran this start.
                                continue
                            while i < n_p and fd_ll[i] < carry:
                                carry = carry + d_ll[i]
                                c_l[i] = carry
                                i += 1
                        c[posr] = c_l
                    # MLP-window bind candidates (built range only;
                    # later ones are re-detected at the next horizon).
                    bind_list.clear()
                    if q < mlp:
                        for j in range(q, min(mlp, bu)):
                            if window[(count0 + j) % mlp] > s[j]:
                                bind_list.append(j)
                    lo_j = max(q, mlp)
                    if lo_j < bu:
                        bm = np.nonzero(
                            c[lo_j - mlp : bu - mlp] > s[lo_j:bu]
                        )[0]
                        bind_list.extend((bm + lo_j).tolist())

                # Per-slab deferred bank statistics.
                segs = []

                def commit_segment(lo: int, e: int) -> None:
                    nonlocal issue, count, total_latency
                    if e <= lo:
                        return
                    plan.commit(lo, e, _hits_in(hit, lo, e))
                    seg_n = e - lo
                    stats.demand_accesses += seg_n
                    stats.demand_line_transfers += int(
                        s_cum_lines[e] - s_cum_lines[lo]
                    )
                    stats.tracker_activations += int(m_cum[e] - m_cum[lo])
                    segs.append((lo, e))
                    first = e - mlp if seg_n >= mlp else lo
                    if seg_n <= 128:
                        # Small segment: fold in Python (same float
                        # adds in the same order as the cumsum below;
                        # numpy dispatch would dominate at this size).
                        c_l = c[lo:e].tolist()
                        s_l = s[lo:e].tolist()
                        acc = total_latency
                        mx = self.end_time
                        for cv, sv in zip(c_l, s_l):
                            acc += cv - sv
                            if cv > mx:
                                mx = cv
                        total_latency = acc
                        self.end_time = mx
                        # Ring: the last min(mlp, n) completions land
                        # in their slots (older ones were overwritten
                        # anyway).
                        for j in range(first, e):
                            window[(count0 + j) % mlp] = c_l[j - lo]
                    else:
                        # Latency fold: sequential cumsum with carry.
                        arr = np.empty(seg_n + 1, dtype=np.float64)
                        arr[0] = total_latency
                        arr[1:] = c[lo:e] - s[lo:e]
                        total_latency = float(np.cumsum(arr)[-1])
                        seg_max = float(np.max(c[lo:e]))
                        if seg_max > self.end_time:
                            self.end_time = seg_max
                        for j in range(first, e):
                            window[(count0 + j) % mlp] = float(c[j])
                    # Bus objects advance to the segment's last element
                    # per channel (free_at) and fold the segment's
                    # burst durations in order (busy_time).
                    for ci in range(nchan):
                        posc = cpos_l[ci]
                        k1 = bisect_left(posc, e)
                        k0 = bisect_left(posc, lo)
                        if k1 > k0:
                            bus = buses[ci]
                            bus.free_at = float(c[posc[k1 - 1]])
                            acc_b = bus.busy_time
                            dl = cd_l[ci]
                            for k in range(k0, k1):
                                acc_b += dl[k]
                            bus.busy_time = acc_b
                    issue = float(s[e - 1])
                    count = count0 + e

                def replay_one(r: int, do_patch: bool = True) -> bool:
                    """Scalar-replay element ``r``; returns bound flag.

                    Runs the full scalar path — tracker, feedback
                    worklist, window resets — then patches the touched
                    banks' and channels' speculative chains (skipped
                    when the element bound, or during a bind drain: a
                    suffix rebuild follows anyway).
                    """
                    nonlocal issue, count, total_latency, next_reset
                    cur_pos[0] = r
                    b = bk_l[r]
                    sync_bank(b)
                    synced_to[b] = r + 1
                    touched.clear()
                    touched_ch.clear()
                    # Arrival from the running issue recurrence, not
                    # s[r]: after a bound predecessor the precomputed
                    # arrivals are stale.  Where s[r] is valid the two
                    # are bit-identical (cumsum adds sequentially).
                    earliest = issue + float(g_s[r])
                    slot = (count0 + r) % mlp
                    start = window[slot]
                    bound = start > earliest
                    if not bound:
                        start = earliest
                    issue = start
                    done = access(
                        start, int(r_s[r]), int(l_s[r]), bool(w_s[r])
                    )
                    window[slot] = done
                    total_latency += done - start
                    count = count0 + r + 1
                    c[r] = done
                    s[r] = start
                    next_reset = window_sched.next_reset
                    cur_pos[0] = r + 1
                    for tb in touched:
                        synced_to[tb] = r + 1
                    if do_patch and not bound:
                        patch_bank(b, r)
                        for tb in touched:
                            if tb != b:
                                patch_bank(tb, r)
                        touched_ch.add(b // bpc)
                        for ci in touched_ch:
                            bus_patch(ci, r)
                        j2 = r + mlp
                        if j2 < built[0] and c[r] > s[j2]:
                            k2 = bisect_left(bind_list, j2)
                            if k2 == len(bind_list) or bind_list[k2] != j2:
                                insort(bind_list, j2)
                    return bound

                def drain_bind(p0: int) -> int:
                    """Replay from a bind until the window clears, then
                    re-vectorize the slab's suffix."""
                    p = p0
                    streak = 0
                    while p < m:
                        if replay_one(p, False):
                            streak = 0
                        else:
                            streak += 1
                            if streak >= 2:
                                p += 1
                                break
                        p += 1
                    build_times(p)
                    return p

                plan = make_plan(r_s)
                build_times(0)

                # ---- the walk ----
                pos = 0
                while pos < m:
                    cur_pos[0] = pos
                    if pos >= built[0]:
                        # Arrived at the build horizon: extend it.
                        build_times(pos)
                    # Next verified bind at/after pos (candidates are
                    # add-only; staleness is filtered here).
                    bound_at = m
                    while bind_list and bind_list[0] < pos:
                        bind_list.pop(0)
                    while bind_list:
                        j = bind_list[0]
                        if j < mlp:
                            wv = window[(count0 + j) % mlp]
                        else:
                            wv = c[j - mlp]
                        if wv > s[j]:
                            bound_at = j
                            break
                        bind_list.pop(0)
                    lim = min(m, reset_idx, bound_at, built[0])
                    while forced and forced[0] < pos:
                        forced.pop(0)
                    f_esc = forced[0] if forced else m
                    esc = -1
                    checked = lim
                    if lim > pos:
                        esc, checked = plan.classify(pos, lim)
                        if esc == -2:
                            # Tracker withdrew batching: the rest of
                            # the slab replays scalarly.
                            sync_active()
                            for i in range(pos, m):
                                earliest = issue + float(g_s[i])
                                slot = (count0 + i) % mlp
                                start = window[slot]
                                if start < earliest:
                                    start = earliest
                                issue = start
                                done = access(
                                    start,
                                    int(r_s[i]),
                                    int(l_s[i]),
                                    bool(w_s[i]),
                                )
                                window[slot] = done
                                total_latency += done - start
                                count = count0 + i + 1
                            next_reset = window_sched.next_reset
                            for b in range(nb):
                                synced_to[b] = m
                            pos = m
                            break
                    if 0 <= f_esc < (esc if esc >= 0 else checked):
                        esc = f_esc
                    e = esc if esc >= 0 else min(checked, lim)
                    commit_segment(pos, e)
                    cur_pos[0] = e
                    if e == m:
                        pos = m
                        break
                    if esc >= 0:
                        if forced and forced[0] == esc:
                            forced.pop(0)
                        prev_reset = next_reset
                        bound = replay_one(esc)
                        pos = esc + 1
                        if next_reset != prev_reset:
                            plan = make_plan(r_s)
                            if pos < m:
                                reset_idx = pos + int(
                                    np.searchsorted(
                                        s[pos:], next_reset, "left"
                                    )
                                )
                        if bound:
                            pos = drain_bind(pos)
                        continue
                    if e == reset_idx and e < m:
                        prev_reset = next_reset
                        bound = replay_one(e)
                        pos = e + 1
                        plan = make_plan(r_s)
                        if pos < m:
                            reset_idx = pos + int(
                                np.searchsorted(s[pos:], next_reset, "left")
                            )
                        if bound:
                            pos = drain_bind(pos)
                        continue
                    if e == bound_at and e < m:
                        pos = drain_bind(e)
                        continue
                    # Classification horizon (generic plans): keep
                    # walking from the checked boundary.
                    pos = e

                # Slab epilogue: flush deferred bank stats, bring every
                # bank object up to date for the next slab.
                self._flush_bank_stats(
                    segs, bk, hit, noopen_set, l_s, w_s, nb
                )
                cur_pos[0] = m
                sync_active()
                base += m

        self._vec_sync = None
        end = max(window) if count else 0.0
        return EngineRunOutcome(
            end_time_ns=end, requests=count, total_latency_ns=total_latency
        )

    # ------------------------------------------------------------------
    # Deferred per-bank statistics
    # ------------------------------------------------------------------

    def _flush_bank_stats(self, segs, bk, hit, noopen_set, l_s, w_s, nb):
        """Batch-add DRAM activity stats for the walked segments.

        All fields are integer counters, so order does not matter; the
        totals match what the scalar loop would have accumulated
        request by request.
        """
        if not segs:
            return
        idx = np.concatenate([np.arange(a, e) for a, e in segs])
        bki = bk[idx]
        hiti = hit[idx]
        tot = np.bincount(bki, minlength=nb)
        hits_pb = np.bincount(bki[hiti], minlength=nb)
        noopen_pb = np.zeros(nb, dtype=np.int64)
        for p in noopen_set:
            for a, e in segs:
                if a <= p < e:
                    noopen_pb[bk[p]] += 1
                    break
        miss_pb = tot - hits_pb
        lines = l_s[idx].astype(np.float64)
        wmask = w_s[idx]
        wl = np.bincount(bki[wmask], weights=lines[wmask], minlength=nb)
        rl = np.bincount(bki[~wmask], weights=lines[~wmask], minlength=nb)
        banks = self.banks
        for b in np.nonzero(tot)[0]:
            st = banks[b].stats
            st.row_buffer_hits += int(hits_pb[b])
            st.row_buffer_misses += int(miss_pb[b])
            st.activations += int(miss_pb[b])
            st.precharges += int(miss_pb[b] - noopen_pb[b])
            st.read_lines += int(rl[b])
            st.write_lines += int(wl[b])


def _hits_in(hit, lo: int, e: int):
    """Positions of row-buffer hits inside [lo, e) (usually empty)."""
    seg = hit[lo:e]
    if not seg.any():
        return ()
    return (np.nonzero(seg)[0] + lo).tolist()
