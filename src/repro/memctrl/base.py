"""Shared engine surface of the memory-controller layer.

The repository ships three scheduling *engines* — the fast in-order
:class:`~repro.memctrl.controller.MemoryController`, the
discrete-event FR-FCFS
:class:`~repro.memctrl.queued.QueuedMemoryController`, and the
numpy-batched :class:`~repro.memctrl.vector.VectorMemoryController`
(bit-identical to ``fast``) — which differ only in *how* requests are
scheduled. Everything else is one design:

- construction: banks, channel buses, rank activation windows, the
  refresh timeline, the victim-refresh policy, the tracker-feedback
  worklist, and the window-reset schedule are wired identically;
- the tracker contract: every activation (demand, metadata, victim
  refresh) is reported through :class:`TrackerFeedback`, and the
  rate-control delay it returns is charged to the triggering request;
- the reporting surface consumed by :func:`repro.sim.simulator.simulate`
  and the DRAM power model: :class:`ControllerStats`, ``activity()``,
  ``total_refreshes()``, ``bus_utilization()`` and ``result_extras()``.

This module holds that shared design once.  Each engine subclasses
:class:`BaseMemoryController` and implements ``run_trace`` (trace in,
:class:`EngineRunOutcome` out) plus the physical feedback hooks, so
every downstream consumer — ``simulate``, sweeps, the result cache,
benchmarks — is engine-agnostic: pick an engine by name
(:data:`ENGINES`) and the rest of the pipeline is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.dram.address import AddressMapper
from repro.dram.bank import (
    Bank,
    ChannelBus,
    DramActivityStats,
    RankActWindow,
    RefreshTimeline,
    average_bus_utilization,
)
from repro.dram.timing import DramGeometry, DramTiming
from repro.interfaces import ActivationTracker, NullTracker
from repro.memctrl.feedback import TrackerFeedback, WindowResetSchedule
from repro.memctrl.mitigation import VictimRefreshPolicy

#: The selectable scheduling engines, in documentation order.
ENGINES: Tuple[str, ...] = ("fast", "queued", "vector")


def normalize_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged.

    Raises a self-explanatory ``ValueError`` otherwise — engine names
    travel through CLIs, spec strings, and cached configs, so the
    error must name the alternatives.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; available: " + ", ".join(ENGINES)
        )
    return engine


@dataclass
class ControllerStats:
    """Aggregate accounting shared by every engine."""

    demand_accesses: int = 0
    demand_line_transfers: int = 0
    meta_accesses: int = 0
    meta_line_transfers: int = 0
    victim_refreshes: int = 0
    tracker_activations: int = 0
    window_resets: int = 0
    #: Total activation delay charged by rate-control trackers (D-CBF).
    total_delay_ns: float = 0.0


@dataclass
class EngineRunOutcome:
    """What running one trace through one engine produces.

    Both engines return this shape (the fast engine via the in-order
    window loop, the queued engine from its scheduler), so one
    ``simulate`` path packages either into a ``RunResult``.
    """

    end_time_ns: float
    requests: int
    total_latency_ns: float

    @property
    def average_latency_ns(self) -> float:
        return self.total_latency_ns / self.requests if self.requests else 0.0


def drive_in_order(
    trace: Iterable[Tuple[float, int, int, bool]],
    access: Callable[[float, int, int, bool], float],
    mlp: int,
) -> EngineRunOutcome:
    """Replay a trace in order with a bounded in-flight window.

    Requests issue in program order, each no earlier than its
    program-driven arrival (previous issue + gap) and no earlier than
    the completion of the request ``mlp`` positions earlier (the
    window slot it reuses). This is the limited-MLP core model shared
    by the fast engine and :class:`repro.cpu.core.LimitedMlpCore`.

    ``trace`` is consumed strictly one tuple at a time with running
    state only, so any bounded-memory
    :class:`~repro.workloads.streaming.TraceSource` stream (chunked
    on-disk traces, external text readers) runs in chunk-sized peak
    memory here.
    """
    if mlp <= 0:
        raise ValueError("mlp must be positive")
    window = [0.0] * mlp
    issue = 0.0
    total_latency = 0.0
    count = 0
    for gap_ns, row_id, n_lines, is_write in trace:
        earliest = issue + gap_ns
        slot = count % mlp
        start = window[slot]
        if start < earliest:
            start = earliest
        issue = start
        done = access(start, row_id, n_lines, is_write)
        window[slot] = done
        total_latency += done - start
        count += 1
    end = max(window) if count else 0.0
    return EngineRunOutcome(
        end_time_ns=end, requests=count, total_latency_ns=total_latency
    )


class BaseMemoryController:
    """Construction and reporting shared by both engines.

    Subclasses provide the scheduling mechanism (``run_trace`` plus the
    ``perform_meta_access`` feedback hook); everything a downstream
    consumer touches — stats, activity/refresh/bus reporting, the
    tracker-feedback loop, window resets — lives here.
    """

    #: Engine name subclasses advertise (one of :data:`ENGINES`).
    engine: str = "base"
    #: Stats container an engine populates (queued extends it).
    stats_class = ControllerStats

    def __init__(
        self,
        geometry: DramGeometry,
        timing: DramTiming,
        tracker: Optional[ActivationTracker] = None,
        blast_radius: int = 2,
        count_mitigation_acts: bool = True,
        max_feedback_depth: int = 4,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.tracker = tracker if tracker is not None else NullTracker()
        self.mapper = AddressMapper(geometry)
        self.refresh = RefreshTimeline(timing)
        n_ranks = geometry.channels * geometry.ranks_per_channel
        self.rank_windows = [
            RankActWindow(timing.t_faw, timing.t_rrd) for _ in range(n_ranks)
        ]
        self.banks = [
            Bank(
                timing,
                self.refresh,
                act_window=self.rank_windows[
                    index // geometry.banks_per_rank
                ],
            )
            for index in range(geometry.total_banks)
        ]
        self.buses = [ChannelBus(timing) for _ in range(geometry.channels)]
        self.policy = VictimRefreshPolicy(self.mapper, blast_radius)
        #: Mitigation-induced activations are re-tracked (§5.2.1) up
        #: to this chain depth; see :class:`TrackerFeedback`.
        self.count_mitigation_acts = count_mitigation_acts
        self.max_feedback_depth = max_feedback_depth
        self._feedback = TrackerFeedback(
            self.tracker, self.policy, max_feedback_depth
        )
        self.stats = self.stats_class()
        self._rows_per_bank = geometry.rows_per_bank
        self._banks_per_channel = (
            geometry.ranks_per_channel * geometry.banks_per_rank
        )
        self._window = WindowResetSchedule(timing, self.tracker)
        self.end_time = 0.0

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def run_trace(self, trace, mlp: int = 16) -> EngineRunOutcome:
        """Replay one trace with at most ``mlp`` outstanding requests."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Tracker feedback loop
    # ------------------------------------------------------------------

    def _report_activation(self, row_id: int, at: float) -> float:
        """Feed one activation (plus all follow-up) into the tracker.

        Returns the total rate-control delay (ns) the tracker
        requested; engines charge it to the triggering request. The
        worklist itself lives in
        :class:`~repro.memctrl.feedback.TrackerFeedback`; the hooks
        below describe how each engine physically performs the
        requested metadata traffic and victim refreshes.
        """
        return self._feedback.drive(row_id, at, self)

    # FeedbackHandler hooks -------------------------------------------

    def on_tracker_activation(self, row_id: int) -> None:
        self.stats.tracker_activations += 1

    def perform_meta_access(self, meta, at: float) -> bool:
        raise NotImplementedError

    def perform_victim_refresh(self, victim_row: int, at: float) -> bool:
        self.banks[victim_row // self._rows_per_bank].refresh_row(at)
        self.stats.victim_refreshes += 1
        return self.count_mitigation_acts

    # ------------------------------------------------------------------
    # Window management and reporting
    # ------------------------------------------------------------------

    def _channel_of(self, row_id: int) -> int:
        return (row_id // self._rows_per_bank) // self._banks_per_channel

    def _advance_window(self, at: float) -> None:
        self.stats.window_resets += self._window.advance(at, self.tracker)

    def activity(self) -> DramActivityStats:
        """Merged command counts across all banks."""
        merged = DramActivityStats()
        for bank in self.banks:
            merged.merge(bank.stats)
        return merged

    def total_refreshes(self, until: Optional[float] = None) -> int:
        """REF commands issued to all ranks by ``until`` (power model)."""
        horizon = self.end_time if until is None else until
        per_rank = self.refresh.refreshes_before(horizon)
        return per_rank * self.geometry.channels * self.geometry.ranks_per_channel

    def bus_utilization(self) -> float:
        """Mean per-channel data-bus utilization, clamped to [0, 1]."""
        return average_bus_utilization(self.buses, self.end_time)

    def result_extras(self) -> Dict[str, object]:
        """Engine-specific result extras for ``RunResult.extra``.

        Every engine reports ``total_delay_ns`` (rate-control
        mitigation cost); the queued engine adds its scheduler
        counters.
        """
        return {"total_delay_ns": self.stats.total_delay_ns}

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------

    @property
    def window_period_ns(self) -> float:
        """Tracking-window period driving the per-window recorder."""
        return self._window.period

    def obs_snapshot(self) -> Dict[str, float]:
        """Cumulative controller counters for the per-window recorder.

        Restricted to stats every engine maintains *live*: the fast
        engine's fused loop batches its demand/activation counters
        into locals and flushes them after the trace, so only the
        counters updated through the feedback hooks (metadata traffic,
        victim refreshes) are trustworthy at a window boundary.
        """
        stats = self.stats
        return {
            "mc_meta_accesses": float(stats.meta_accesses),
            "mc_meta_line_transfers": float(stats.meta_line_transfers),
            "mc_victim_refreshes": float(stats.victim_refreshes),
        }

    def enable_observability(self, recorder, registry) -> None:
        """Swap the no-op probes for live ones (observed runs only).

        Called once at build time, before any request runs: the
        recorder snapshots the zeroed counters as its baseline, the
        window schedule's observer becomes the recorder, and the
        feedback worklist feeds a chain-length histogram. Unobserved
        controllers never run this, so their probe slots keep the
        no-op defaults — the zero-cost-when-off rule.
        """
        recorder.add_source(self.obs_snapshot)
        recorder.add_source(self.tracker.obs_snapshot)
        recorder.prime()
        self._window.observer = recorder.on_window_reset
        chain_hist = registry.histogram(
            "feedback_chain_length",
            bounds=(0, 1, 2, 4, 8, 16, 32),
            help_text="tracker-caused activations chained per slow-path"
            " event (meta accesses + victim refreshes fed back)",
        )
        self._feedback.observer = chain_hist.observe

    def publish_metrics(self, registry) -> None:
        """End-of-run stats publication (observed runs only).

        Every field of the engine's stats dataclass becomes an
        ``mc_``-prefixed counter — the queued engine's extra scheduler
        counters ride along automatically — plus the derived bus
        utilization as a gauge.
        """
        from dataclasses import fields as dataclass_fields

        for spec in dataclass_fields(self.stats):
            registry.counter(
                f"mc_{spec.name}", f"ControllerStats.{spec.name}"
            ).inc(getattr(self.stats, spec.name))
        registry.gauge(
            "mc_bus_utilization", "mean per-channel data-bus utilization"
        ).set(self.bus_utilization())
