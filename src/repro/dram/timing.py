"""DDR4 timing parameters and derived quantities.

All times are expressed in nanoseconds as floats. The defaults follow
Table 2 of the Hydra paper (JEDEC DDR4, industrial 16Gb x8 chips):
tRCD = tRP = tCAS = 14 ns, tRC = 45 ns, tRFC = 350 ns, and a 64 ms
refresh window. The memory bus runs at 1.6 GHz (3.2 GT/s DDR), so a
64-byte line transfer occupies the data bus for 2.5 ns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Nanoseconds per millisecond, for readability of window arithmetic.
NS_PER_MS = 1_000_000.0


@dataclass(frozen=True)
class DramTiming:
    """JEDEC-style DRAM timing set used by the bank state machines.

    The simulator is event driven, so only the parameters that bound
    command-to-command spacing at the granularity we model are kept.
    """

    #: Row-to-column delay: ACT -> first RD/WR to the opened row.
    t_rcd: float = 14.0
    #: Precharge time: PRE -> next ACT on the same bank.
    t_rp: float = 14.0
    #: CAS latency: RD -> first data beat.
    t_cas: float = 14.0
    #: Row cycle: minimum spacing between two ACTs to the same bank.
    t_rc: float = 45.0
    #: Refresh cycle: one REF blocks the rank for this long.
    t_rfc: float = 350.0
    #: Average refresh interval: one REF per rank every t_refi.
    t_refi: float = 7800.0
    #: Data-bus occupancy of one 64B burst (4 cycles @ 1.6GHz DDR).
    t_burst: float = 2.5
    #: Retention / tracker reset window ("refresh period").
    refresh_window: float = 64.0 * NS_PER_MS
    #: Four-activate window: at most 4 ACTs per rank within t_faw.
    #: 0 disables the constraint (the default — the paper's analysis
    #: uses per-bank tRC limits only; see §2.1).
    t_faw: float = 0.0
    #: Minimum rank-level ACT-to-ACT spacing (tRRD). 0 disables.
    t_rrd: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "t_rcd",
            "t_rp",
            "t_cas",
            "t_rc",
            "t_rfc",
            "t_refi",
            "t_burst",
            "refresh_window",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_rfc >= self.t_refi:
            raise ValueError("t_rfc must be smaller than t_refi")
        if self.t_faw < 0:
            raise ValueError("t_faw must be non-negative (0 disables)")
        if self.t_rrd < 0:
            raise ValueError("t_rrd must be non-negative (0 disables)")

    @property
    def refresh_duty(self) -> float:
        """Fraction of time a rank spends refreshing."""
        return self.t_rfc / self.t_refi

    def max_activations_per_window(self) -> int:
        """Maximum ACTs one bank can receive in one refresh window.

        This is the paper's ``ACT_max`` (~1.36 million for DDR4 at a
        64 ms window): back-to-back ACTs every tRC, after discounting
        the time the rank is busy refreshing.
        """
        usable = self.refresh_window * (1.0 - self.refresh_duty)
        return int(usable // self.t_rc)

    def scaled(self, window_scale: float) -> "DramTiming":
        """Return a copy with the refresh window scaled by ``window_scale``.

        Used by the scaled-system methodology (DESIGN.md §3): command
        timings are physical constants and stay fixed; only the
        tracking/refresh window shrinks.
        """
        if window_scale <= 0:
            raise ValueError("window_scale must be positive")
        return DramTiming(
            t_rcd=self.t_rcd,
            t_rp=self.t_rp,
            t_cas=self.t_cas,
            t_rc=self.t_rc,
            t_rfc=self.t_rfc,
            t_refi=self.t_refi,
            t_burst=self.t_burst,
            refresh_window=self.refresh_window * window_scale,
            t_faw=self.t_faw,
            t_rrd=self.t_rrd,
        )


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of the memory system.

    Defaults model the paper's 32 GB dual-channel DDR4 system:
    2 channels x 1 rank x 16 banks, 8 KB rows, for 4M rows total.
    """

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    rows_per_bank: int = 131072
    row_size_bytes: int = 8192
    line_size_bytes: int = 64

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "row_size_bytes",
            "line_size_bytes",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.row_size_bytes % self.line_size_bytes:
            raise ValueError("row size must be a multiple of line size")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def total_rows(self) -> int:
        return self.total_banks * self.rows_per_bank

    @property
    def rows_per_rank(self) -> int:
        return self.banks_per_rank * self.rows_per_bank

    @property
    def capacity_bytes(self) -> int:
        return self.total_rows * self.row_size_bytes

    @property
    def lines_per_row(self) -> int:
        return self.row_size_bytes // self.line_size_bytes

    def scaled(self, row_scale: float) -> "DramGeometry":
        """Shrink rows-per-bank and the row size by ``row_scale``.

        Channel/rank/bank counts are preserved so per-bank activation
        rates and bank-level parallelism are unchanged. The row size
        shrinks alongside the row count so *structural ratios* hold:
        counters-per-metadata-row, metadata-rows-per-bank, and
        metadata-lines-per-row all keep their full-scale proportions,
        which keeps the row-buffer behaviour of tracker metadata
        traffic faithful at reduced scale (DESIGN.md §3).
        """
        rows = max(1, int(self.rows_per_bank * row_scale))
        # Keep sizes powers of two so address slicing stays exact.
        rows = 1 << max(0, math.ceil(math.log2(rows)))
        row_bytes = max(self.line_size_bytes, int(self.row_size_bytes * row_scale))
        row_bytes = 1 << max(0, math.ceil(math.log2(row_bytes)))
        return DramGeometry(
            channels=self.channels,
            ranks_per_channel=self.ranks_per_channel,
            banks_per_rank=self.banks_per_rank,
            rows_per_bank=rows,
            row_size_bytes=row_bytes,
            line_size_bytes=self.line_size_bytes,
        )


#: The paper's baseline 32 GB system (Table 2).
PAPER_GEOMETRY = DramGeometry()
#: The paper's DDR4 timing set (Table 2).
PAPER_TIMING = DramTiming()
