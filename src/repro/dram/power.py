"""Micron IDD-style DRAM power model (paper §6.8).

The model follows the structure of Micron's DDR4 power calculator: a
rank's power is the sum of a background term plus per-event energies
for activate/precharge pairs, read/write bursts, and refresh commands.
Event counts come from :class:`repro.dram.bank.DramActivityStats`.

Absolute constants are representative DDR4 x8 datasheet values; the
reproduction only relies on *relative* power (the share of DRAM power
contributed by Hydra's extra RCT traffic and mitigations, which the
paper reports as ~0.2%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.bank import DramActivityStats
from repro.dram.timing import DramTiming


@dataclass(frozen=True)
class DramPowerParams:
    """IDD currents (amps per chip) and rank composition."""

    vdd: float = 1.2
    #: One ACT/PRE cycle at max rate.
    idd0: float = 0.055
    #: Precharge standby (background).
    idd2n: float = 0.037
    #: Read burst.
    idd4r: float = 0.180
    #: Write burst.
    idd4w: float = 0.165
    #: Burst refresh.
    idd5b: float = 0.190
    #: x8 chips per rank.
    chips_per_rank: int = 8

    def __post_init__(self) -> None:
        if self.chips_per_rank <= 0:
            raise ValueError("chips_per_rank must be positive")
        if not self.idd2n <= self.idd0:
            raise ValueError("IDD0 must exceed IDD2N")


@dataclass(frozen=True)
class DramPowerReport:
    """Energy breakdown (joules) and average power (watts) of one run."""

    background_energy: float
    activate_energy: float
    read_energy: float
    write_energy: float
    refresh_energy: float
    elapsed_ns: float

    @property
    def dynamic_energy(self) -> float:
        return (
            self.activate_energy
            + self.read_energy
            + self.write_energy
            + self.refresh_energy
        )

    @property
    def total_energy(self) -> float:
        return self.background_energy + self.dynamic_energy

    @property
    def average_power(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_energy / (self.elapsed_ns * 1e-9)


class DramPowerModel:
    """Computes rank energy from activity counts."""

    def __init__(
        self,
        timing: DramTiming,
        params: DramPowerParams = DramPowerParams(),
    ) -> None:
        self._timing = timing
        self._params = params
        chips = params.chips_per_rank
        vdd = params.vdd
        # Per-event energies, whole-rank (joules).
        self.energy_per_act = (
            vdd * (params.idd0 - params.idd2n) * timing.t_rc * 1e-9 * chips
        )
        self.energy_per_read_line = (
            vdd * (params.idd4r - params.idd2n) * timing.t_burst * 1e-9 * chips
        )
        self.energy_per_write_line = (
            vdd * (params.idd4w - params.idd2n) * timing.t_burst * 1e-9 * chips
        )
        self.energy_per_refresh = (
            vdd * (params.idd5b - params.idd2n) * timing.t_rfc * 1e-9 * chips
        )
        self.background_power = vdd * params.idd2n * chips

    def report(
        self,
        stats: DramActivityStats,
        elapsed_ns: float,
        n_refreshes: int,
        n_ranks: int = 1,
    ) -> DramPowerReport:
        """Energy breakdown for ``n_ranks`` ranks sharing the stats."""
        if elapsed_ns < 0:
            raise ValueError("elapsed_ns must be non-negative")
        if n_refreshes < 0:
            raise ValueError("n_refreshes must be non-negative")
        return DramPowerReport(
            background_energy=self.background_power
            * (elapsed_ns * 1e-9)
            * n_ranks,
            activate_energy=self.energy_per_act * stats.activations,
            read_energy=self.energy_per_read_line * stats.read_lines,
            write_energy=self.energy_per_write_line * stats.write_lines,
            refresh_energy=self.energy_per_refresh * n_refreshes,
            elapsed_ns=elapsed_ns,
        )


def power_overhead_percent(
    baseline: DramPowerReport, with_tracker: DramPowerReport
) -> float:
    """Percent extra DRAM power a tracker costs over the baseline."""
    if baseline.average_power <= 0:
        return 0.0
    return 100.0 * (
        with_tracker.average_power / baseline.average_power - 1.0
    )
