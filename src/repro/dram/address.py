"""Physical-address decomposition and global row identifiers.

The simulator mostly operates on *global row ids*: a dense integer
``0 .. total_rows-1`` that uniquely names one DRAM row across the whole
memory system. Trackers (Hydra's GCT/RCT, Graphene, CRA) are indexed by
row id, and the memory controller turns a row id back into its
(channel, rank, bank, row) coordinates for timing.

The mapping follows the convention the paper relies on for efficient
RCT group initialization: rows that share their most-significant bits
belong to the same bank and are *consecutive* row indices there, so one
GCT row-group (128 consecutive row ids) maps to 128 physically adjacent
rows of a single bank, and its RCT entries occupy two adjacent 64 B
lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DramGeometry


@dataclass(frozen=True)
class DramCoordinates:
    """Fully decoded location of one DRAM row."""

    channel: int
    rank: int
    bank: int
    row: int

    def __post_init__(self) -> None:
        for name in ("channel", "rank", "bank", "row"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class AddressMapper:
    """Bijective mapping between global row ids and DRAM coordinates.

    Layout (most-significant to least-significant in the row id):
    ``channel | rank | bank | row``. Consecutive row ids therefore land
    in the same bank, matching the paper's GCT indexing where the rows
    of a row-group share their MSBs.
    """

    def __init__(self, geometry: DramGeometry) -> None:
        self._geometry = geometry
        self._rows_per_bank = geometry.rows_per_bank
        self._rows_per_rank = geometry.rows_per_bank * geometry.banks_per_rank
        self._rows_per_channel = self._rows_per_rank * geometry.ranks_per_channel

    @property
    def geometry(self) -> DramGeometry:
        return self._geometry

    @property
    def total_rows(self) -> int:
        return self._geometry.total_rows

    def decode(self, row_id: int) -> DramCoordinates:
        """Decode a global row id into (channel, rank, bank, row)."""
        if not 0 <= row_id < self.total_rows:
            raise ValueError(
                f"row id {row_id} out of range [0, {self.total_rows})"
            )
        channel, rest = divmod(row_id, self._rows_per_channel)
        rank, rest = divmod(rest, self._rows_per_rank)
        bank, row = divmod(rest, self._rows_per_bank)
        return DramCoordinates(channel=channel, rank=rank, bank=bank, row=row)

    def encode(self, coords: DramCoordinates) -> int:
        """Inverse of :meth:`decode`."""
        geo = self._geometry
        if not 0 <= coords.channel < geo.channels:
            raise ValueError("channel out of range")
        if not 0 <= coords.rank < geo.ranks_per_channel:
            raise ValueError("rank out of range")
        if not 0 <= coords.bank < geo.banks_per_rank:
            raise ValueError("bank out of range")
        if not 0 <= coords.row < geo.rows_per_bank:
            raise ValueError("row out of range")
        return (
            coords.channel * self._rows_per_channel
            + coords.rank * self._rows_per_rank
            + coords.bank * self._rows_per_bank
            + coords.row
        )

    def bank_index(self, row_id: int) -> int:
        """Dense index of the bank (0 .. total_banks-1) holding a row."""
        return row_id // self._rows_per_bank

    def row_in_bank(self, row_id: int) -> int:
        return row_id % self._rows_per_bank

    def neighbors(self, row_id: int, blast_radius: int) -> list:
        """Rows within ``blast_radius`` of an aggressor, same bank only.

        Victim refresh targets these rows. Neighbours that would fall
        off the edge of the bank are clipped (edge rows simply have
        fewer neighbours).
        """
        if blast_radius < 0:
            raise ValueError("blast_radius must be non-negative")
        bank = self.bank_index(row_id)
        local = self.row_in_bank(row_id)
        base = bank * self._rows_per_bank
        victims = []
        for offset in range(-blast_radius, blast_radius + 1):
            if offset == 0:
                continue
            candidate = local + offset
            if 0 <= candidate < self._rows_per_bank:
                victims.append(base + candidate)
        return victims

    def physical_address(self, row_id: int, column_byte: int = 0) -> int:
        """Byte address of a location inside a row (row-major layout)."""
        if not 0 <= column_byte < self._geometry.row_size_bytes:
            raise ValueError("column offset out of range")
        return row_id * self._geometry.row_size_bytes + column_byte

    def row_of_address(self, address: int) -> int:
        """Global row id containing a physical byte address."""
        row_id = address // self._geometry.row_size_bytes
        if not 0 <= row_id < self.total_rows:
            raise ValueError("address outside memory capacity")
        return row_id
