"""Event-driven DRAM bank, channel-bus, and refresh timing models.

Rather than stepping a clock, every structure tracks the *times* at
which it next becomes available. A memory access is resolved in O(1):
the bank computes when the activate/column commands may legally issue
(honouring tRC/tRCD/tRP and the rank's refresh blackouts), then the
shared channel data bus serializes the burst transfers. This is the
standard technique for fast bank-accurate (not cycle-accurate) DRAM
simulation and preserves exactly the effects the Hydra evaluation
depends on: bank row-cycle occupancy from extra activations and data
bus pressure from extra metadata line transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import DramTiming


@dataclass
class DramActivityStats:
    """Command/activity counts used by the power model and reports."""

    activations: int = 0
    precharges: int = 0
    read_lines: int = 0
    write_lines: int = 0
    row_buffer_hits: int = 0
    row_buffer_misses: int = 0

    def merge(self, other: "DramActivityStats") -> None:
        self.activations += other.activations
        self.precharges += other.precharges
        self.read_lines += other.read_lines
        self.write_lines += other.write_lines
        self.row_buffer_hits += other.row_buffer_hits
        self.row_buffer_misses += other.row_buffer_misses

    @property
    def total_lines(self) -> int:
        return self.read_lines + self.write_lines


class RefreshTimeline:
    """Per-rank all-bank refresh: one REF every tREFI, lasting tRFC.

    The blackout is modelled at the start of every tREFI interval;
    :meth:`adjust` pushes a command time out of any blackout it lands
    in. Deterministic and O(1).
    """

    def __init__(self, timing: DramTiming) -> None:
        self._t_refi = timing.t_refi
        self._t_rfc = timing.t_rfc

    def adjust(self, at: float) -> float:
        """Earliest time >= ``at`` that is outside a refresh blackout."""
        if at < 0:
            at = 0.0
        offset = at % self._t_refi
        if offset < self._t_rfc:
            return at + (self._t_rfc - offset)
        return at

    def refreshes_before(self, at: float) -> int:
        """Number of REF commands issued in [0, at)."""
        if at <= 0:
            return 0
        return int(at // self._t_refi)

    def blackout_fraction(self) -> float:
        return self._t_rfc / self._t_refi


class RankActWindow:
    """Rank-level activation constraints: tFAW and tRRD.

    tFAW: at most 4 ACTs per rank in any tFAW window. tRRD: minimum
    spacing between consecutive ACTs on a rank (any banks). Shared by
    all banks of the rank. Each constraint is disabled at 0.
    """

    __slots__ = ("t_faw", "t_rrd", "_recent", "_last_act")

    WINDOW_ACTS = 4

    def __init__(self, t_faw: float, t_rrd: float = 0.0) -> None:
        if t_faw < 0 or t_rrd < 0:
            raise ValueError("timings must be non-negative")
        self.t_faw = t_faw
        self.t_rrd = t_rrd
        self._recent: list = []
        self._last_act: float = float("-inf")

    def constrain(self, at: float) -> float:
        """Earliest time >= ``at`` an ACT may issue on this rank."""
        if self.t_rrd > 0:
            earliest = self._last_act + self.t_rrd
            if earliest > at:
                at = earliest
        if self.t_faw > 0 and len(self._recent) >= self.WINDOW_ACTS:
            earliest = self._recent[-self.WINDOW_ACTS] + self.t_faw
            if earliest > at:
                at = earliest
        return at

    def record(self, act_time: float) -> None:
        if self.t_rrd > 0 and act_time > self._last_act:
            self._last_act = act_time
        if self.t_faw <= 0:
            return
        self._recent.append(act_time)
        if len(self._recent) > self.WINDOW_ACTS:
            del self._recent[: -self.WINDOW_ACTS]


class ChannelBus:
    """Shared data bus of one channel: serializes 64 B burst transfers."""

    def __init__(self, timing: DramTiming) -> None:
        self._t_burst = timing.t_burst
        self.free_at: float = 0.0
        self.busy_time: float = 0.0

    def transfer(self, earliest: float, n_lines: int) -> float:
        """Occupy the bus for ``n_lines`` back-to-back bursts.

        Returns the completion time of the last beat.
        """
        if n_lines <= 0:
            return earliest
        start = max(earliest, self.free_at)
        duration = n_lines * self._t_burst
        self.free_at = start + duration
        self.busy_time += duration
        return self.free_at

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


def average_bus_utilization(buses, elapsed: float) -> float:
    """Mean clamped utilization across channels.

    The single bus-utilization implementation every reporter uses
    (per-bus clamping via :meth:`ChannelBus.utilization`, so a burst
    that nominally overruns the elapsed window cannot report > 100%).
    """
    buses = list(buses)
    if elapsed <= 0 or not buses:
        return 0.0
    return sum(bus.utilization(elapsed) for bus in buses) / len(buses)


@dataclass
class AccessResult:
    """Timing outcome of one row-level access."""

    #: When the access's data transfer completed (request is done).
    completion: float
    #: Whether an activate was needed (row-buffer miss).
    activated: bool
    #: Time at which the activate (if any) was issued.
    act_time: float


class Bank:
    """One DRAM bank: open-row state plus next-command availability."""

    def __init__(
        self,
        timing: DramTiming,
        refresh: RefreshTimeline,
        act_window: Optional["RankActWindow"] = None,
    ) -> None:
        self._timing = timing
        self._refresh = refresh
        self._act_window = act_window
        self.open_row: Optional[int] = None
        #: Earliest time the next ACT may issue (last ACT + tRC).
        self._next_act_at: float = 0.0
        #: Time at which the currently open row becomes column-accessible.
        self._row_ready_at: float = 0.0
        self.stats = DramActivityStats()

    def access(
        self,
        at: float,
        row: int,
        n_lines: int,
        bus: ChannelBus,
        is_write: bool = False,
    ) -> AccessResult:
        """Perform an access of ``n_lines`` 64 B lines within ``row``.

        Returns timing info; updates bank state and activity stats.
        """
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        t = self._refresh.adjust(at)
        timing = self._timing
        if self.open_row == row:
            self.stats.row_buffer_hits += 1
            col_start = max(t, self._row_ready_at)
            activated = False
            act_time = self._next_act_at - timing.t_rc
        else:
            self.stats.row_buffer_misses += 1
            act_at = max(t, self._next_act_at)
            if self.open_row is not None:
                # Close the old row first (PRE), then activate.
                act_at = max(act_at, self._row_ready_at) + timing.t_rp
                self.stats.precharges += 1
            act_at = self._refresh.adjust(act_at)
            if self._act_window is not None:
                act_at = self._act_window.constrain(act_at)
                self._act_window.record(act_at)
            self.open_row = row
            self._next_act_at = act_at + timing.t_rc
            self._row_ready_at = act_at + timing.t_rcd
            self.stats.activations += 1
            col_start = self._row_ready_at
            activated = True
            act_time = act_at
        first_data = col_start + timing.t_cas
        completion = bus.transfer(first_data, n_lines)
        if is_write:
            self.stats.write_lines += n_lines
        else:
            self.stats.read_lines += n_lines
        return AccessResult(
            completion=completion, activated=activated, act_time=act_time
        )

    def refresh_row(self, at: float) -> float:
        """Victim-refresh one row: an ACT/PRE cycle with no data burst.

        The row is left closed. Returns the time the bank becomes free
        again (ACT + tRC).
        """
        timing = self._timing
        act_at = max(self._refresh.adjust(at), self._next_act_at)
        if self.open_row is not None:
            act_at = self._refresh.adjust(
                max(act_at, self._row_ready_at) + timing.t_rp
            )
            self.stats.precharges += 1
        if self._act_window is not None:
            act_at = self._act_window.constrain(act_at)
            self._act_window.record(act_at)
        self.stats.activations += 1
        self._next_act_at = act_at + timing.t_rc
        self._row_ready_at = act_at + timing.t_rcd
        self.open_row = None
        return act_at + timing.t_rc

    def precharge_all(self) -> None:
        """Close the open row (used at window boundaries in tests)."""
        if self.open_row is not None:
            self.stats.precharges += 1
        self.open_row = None
