"""Event-driven DRAM bank, channel-bus, and refresh timing models.

Rather than stepping a clock, every structure tracks the *times* at
which it next becomes available. A memory access is resolved in O(1):
the bank computes when the activate/column commands may legally issue
(honouring tRC/tRCD/tRP and the rank's refresh blackouts), then the
shared channel data bus serializes the burst transfers. This is the
standard technique for fast bank-accurate (not cycle-accurate) DRAM
simulation and preserves exactly the effects the Hydra evaluation
depends on: bank row-cycle occupancy from extra activations and data
bus pressure from extra metadata line transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.dram.timing import DramTiming


@dataclass
class DramActivityStats:
    """Command/activity counts used by the power model and reports."""

    activations: int = 0
    precharges: int = 0
    read_lines: int = 0
    write_lines: int = 0
    row_buffer_hits: int = 0
    row_buffer_misses: int = 0

    def merge(self, other: "DramActivityStats") -> None:
        self.activations += other.activations
        self.precharges += other.precharges
        self.read_lines += other.read_lines
        self.write_lines += other.write_lines
        self.row_buffer_hits += other.row_buffer_hits
        self.row_buffer_misses += other.row_buffer_misses

    @property
    def total_lines(self) -> int:
        return self.read_lines + self.write_lines


class RefreshTimeline:
    """Per-rank all-bank refresh: one REF every tREFI, lasting tRFC.

    The blackout is modelled at the start of every tREFI interval;
    :meth:`adjust` pushes a command time out of any blackout it lands
    in. Deterministic and O(1).
    """

    def __init__(self, timing: DramTiming) -> None:
        self._t_refi = timing.t_refi
        self._t_rfc = timing.t_rfc

    def adjust(self, at: float) -> float:
        """Earliest time >= ``at`` that is outside a refresh blackout."""
        if at < 0:
            at = 0.0
        offset = at % self._t_refi
        if offset < self._t_rfc:
            return at + (self._t_rfc - offset)
        return at

    def refreshes_before(self, at: float) -> int:
        """Number of REF commands issued in [0, at)."""
        if at <= 0:
            return 0
        return int(at // self._t_refi)

    def blackout_fraction(self) -> float:
        return self._t_rfc / self._t_refi


class RankActWindow:
    """Rank-level activation constraints: tFAW and tRRD.

    tFAW: at most 4 ACTs per rank in any tFAW window. tRRD: minimum
    spacing between consecutive ACTs on a rank (any banks). Shared by
    all banks of the rank. Each constraint is disabled at 0.
    """

    __slots__ = ("t_faw", "t_rrd", "_recent", "_last_act")

    WINDOW_ACTS = 4

    def __init__(self, t_faw: float, t_rrd: float = 0.0) -> None:
        if t_faw < 0 or t_rrd < 0:
            raise ValueError("timings must be non-negative")
        self.t_faw = t_faw
        self.t_rrd = t_rrd
        self._recent: list = []
        self._last_act: float = float("-inf")

    def constrain(self, at: float) -> float:
        """Earliest time >= ``at`` an ACT may issue on this rank."""
        if self.t_rrd > 0:
            earliest = self._last_act + self.t_rrd
            if earliest > at:
                at = earliest
        if self.t_faw > 0 and len(self._recent) >= self.WINDOW_ACTS:
            earliest = self._recent[-self.WINDOW_ACTS] + self.t_faw
            if earliest > at:
                at = earliest
        return at

    def record(self, act_time: float) -> None:
        if self.t_rrd > 0 and act_time > self._last_act:
            self._last_act = act_time
        if self.t_faw <= 0:
            return
        self._recent.append(act_time)
        if len(self._recent) > self.WINDOW_ACTS:
            del self._recent[: -self.WINDOW_ACTS]

    def reserve(self, at: float) -> float:
        """``constrain`` + ``record`` fused into one call (hot path).

        Every ACT performs both; fusing them saves a method call per
        activation while keeping results identical to calling the two
        primitives in sequence.
        """
        t_rrd = self.t_rrd
        t_faw = self.t_faw
        recent = self._recent
        window_acts = self.WINDOW_ACTS
        if t_rrd > 0:
            earliest = self._last_act + t_rrd
            if earliest > at:
                at = earliest
        if t_faw > 0 and len(recent) >= window_acts:
            earliest = recent[-window_acts] + t_faw
            if earliest > at:
                at = earliest
        if t_rrd > 0 and at > self._last_act:
            self._last_act = at
        if t_faw > 0:
            recent.append(at)
            if len(recent) > window_acts:
                del recent[:-window_acts]
        return at


class ChannelBus:
    """Shared data bus of one channel: serializes 64 B burst transfers."""

    def __init__(self, timing: DramTiming) -> None:
        self._t_burst = timing.t_burst
        self.free_at: float = 0.0
        self.busy_time: float = 0.0

    def transfer(self, earliest: float, n_lines: int) -> float:
        """Occupy the bus for ``n_lines`` back-to-back bursts.

        Returns the completion time of the last beat.
        """
        if n_lines <= 0:
            return earliest
        start = max(earliest, self.free_at)
        duration = n_lines * self._t_burst
        self.free_at = start + duration
        self.busy_time += duration
        return self.free_at

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


def average_bus_utilization(buses, elapsed: float) -> float:
    """Mean clamped utilization across channels.

    The single bus-utilization implementation every reporter uses
    (per-bus clamping via :meth:`ChannelBus.utilization`, so a burst
    that nominally overruns the elapsed window cannot report > 100%).
    """
    buses = list(buses)
    if elapsed <= 0 or not buses:
        return 0.0
    return sum(bus.utilization(elapsed) for bus in buses) / len(buses)


class AccessResult(NamedTuple):
    """Timing outcome of one row-level access.

    A NamedTuple rather than a dataclass: one is allocated per
    simulated request, and tuple construction is measurably cheaper.
    """

    #: When the access's data transfer completed (request is done).
    completion: float
    #: Whether an activate was needed (row-buffer miss).
    activated: bool
    #: Time at which the activate (if any) was issued.
    act_time: float


class Bank:
    """One DRAM bank: open-row state plus next-command availability."""

    def __init__(
        self,
        timing: DramTiming,
        refresh: RefreshTimeline,
        act_window: Optional["RankActWindow"] = None,
    ) -> None:
        self._timing = timing
        self._refresh = refresh
        self._act_window = act_window
        self.open_row: Optional[int] = None
        #: Earliest time the next ACT may issue (last ACT + tRC).
        self._next_act_at: float = 0.0
        #: Time at which the currently open row becomes column-accessible.
        self._row_ready_at: float = 0.0
        self.stats = DramActivityStats()
        # Scalar copies of every timing the per-request path touches,
        # so ``access`` reads plain instance floats instead of chasing
        # through the timing/refresh objects on each of the millions of
        # calls a sweep makes.
        self._t_rc = timing.t_rc
        self._t_rp = timing.t_rp
        self._t_rcd = timing.t_rcd
        self._t_cas = timing.t_cas
        self._t_refi = timing.t_refi
        self._t_rfc = timing.t_rfc

    def access(
        self,
        at: float,
        row: int,
        n_lines: int,
        bus: ChannelBus,
        is_write: bool = False,
    ) -> AccessResult:
        """Perform an access of ``n_lines`` 64 B lines within ``row``.

        Returns timing info; updates bank state and activity stats.
        The body inlines :meth:`RefreshTimeline.adjust` and
        :meth:`ChannelBus.transfer` (same module, identical
        arithmetic): this is the innermost per-request function of the
        whole simulator.
        """
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        stats = self.stats
        t_refi = self._t_refi
        t_rfc = self._t_rfc
        # Inlined self._refresh.adjust(at).
        if at < 0:
            at = 0.0
        offset = at % t_refi
        t = at + (t_rfc - offset) if offset < t_rfc else at
        if self.open_row == row:
            stats.row_buffer_hits += 1
            row_ready = self._row_ready_at
            col_start = t if t >= row_ready else row_ready
            activated = False
            act_time = self._next_act_at - self._t_rc
        else:
            stats.row_buffer_misses += 1
            next_act = self._next_act_at
            act_at = t if t >= next_act else next_act
            if self.open_row is not None:
                # Close the old row first (PRE), then activate.
                row_ready = self._row_ready_at
                if row_ready > act_at:
                    act_at = row_ready
                act_at += self._t_rp
                stats.precharges += 1
            # Inlined self._refresh.adjust(act_at) (act_at >= 0 here).
            offset = act_at % t_refi
            if offset < t_rfc:
                act_at += t_rfc - offset
            if self._act_window is not None:
                act_at = self._act_window.reserve(act_at)
            self.open_row = row
            self._next_act_at = act_at + self._t_rc
            col_start = self._row_ready_at = act_at + self._t_rcd
            stats.activations += 1
            activated = True
            act_time = act_at
        first_data = col_start + self._t_cas
        # Inlined bus.transfer(first_data, n_lines) (n_lines >= 1).
        free_at = bus.free_at
        start = first_data if first_data >= free_at else free_at
        duration = n_lines * bus._t_burst
        completion = start + duration
        bus.free_at = completion
        bus.busy_time += duration
        if is_write:
            stats.write_lines += n_lines
        else:
            stats.read_lines += n_lines
        return AccessResult(completion, activated, act_time)

    def refresh_row(self, at: float) -> float:
        """Victim-refresh one row: an ACT/PRE cycle with no data burst.

        The row is left closed. Returns the time the bank becomes free
        again (ACT + tRC).
        """
        timing = self._timing
        act_at = max(self._refresh.adjust(at), self._next_act_at)
        if self.open_row is not None:
            act_at = self._refresh.adjust(
                max(act_at, self._row_ready_at) + timing.t_rp
            )
            self.stats.precharges += 1
        if self._act_window is not None:
            act_at = self._act_window.constrain(act_at)
            self._act_window.record(act_at)
        self.stats.activations += 1
        self._next_act_at = act_at + timing.t_rc
        self._row_ready_at = act_at + timing.t_rcd
        self.open_row = None
        return act_at + timing.t_rc

    def precharge_all(self) -> None:
        """Close the open row (used at window boundaries in tests)."""
        if self.open_row is not None:
            self.stats.precharges += 1
        self.open_row = None
