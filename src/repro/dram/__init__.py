"""DRAM substrate: geometry, timing, banks, address mapping, power.

This package is the simulated hardware Hydra sits on top of: an
event-driven DDR4 model with per-bank row-buffer state, a shared
channel data bus, staggered all-bank refresh, and a Micron-style power
model.
"""

from repro.dram.address import AddressMapper, DramCoordinates
from repro.dram.bank import (
    AccessResult,
    Bank,
    ChannelBus,
    DramActivityStats,
    RankActWindow,
    RefreshTimeline,
)
from repro.dram.ddr5 import DDR5_GEOMETRY, DDR5_TIMING, ddr5_system
from repro.dram.power import (
    DramPowerModel,
    DramPowerParams,
    DramPowerReport,
    power_overhead_percent,
)
from repro.dram.timing import (
    PAPER_GEOMETRY,
    PAPER_TIMING,
    DramGeometry,
    DramTiming,
)

__all__ = [
    "AccessResult",
    "AddressMapper",
    "Bank",
    "ChannelBus",
    "DramActivityStats",
    "DramCoordinates",
    "DramGeometry",
    "DramPowerModel",
    "DramPowerParams",
    "DramPowerReport",
    "DramTiming",
    "DDR5_GEOMETRY",
    "DDR5_TIMING",
    "PAPER_GEOMETRY",
    "PAPER_TIMING",
    "RankActWindow",
    "RefreshTimeline",
    "ddr5_system",
    "power_overhead_percent",
]
