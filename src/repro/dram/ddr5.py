"""DDR5 presets (Table 5's second column).

DDR5 doubles the banks per rank (16 -> 32), which doubles the storage
of every per-bank tracker (Graphene/TWiCE/CAT) while leaving Hydra's
row-count-proportional structures untouched — the paper's Table 5
argument. Timing-wise DDR5 shortens tREFI (more frequent, finer
refresh) and keeps the same order of row-cycle time; the constants
here are representative JEDEC DDR5-4800 values.

These presets exist so the whole simulation stack (trackers,
controller, workload generation) can run on a DDR5-shaped system; see
``tests/dram/test_ddr5.py`` and the Table 5 benchmark.
"""

from __future__ import annotations

from repro.dram.timing import DramGeometry, DramTiming

#: 32 GB DDR5 system: 2 channels x 1 rank x 32 banks, 8 KB rows.
DDR5_GEOMETRY = DramGeometry(
    channels=2,
    ranks_per_channel=1,
    banks_per_rank=32,
    rows_per_bank=65536,
    row_size_bytes=8192,
    line_size_bytes=64,
)

#: Representative DDR5-4800 timing: same-order row timings, finer
#: refresh (tREFI halves; per-command tRFC shrinks with same-bank
#: refresh), faster burst (2.5 ns -> 1.25 ns for 64 B at 4.8 GT/s).
DDR5_TIMING = DramTiming(
    t_rcd=14.0,
    t_rp=14.0,
    t_cas=14.0,
    t_rc=46.0,
    t_rfc=295.0,
    t_refi=3900.0,
    t_burst=1.25,
    refresh_window=64.0 * 1_000_000.0,
)


def ddr5_system(scale: float = 1.0):
    """(geometry, timing) for a possibly scaled DDR5 system."""
    if scale == 1.0:
        return DDR5_GEOMETRY, DDR5_TIMING
    return DDR5_GEOMETRY.scaled(scale), DDR5_TIMING.scaled(scale)
