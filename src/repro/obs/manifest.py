"""Structured run manifests: one JSON-lines record per grid cell.

A sweep answers "what were the numbers?"; the manifest answers "what
exactly ran, and what did it cost?": for every (tracker spec,
workload) cell that ``run_grid`` touches, one append-only JSON line
records the canonical spec, the cell's cache key, the engine, whether
the result came from the cache, the wall time, and the simulated
request throughput. Manifests accumulate across sweeps (JSON lines
append cleanly), survive crashes (each line is written whole), and
are forward-tolerant (unknown keys from newer writers are ignored,
corrupt lines are skipped and counted).

``hydra-sim report --manifest PATH`` renders a summary; see
:func:`summarize_manifest`.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Bump when a record gains/changes meaning; readers keep loading old
#: versions (missing keys take field defaults).
MANIFEST_SCHEMA_VERSION = 1

#: Environment variable naming the manifest file every sweep appends
#: to (explicit ``manifest_path`` arguments win).
MANIFEST_ENV_VAR = "REPRO_MANIFEST"


@dataclass(frozen=True)
class ManifestRecord:
    """One grid cell's provenance line."""

    cache_key: str
    spec: str
    workload: str
    engine: str
    from_cache: bool
    #: Wall-clock seconds to produce the cell (simulation time, or
    #: cache-load time when ``from_cache``).
    wall_time_s: float
    requests: int
    end_time_ns: float
    #: Simulated requests per wall-clock second (0.0 for cache hits —
    #: a cache load's wall time says nothing about simulation speed).
    throughput_rps: float = 0.0
    #: Sweep-service job the cell was produced for ("" outside the
    #: service). Job-scoped manifests let ``GET /jobs/<id>/events``
    #: stream exactly one job's cells while everything still appends
    #: to ordinary JSON-lines files.
    job_id: str = ""
    schema_version: int = MANIFEST_SCHEMA_VERSION
    #: Record discriminator: manifests interleave grid-cell provenance
    #: (``"cell"``) with other writers (e.g. the arena's
    #: ``"arena-oracle"`` lines); readers dispatch on it.
    kind: str = "cell"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ManifestRecord":
        """Load one record, tolerating unknown (newer-writer) keys."""
        known = {f.name for f in fields(ManifestRecord)}
        return ManifestRecord(
            **{k: v for k, v in data.items() if k in known}
        )


@dataclass(frozen=True)
class ArenaOracleRecord:
    """One arena security-oracle verdict: (tracker, T_RH, sequence).

    Appended to the same JSON-lines manifest as grid-cell records
    (``kind`` keeps the streams separable), so one file carries both
    the performance provenance and the oracle outcomes of an arena
    run.
    """

    spec: str
    trh: int
    security_class: str
    sequence: str
    secure: bool
    violations: int
    max_unmitigated: int
    mitigations: int
    activations: int
    #: Whether the sequence could have driven any row past the
    #: threshold at all — an unexercised "secure" verdict is vacuous.
    exercised: bool
    schema_version: int = MANIFEST_SCHEMA_VERSION
    kind: str = "arena-oracle"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ArenaOracleRecord":
        known = {f.name for f in fields(ArenaOracleRecord)}
        return ArenaOracleRecord(
            **{k: v for k, v in data.items() if k in known}
        )


@dataclass(frozen=True)
class FuzzOracleRecord:
    """One fuzzer verdict: (tracker, T_RH, generated program).

    The attack fuzzer (:mod:`repro.attacks.fuzz`) drives every
    registered tracker with seeded random hammer programs and judges
    the outcomes with the arena's class-aware logic; each judged cell
    appends one of these lines. ``program_seed`` plus the fuzzer's
    corpus parameters reproduce the program exactly.
    """

    spec: str
    trh: int
    security_class: str
    program: str
    program_seed: int
    verdict: str
    secure: bool
    violations: int
    max_unmitigated: int
    mitigations: int
    activations: int
    exercised: bool
    schema_version: int = MANIFEST_SCHEMA_VERSION
    kind: str = "fuzz-oracle"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FuzzOracleRecord":
        known = {f.name for f in fields(FuzzOracleRecord)}
        return FuzzOracleRecord(
            **{k: v for k, v in data.items() if k in known}
        )


def make_record(
    *,
    cache_key: str,
    spec: str,
    workload: str,
    engine: str,
    from_cache: bool,
    wall_time_s: float,
    requests: int,
    end_time_ns: float,
    job_id: str = "",
) -> ManifestRecord:
    """Build a record, deriving throughput from wall time."""
    throughput = 0.0
    if not from_cache and wall_time_s > 0:
        throughput = requests / wall_time_s
    return ManifestRecord(
        cache_key=cache_key,
        spec=spec,
        workload=workload,
        engine=engine,
        from_cache=from_cache,
        wall_time_s=wall_time_s,
        requests=requests,
        end_time_ns=end_time_ns,
        throughput_rps=throughput,
        job_id=job_id,
    )


class ManifestWriter:
    """Appends records to a JSON-lines manifest file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, records: Iterable[ManifestRecord]) -> int:
        """Append records (one JSON line each); returns lines written."""
        lines = [
            json.dumps(record.to_dict(), sort_keys=True)
            for record in records
        ]
        if not lines:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)


def read_manifest(
    path: Union[str, Path]
) -> Tuple[List[ManifestRecord], int]:
    """Load a manifest; returns ``(records, skipped_line_count)``.

    Corrupt or non-record lines are skipped, not fatal: a manifest is
    an append-only log that may interleave writers or lose a tail on
    a crash, and its job is to describe whatever survived.
    """
    records: List[ManifestRecord] = []
    skipped = 0
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if data.get("kind", "cell") != "cell":
                # A different writer's stream (e.g. arena-oracle
                # verdicts) — not this reader's business, not corrupt.
                continue
            records.append(ManifestRecord.from_dict(data))
        except (ValueError, TypeError, AttributeError):
            skipped += 1
    return records, skipped


def read_arena_records(
    path: Union[str, Path]
) -> Tuple[List[ArenaOracleRecord], int]:
    """Load the arena-oracle verdict lines from a manifest.

    Mirror of :func:`read_manifest` for ``kind == "arena-oracle"``
    lines; everything else (grid cells included) is passed over
    silently, and only unparseable lines count as skipped.
    """
    records: List[ArenaOracleRecord] = []
    skipped = 0
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if data.get("kind") != "arena-oracle":
                continue
            records.append(ArenaOracleRecord.from_dict(data))
        except (ValueError, TypeError, AttributeError):
            skipped += 1
    return records, skipped


def read_fuzz_records(
    path: Union[str, Path]
) -> Tuple[List[FuzzOracleRecord], int]:
    """Load the fuzz-oracle verdict lines from a manifest.

    Mirror of :func:`read_arena_records` for ``kind == "fuzz-oracle"``
    lines.
    """
    records: List[FuzzOracleRecord] = []
    skipped = 0
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if data.get("kind") != "fuzz-oracle":
                continue
            records.append(FuzzOracleRecord.from_dict(data))
        except (ValueError, TypeError, AttributeError):
            skipped += 1
    return records, skipped


def summarize_manifest(
    records: Sequence[ManifestRecord],
) -> Dict[str, Any]:
    """Aggregate a manifest for reporting (cells, cost, throughput)."""
    simulated = [r for r in records if not r.from_cache]
    sim_wall = sum(r.wall_time_s for r in simulated)
    sim_requests = sum(r.requests for r in simulated)
    by_engine: Dict[str, int] = {}
    by_spec: Dict[str, int] = {}
    for record in records:
        by_engine[record.engine] = by_engine.get(record.engine, 0) + 1
        by_spec[record.spec] = by_spec.get(record.spec, 0) + 1
    return {
        "cells": len(records),
        "cache_hits": len(records) - len(simulated),
        "simulated": len(simulated),
        "simulated_wall_s": sim_wall,
        "simulated_requests": sim_requests,
        "requests_per_second": (
            sim_requests / sim_wall if sim_wall > 0 else 0.0
        ),
        "by_engine": by_engine,
        "by_spec": by_spec,
    }


def resolve_manifest_path(
    explicit: Optional[Union[str, Path]], cache_dir: Union[str, Path]
) -> Optional[Path]:
    """Where (if anywhere) a runner should write its manifest.

    Precedence: an explicit path argument, then ``$REPRO_MANIFEST``,
    then — only when observability is enabled — ``manifest.jsonl``
    next to the result cache. With all three unset, no manifest is
    written (sweeps stay write-free beyond the result cache).
    """
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(MANIFEST_ENV_VAR, "").strip()
    if env:
        return Path(env)
    from repro.obs import obs_enabled

    if obs_enabled():
        return Path(cache_dir) / "manifest.jsonl"
    return None
