"""Observability layer: metrics, per-window series, run manifests.

Three pieces (DESIGN.md §10):

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms that trackers, engines, and the
  Hydra structures publish into;
- :mod:`repro.obs.recorder` — a per-tracking-window time-series
  recorder driven by the controller's window-reset schedule, enough
  to regenerate Figure 6 (and watch it evolve window by window) from
  a single run;
- :mod:`repro.obs.manifest` — JSON-lines run manifests written by
  sweeps: one provenance record per grid cell.

The governing rule is **zero-cost when off**: observation points are
no-op callables (:func:`repro.obs.metrics.noop`) resolved once at
controller build time, nothing observability-related is serialized
into results or the cache, and the golden-parity suite is
bit-identical with observability on or off. Enable it per run with
``simulate(..., observe=True)``, or everywhere with ``REPRO_OBS=1``.
"""

from __future__ import annotations

import os

#: Environment variable that turns observability on for every run.
OBS_ENV_VAR = "REPRO_OBS"


def obs_enabled() -> bool:
    """True when ``$REPRO_OBS`` asks for observability everywhere."""
    value = os.environ.get(OBS_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


from repro.obs.manifest import (  # noqa: E402
    MANIFEST_ENV_VAR,
    MANIFEST_SCHEMA_VERSION,
    ArenaOracleRecord,
    ManifestRecord,
    ManifestWriter,
    make_record,
    read_arena_records,
    read_manifest,
    resolve_manifest_path,
    summarize_manifest,
)
from repro.obs.metrics import (  # noqa: E402
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    noop,
)
from repro.obs.recorder import (  # noqa: E402
    RunObservability,
    WindowSample,
    WindowSeries,
    WindowSeriesRecorder,
)


class Observation:
    """A live observation of one controller run.

    Created by :func:`observe_controller` before the run; call
    :meth:`finalize` after it to collect end-of-run metrics and close
    the window series.
    """

    def __init__(
        self, controller, registry: MetricsRegistry, recorder: WindowSeriesRecorder
    ) -> None:
        self.controller = controller
        self.registry = registry
        self.recorder = recorder

    def finalize(self, end_ns: float) -> RunObservability:
        self.controller.publish_metrics(self.registry)
        self.controller.tracker.publish_metrics(self.registry)
        return RunObservability(
            series=self.recorder.finalize(end_ns),
            metrics=self.registry.collect(),
        )


def observe_controller(controller) -> Observation:
    """Wire a fresh registry + window recorder into a controller.

    Must run before the trace does: the recorder primes its baseline
    from the controller's and tracker's zeroed counters.
    """
    registry = MetricsRegistry()
    recorder = WindowSeriesRecorder(period_ns=controller.window_period_ns)
    controller.enable_observability(recorder, registry)
    return Observation(controller, registry, recorder)


__all__ = [
    "ArenaOracleRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_ENV_VAR",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestRecord",
    "ManifestWriter",
    "MetricsRegistry",
    "OBS_ENV_VAR",
    "Observation",
    "RunObservability",
    "WindowSample",
    "WindowSeries",
    "WindowSeriesRecorder",
    "make_record",
    "noop",
    "obs_enabled",
    "observe_controller",
    "read_arena_records",
    "read_manifest",
    "resolve_manifest_path",
    "summarize_manifest",
]
