"""Metric primitives: counters, gauges, fixed-bucket histograms.

The observability layer (DESIGN.md §10) separates *what* the system
exposes from *when* it is sampled. This module is the "what": a
:class:`MetricsRegistry` holds named metric instruments that trackers,
engines, and the Hydra structures (GCT/RCC/RCT) publish into at the
end of a run — or, for the feedback-chain histogram, during it.

Everything here is deliberately simulation-agnostic: a metric is a
name, a kind, and numbers. The zero-cost-when-off rule lives one
level up — a controller only ever touches a registry after
``enable_observability`` wired one in; with observability off the
probe slots hold :func:`noop` and no registry exists at all.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def noop(*_args: Any, **_kwargs: Any) -> None:
    """The disabled probe: accepts anything, does nothing.

    Probe call sites resolve their target once at controller build
    time, so the off-state cost is one no-op call on *slow* paths only
    (window resets, feedback chains) and zero on per-activation paths.
    """


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """Point-in-time value (occupancy, saturation, hit rate)."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts of observations per bucket.

    ``bounds`` are inclusive upper bucket edges in strictly ascending
    order; one implicit overflow bucket catches everything above the
    last edge. Fixed bounds keep observation O(len(bounds)) with no
    allocation, which is what lets the feedback path afford one
    ``observe`` per slow-path event.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "total")

    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[float], help_text: str = ""
    ) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self.name = name
        self.help = help_text
        self.bounds: Tuple[float, ...] = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = 0
        for edge in self.bounds:
            if value <= edge:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value

    def observe_count(self, value: float, times: int) -> None:
        """Record ``times`` identical observations in one call.

        Lets end-of-run publishers turn an existing count array (e.g.
        the RCT's per-row counters) into a histogram without looping
        per element at observation granularity.
        """
        if times <= 0:
            return
        index = 0
        for edge in self.bounds:
            if value <= edge:
                break
            index += 1
        self.bucket_counts[index] += times
        self.count += times
        self.total += value * times

    def buckets(self) -> Dict[str, int]:
        """Bucket label -> count (labels like ``<=4`` and ``>64``)."""
        labels = [f"<={edge:g}" for edge in self.bounds]
        labels.append(f">{self.bounds[-1]:g}")
        return dict(zip(labels, self.bucket_counts))

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "count": self.count,
            "total": self.total,
            "buckets": self.buckets(),
        }


class MetricsRegistry:
    """Named collection of metric instruments for one observed run.

    ``counter``/``gauge``/``histogram`` are get-or-create: publishing
    code does not care whether another publisher already registered
    the name, but re-registering a name as a *different* kind (or a
    histogram with different bounds) is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, Any]" = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self, name: str, bounds: Sequence[float], help_text: str = ""
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if existing.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} already registered with bounds"
                    f" {existing.bounds}"
                )
            return existing
        metric = Histogram(name, bounds, help_text)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help_text: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help_text)
        self._metrics[name] = metric
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> Iterable[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot every metric as plain JSON-serializable dicts."""
        return {
            name: self._metrics[name].describe()
            for name in sorted(self._metrics)
        }
