"""Per-window time-series recording.

Hydra's dynamics are windowed: every 64 ms tracking window the GCT,
RCC, and RIT-ACT reset, so "how did the run behave?" is naturally a
question about *per-window deltas* of the cumulative counters —
activation updates per level (Figure 6), mitigations, metadata
traffic, RCC hits/misses.

:class:`WindowSeriesRecorder` plugs into
:class:`~repro.memctrl.feedback.WindowResetSchedule` as its
``observer`` callable: the schedule invokes it at each window
boundary *before* the tracker's ``on_window_reset`` runs, so sources
are sampled while the window's state is still intact. Sources are
zero-argument callables returning ``{counter_name: cumulative_value}``
(the ``obs_snapshot`` methods of the controller and tracker); the
recorder differences consecutive snapshots into one
:class:`WindowSample` per window. Only *cumulative* counters belong
in a snapshot — values that reset at window boundaries (GCT
saturation, RCC occupancy) would make the deltas meaningless.

The result, a :class:`WindowSeries`, can regenerate the Figure 6
distribution from its summed deltas (``hydra_distribution``) —
per-window or whole-run — without touching ``RunResult.extra``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

Snapshot = Dict[str, float]
SnapshotSource = Callable[[], Snapshot]


@dataclass(frozen=True)
class WindowSample:
    """Counter deltas accumulated during one tracking window."""

    index: int
    start_ns: float
    end_ns: float
    counters: Dict[str, float]

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "counters": dict(self.counters),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "WindowSample":
        return WindowSample(
            index=int(data["index"]),
            start_ns=float(data["start_ns"]),
            end_ns=float(data["end_ns"]),
            counters=dict(data.get("counters", {})),
        )


@dataclass(frozen=True)
class WindowSeries:
    """Ordered per-window samples of one observed run."""

    period_ns: float
    samples: Tuple[WindowSample, ...] = ()

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[WindowSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> WindowSample:
        return self.samples[index]

    def column(self, name: str) -> List[float]:
        """One counter's per-window deltas, in window order."""
        return [sample.get(name) for sample in self.samples]

    def totals(self) -> Dict[str, float]:
        """Whole-run totals: the per-window deltas summed back up."""
        merged: Dict[str, float] = {}
        for sample in self.samples:
            for name, value in sample.counters.items():
                merged[name] = merged.get(name, 0.0) + value
        return merged

    def hydra_distribution(
        self, totals: Optional[Dict[str, float]] = None
    ) -> Dict[str, float]:
        """Figure 6 regenerated from the series (or one window's deltas).

        Uses the Hydra counters ``hydra_gct_only`` /
        ``hydra_rcc_hits`` / ``hydra_rct_accesses``; pass one sample's
        ``counters`` to get a single window's distribution. Returns
        the same shape as ``HydraStats.distribution()`` so the two can
        be compared directly.
        """
        source = self.totals() if totals is None else totals
        gct = source.get("hydra_gct_only", 0.0)
        rcc = source.get("hydra_rcc_hits", 0.0)
        rct = source.get("hydra_rct_accesses", 0.0)
        total = gct + rcc + rct
        if total == 0:
            return {"gct_only": 0.0, "rcc_hit": 0.0, "rct_access": 0.0}
        return {
            "gct_only": gct / total,
            "rcc_hit": rcc / total,
            "rct_access": rct / total,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "period_ns": self.period_ns,
            "samples": [sample.to_dict() for sample in self.samples],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "WindowSeries":
        return WindowSeries(
            period_ns=float(data["period_ns"]),
            samples=tuple(
                WindowSample.from_dict(s) for s in data.get("samples", [])
            ),
        )


class WindowSeriesRecorder:
    """Differences cumulative snapshots into per-window samples.

    Lifecycle: ``add_source`` the snapshot callables, ``prime`` once
    before the run (captures the zero baseline), let the window
    schedule call ``on_window_reset(boundary_ns)`` at each boundary,
    then ``finalize(end_ns)`` to capture the trailing partial window
    and obtain the immutable :class:`WindowSeries`.
    """

    def __init__(self, period_ns: float) -> None:
        if period_ns <= 0:
            raise ValueError("period_ns must be positive")
        self.period_ns = period_ns
        self._sources: List[SnapshotSource] = []
        self._samples: List[WindowSample] = []
        self._last: Snapshot = {}
        self._window_start_ns = 0.0
        self._index = 0
        self._primed = False

    def add_source(self, source: SnapshotSource) -> None:
        self._sources.append(source)

    def prime(self) -> None:
        """Capture the pre-run baseline snapshot."""
        self._last = self._merged_snapshot()
        self._primed = True

    def on_window_reset(self, boundary_ns: float) -> None:
        """Window-schedule observer: close the window ending here."""
        self._emit(boundary_ns)

    def finalize(self, end_ns: float) -> WindowSeries:
        """Close any trailing partial window; return the series.

        A run shorter than one window still produces one sample (the
        whole run), so every observed run has a non-empty series.
        """
        if not self._primed:
            self.prime()
        snapshot = self._merged_snapshot()
        if snapshot != self._last or not self._samples:
            self._emit(max(end_ns, self._window_start_ns), snapshot)
        return WindowSeries(
            period_ns=self.period_ns, samples=tuple(self._samples)
        )

    # ------------------------------------------------------------------

    def _merged_snapshot(self) -> Snapshot:
        merged: Snapshot = {}
        for source in self._sources:
            merged.update(source())
        return merged

    def _emit(
        self, end_ns: float, snapshot: Optional[Snapshot] = None
    ) -> None:
        if snapshot is None:
            snapshot = self._merged_snapshot()
        previous = self._last
        deltas = {
            name: value - previous.get(name, 0.0)
            for name, value in snapshot.items()
        }
        self._samples.append(
            WindowSample(
                index=self._index,
                start_ns=self._window_start_ns,
                end_ns=end_ns,
                counters=deltas,
            )
        )
        self._last = snapshot
        self._window_start_ns = end_ns
        self._index += 1


@dataclass
class RunObservability:
    """Everything one observed run recorded.

    Carried on ``RunResult.observability`` (a non-serialized,
    non-compared field — see DESIGN.md §10: cached payloads and golden
    parity are byte-identical whether observability ran or not).
    """

    series: WindowSeries
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "series": self.series.to_dict(),
            "metrics": dict(self.metrics),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunObservability":
        return RunObservability(
            series=WindowSeries.from_dict(data["series"]),
            metrics=dict(data.get("metrics", {})),
        )
